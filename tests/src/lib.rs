//! Shared helpers for the cross-crate integration tests.
//!
//! The actual test suites live in `tests/` next to this crate: end-to-end
//! RowHammer safety verification, defense comparisons and property-based
//! tests spanning several crates.

#![forbid(unsafe_code)]

use sim::{DefenseKind, RunResult, SystemBuilder};
use workloads::SyntheticSpec;

/// The time-scaling factor used by all integration tests (refresh window of
/// about 25k cycles; see DESIGN.md §5).
pub const TEST_TIME_SCALE: u64 = 8192;

/// The scaled refresh window in cycles for [`TEST_TIME_SCALE`].
pub const TEST_REFRESH_WINDOW: u64 = 204_800_000 / TEST_TIME_SCALE;

/// Builds the standard attack-plus-victims system used by several
/// integration tests: one double-sided attacker and two benign threads.
pub fn attack_system(kind: DefenseKind) -> SystemBuilder {
    SystemBuilder::new()
        .time_scale(TEST_TIME_SCALE)
        .defense(kind)
        .rowhammer_threshold(32_768)
        .llc_capacity(1 << 20)
        .min_cycles(2 * TEST_REFRESH_WINDOW)
        .max_cycles(1_500_000)
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("victim.high", 0), 6_000)
        .add_workload(SyntheticSpec::medium_intensity("victim.medium", 1), 6_000)
}

/// Runs the standard attack system under `kind` with activation logging
/// enabled.
pub fn run_attack_with_log(kind: DefenseKind) -> RunResult {
    attack_system(kind).activation_log().run()
}

/// Aggregate benign IPC of a run.
pub fn benign_ipc(result: &RunResult) -> f64 {
    result.benign_threads().map(|t| t.ipc).sum()
}

/// The 4-run campaign shared by the `resume_harness` binary and the
/// kill/resume integration test: both sides must expand the *same* spec,
/// since the test polls the harness's journal by fingerprint.
pub fn resume_campaign() -> campaign::CampaignSpec {
    let mut spec = campaign::CampaignSpec::smoke();
    spec.name = "kill-resume".to_owned();
    spec.mix_count = 1;
    spec.threads_per_mix = 2;
    spec.scale.benign_instructions = 400;
    spec.scale.min_cycles = 20_000;
    spec
}

/// The 4-run smoke campaign the campaign-server tests submit over HTTP.
/// Distinct name (and therefore fingerprint/campaign id) from
/// [`resume_campaign`], so the two kill/resume suites never share a
/// journal.
pub fn serve_campaign() -> campaign::CampaignSpec {
    let mut spec = resume_campaign();
    spec.name = "serve-smoke".to_owned();
    spec
}

/// A deliberately slow single-run campaign (lockstep stepping, a long
/// minimum-cycle floor) that keeps the server's executor busy while the
/// backpressure test fills the admission queue behind it.
pub fn serve_slow_campaign() -> campaign::CampaignSpec {
    let mut spec = serve_campaign();
    spec.name = "serve-slow".to_owned();
    spec.scenarios = vec![campaign::Scenario::BenignOnly];
    spec.defenses = vec![sim::DefenseKind::Baseline];
    spec.scale.advance = sim::AdvanceMode::Lockstep;
    spec.scale.min_cycles = 2_000_000;
    spec
}
