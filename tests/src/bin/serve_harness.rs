//! A minimal campaign-server process for the kill/resume-over-HTTP
//! integration test (`tests/tests/server_kill_resume.rs`).
//!
//! Starts a [`server::Server`] on an ephemeral loopback port with its
//! data directory under `DIR`, writes the bound address to `DIR/addr`
//! (atomically, so the test can poll for it), then parks. The test
//! submits a campaign over HTTP, lets the armed fault injector
//! `process::abort()` the whole server mid-campaign, re-spawns this
//! binary on the same directory, and verifies the resumed campaign
//! streams and writes byte-identical results.
//!
//! ```text
//! serve_harness data DIR [queue N] [workers N] [abort-after N]
//!               [stall-after N] [scheduler stealing|pinned]
//! ```

use campaign::faults::{arm, FaultPlan};
use campaign::write_atomic;
use server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("serve_harness: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    };
    let mut data_dir: Option<PathBuf> = None;
    let mut plan = FaultPlan::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "data" => match iter.next() {
                Some(dir) => data_dir = Some(PathBuf::from(dir)),
                None => return fail("data needs a directory argument"),
            },
            "scheduler" => {
                let mode = iter.next().and_then(|v| campaign::SchedulerMode::parse(v));
                match mode {
                    Some(mode) => config.scheduler = mode,
                    None => return fail("scheduler needs `stealing` or `pinned`"),
                }
            }
            name @ ("queue" | "workers" | "abort-after" | "stall-after") => {
                let Some(n) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail(format!("{name} needs an integer argument"));
                };
                match name {
                    "queue" => config.queue_capacity = n as usize,
                    "workers" => config.workers = n as usize,
                    "abort-after" => plan.abort_after_journal_records = Some(n),
                    _ => plan.stall_after_journal_records = Some(n),
                }
            }
            other => return fail(format!("unknown argument `{other}`")),
        }
    }
    let Some(data_dir) = data_dir else {
        return fail("data DIR is required");
    };
    config.data_dir = data_dir.clone();
    if plan.abort_after_journal_records.is_some() || plan.stall_after_journal_records.is_some() {
        arm(plan);
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => return fail(format!("starting server: {error}")),
    };
    if let Err(error) = write_atomic(&data_dir.join("addr"), server.addr().to_string()) {
        return fail(format!("writing addr file: {error}"));
    }
    // Park until the test kills us (SIGKILL, or the armed fault abort).
    loop {
        std::thread::sleep(Duration::from_millis(100));
    }
}
