//! A minimal journaled-campaign process for the kill/resume integration
//! test (`tests/tests/kill_resume.rs`).
//!
//! Runs the shared [`resume_campaign`] with a checkpoint journal at
//! `DIR/campaign.journal` and writes `campaign.csv` / `campaign.json` /
//! `stepping.csv` atomically on completion. The test spawns this binary,
//! kills it mid-campaign (via the armed fault injector, or with a real
//! signal while the injector stalls it), re-spawns it to resume, and
//! byte-compares the artifacts against an uninterrupted run.
//!
//! ```text
//! resume_harness out DIR [workers N] [abort-after N] [stall-after N]
//! ```

use campaign::faults::{arm, FaultPlan};
use campaign::{execute_resumable, write_atomic, ExecutionOptions};
use integration_tests::resume_campaign;
use std::path::PathBuf;
use std::process::ExitCode;

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("resume_harness: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut plan = FaultPlan::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return fail("out needs a directory argument"),
            },
            name @ ("workers" | "abort-after" | "stall-after") => {
                let Some(n) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail(format!("{name} needs an integer argument"));
                };
                match name {
                    "workers" => workers = n as usize,
                    "abort-after" => plan.abort_after_journal_records = Some(n),
                    _ => plan.stall_after_journal_records = Some(n),
                }
            }
            other => return fail(format!("unknown argument `{other}`")),
        }
    }
    let Some(out_dir) = out_dir else {
        return fail("out DIR is required");
    };
    if plan.abort_after_journal_records.is_some() || plan.stall_after_journal_records.is_some() {
        arm(plan);
    }
    let spec = resume_campaign();
    let options = ExecutionOptions {
        journal: Some(out_dir.join("campaign.journal")),
        ..Default::default()
    };
    let report = match execute_resumable(&spec, spec.expand(), workers, &options) {
        Ok(report) => report,
        Err(e) => return fail(e),
    };
    if let Err(e) = write_atomic(&out_dir.join("campaign.csv"), report.summary.to_csv()) {
        return fail(e);
    }
    if let Err(e) = write_atomic(&out_dir.join("campaign.json"), report.summary.to_json()) {
        return fail(e);
    }
    if let Err(e) = write_atomic(&out_dir.join("stepping.csv"), report.stepping_csv()) {
        return fail(e);
    }
    println!(
        "completed {} runs ({} replayed)",
        report.outcomes.len(),
        report.replayed
    );
    ExitCode::SUCCESS
}
