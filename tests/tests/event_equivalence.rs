//! Event-driven stepping equivalence pins: `AdvanceMode::EventDriven`
//! must reproduce the lockstep reference **bit for bit** — every
//! `RunResult` field except the mode-dependent idle-skip counters — for
//! every defense, channel count and workload shape, and whole campaigns
//! must emit byte-identical CSV/JSON in both modes.

use campaign::{execute, CampaignSpec};
use proptest::prelude::*;
use sim::{AdvanceMode, DefenseKind, RunResult, SteppingStats, SystemBuilder};
use workloads::SyntheticSpec;

/// Every defense kind the factory can build.
fn all_defenses() -> Vec<DefenseKind> {
    let mut kinds = vec![DefenseKind::Baseline];
    kinds.extend(DefenseKind::figure_4_and_5_set());
    kinds.push(DefenseKind::BlockHammerObserve);
    kinds
}

/// The comparable form of a run: the full `RunResult` with the
/// advance-mode-dependent stepping counters zeroed (they are the *only*
/// field allowed to differ between modes). `RunResult: PartialEq`
/// compares every statistic field for field, with hash-map-backed stats
/// compared order-independently.
fn canonical(mut result: RunResult) -> RunResult {
    result.stepping = SteppingStats::default();
    result
}

fn quick_builder(seed: u64, channels: usize) -> SystemBuilder {
    SystemBuilder::new()
        .time_scale(8192)
        .max_cycles(3_000_000)
        .min_cycles(20_000)
        .llc_capacity(1 << 20)
        .seed(seed)
        .channels(channels)
}

#[test]
fn every_defense_and_channel_count_is_bit_identical() {
    for defense in all_defenses() {
        for channels in [1usize, 2, 4] {
            let run = |advance: AdvanceMode| {
                quick_builder(7, channels)
                    .defense(defense)
                    .advance_mode(advance)
                    .add_attacker()
                    .add_workload(SyntheticSpec::high_intensity("h0", 0), 1_500)
                    .add_workload(SyntheticSpec::low_intensity("l1", 1), 1_500)
                    .run()
            };
            let lockstep = run(AdvanceMode::Lockstep);
            let event = run(AdvanceMode::EventDriven);
            assert_eq!(
                lockstep.stepping.cycles_simulated,
                lockstep.total_cycles + 1,
                "lockstep must tick every cycle"
            );
            assert_eq!(
                event.stepping.cycles_simulated + event.stepping.cycles_skipped,
                event.total_cycles + 1,
                "skip accounting must cover the whole run"
            );
            assert_eq!(
                canonical(lockstep),
                canonical(event),
                "{:?} x {channels}ch diverged between advance modes",
                defense
            );
        }
    }
}

#[test]
fn benign_only_runs_are_bit_identical() {
    // No attacker: the run ends when the benign threads finish and then
    // pads out to `min_cycles` with an idle system — the padding is where
    // event-driven stepping jumps refresh-to-refresh.
    for defense in [DefenseKind::Baseline, DefenseKind::BlockHammer] {
        let run = |advance: AdvanceMode| {
            quick_builder(11, 1)
                .defense(defense)
                .advance_mode(advance)
                .min_cycles(50_000)
                .add_workload(SyntheticSpec::low_intensity("l0", 0), 1_000)
                .run()
        };
        let lockstep = run(AdvanceMode::Lockstep);
        let event = run(AdvanceMode::EventDriven);
        assert_eq!(canonical(lockstep), canonical(event.clone()));
        assert!(
            event.stepping.cycles_skipped > 0,
            "an idle-padded run must skip cycles"
        );
    }
}

#[test]
fn idle_heavy_run_simulates_a_fraction_of_its_cycles() {
    // The deterministic speedup proxy: on an idle-heavy run (short benign
    // thread, long min_cycles padding) event-driven stepping must tick at
    // most a fifth of the simulated cycles — the tick count is the
    // wall-clock driver, so this pins the >=5x claim without timing.
    let result = quick_builder(3, 1)
        .defense(DefenseKind::BlockHammer)
        .advance_mode(AdvanceMode::EventDriven)
        .min_cycles(200_000)
        .add_workload(SyntheticSpec::low_intensity("l0", 0), 1_000)
        .run();
    assert!(
        result.stepping.cycles_simulated * 5 <= result.total_cycles,
        "expected >=5x tick reduction, got {} ticks over {} cycles",
        result.stepping.cycles_simulated,
        result.total_cycles
    );
    assert!(result.stepping.largest_jump > 100);
}

#[test]
fn campaign_csv_and_json_are_byte_identical_across_modes() {
    // The CI smoke campaign shape, shrunk: both advance modes must
    // produce the exact same summary artifacts, byte for byte, and the
    // same per-run outcomes once the stepping counters are masked.
    let campaign_with = |advance: AdvanceMode| {
        let mut campaign = CampaignSpec::smoke();
        campaign.name = "event-equivalence".to_owned();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 800;
        campaign.scale.min_cycles = 20_000;
        campaign.scale.advance = advance;
        campaign
    };
    let run = |advance: AdvanceMode| {
        let campaign = campaign_with(advance);
        execute(&campaign, campaign.expand(), 0).expect("campaign runs")
    };
    let lockstep = run(AdvanceMode::Lockstep);
    let event = run(AdvanceMode::EventDriven);
    assert_eq!(
        lockstep.summary.to_csv(),
        event.summary.to_csv(),
        "summary CSV diverged between advance modes"
    );
    assert_eq!(
        lockstep.summary.to_json(),
        event.summary.to_json(),
        "summary JSON diverged between advance modes"
    );
    let masked = |report: &campaign::CampaignReport| {
        let mut outcomes = report.outcomes.clone();
        for outcome in &mut outcomes {
            outcome.stepping = SteppingStats::default();
        }
        outcomes
    };
    assert_eq!(masked(&lockstep), masked(&event));
    // The stepping report is the one artifact that *should* differ.
    assert_ne!(lockstep.stepping_csv(), event.stepping_csv());
    assert!(event
        .outcomes
        .iter()
        .any(|outcome| outcome.stepping.cycles_skipped > 0));
}

proptest! {
    /// Randomized mixes x defenses x channel counts: event-driven and
    /// lockstep runs must stay bit-identical for arbitrary seeds and
    /// workload shapes, with and without an attacker. Full-system runs
    /// are too slow for the shim's 128 cases, so a sampled gate keeps a
    /// deterministic ~8-case subset.
    #[test]
    fn random_mixes_are_bit_identical(
        gate in 0u32..16,
        seed in 0u64..1_000_000,
        defense_index in 0usize..9,
        channel_exp in 0u32..3,
        attacker_flag in 0u32..2,
        intensity in 0usize..3,
    ) {
        prop_assume!(gate == 0);
        let with_attacker = attacker_flag == 1;
        let defense = all_defenses()[defense_index];
        let channels = 1usize << channel_exp;
        let workload = |name: &str, variant: u64| match intensity {
            0 => SyntheticSpec::low_intensity(name, variant),
            1 => SyntheticSpec::medium_intensity(name, variant),
            _ => SyntheticSpec::high_intensity(name, variant),
        };
        let run = |advance: AdvanceMode| {
            let mut builder = quick_builder(seed, channels)
                .defense(defense)
                .advance_mode(advance)
                .min_cycles(10_000);
            if with_attacker {
                builder = builder.add_attacker();
            }
            builder
                .add_workload(workload("w0", 0), 800)
                .run()
        };
        prop_assert_eq!(
            canonical(run(AdvanceMode::Lockstep)),
            canonical(run(AdvanceMode::EventDriven))
        );
    }
}
