//! Crash-safety of the campaign *server*, end-to-end over HTTP: a
//! server killed mid-campaign (the armed fault injector aborts the
//! whole process after 2 journal records) is restarted on the same data
//! directory, re-admits the interrupted campaign from its persisted
//! spec, resumes it from the journal — and the results a client then
//! streams, plus the final artifacts, are byte-identical to an
//! uninterrupted batch run.
//!
//! The server under test is the `serve_harness` binary (a kill must hit
//! a whole process); the campaign is [`integration_tests::serve_campaign`].

use campaign::checkpoint::fingerprint;
use campaign::{execute_observed, wire, ExecutionOptions};
use integration_tests::serve_campaign;
use server::http::client;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn scratch(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns `serve_harness` on `data` and waits for its address file.
fn start_harness(data: &Path, abort_after: Option<u64>) -> (Child, String) {
    start_harness_with(data, abort_after, &[])
}

/// [`start_harness`] with additional harness arguments (scheduler,
/// worker count, stall-after) appended verbatim.
fn start_harness_with(data: &Path, abort_after: Option<u64>, extra: &[&str]) -> (Child, String) {
    // A previous server's address file would race the new one's.
    let _ = std::fs::remove_file(data.join("addr"));
    let mut command = Command::new(env!("CARGO_BIN_EXE_serve_harness"));
    command.args(["data", &data.display().to_string()]);
    if !extra.contains(&"workers") {
        command.args(["workers", "0"]);
    }
    command.args(extra);
    if let Some(n) = abort_after {
        command.args(["abort-after", &n.to_string()]);
    }
    let mut child = command.spawn().expect("spawn serve_harness");
    let addr_file = data.join("addr");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        if let Some(status) = child.try_wait().expect("poll harness") {
            panic!("serve_harness exited early with {status}");
        }
        assert!(
            Instant::now() < deadline,
            "serve_harness never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkilled_server_resumes_campaign_with_byte_identical_results() {
    let spec = serve_campaign();
    let id = format!("{:016x}", fingerprint(&spec));

    // The uninterrupted reference: record lines and artifacts straight
    // from the batch engine, no server involved.
    let mut expected_lines = Vec::new();
    let report = execute_observed(
        &spec,
        spec.expand(),
        0,
        &ExecutionOptions::default(),
        &mut |entry, _| expected_lines.push(wire::entry_to_ndjson(entry)),
    )
    .expect("reference executes");

    let data = scratch("serve-kill-resume");
    // First server: armed to abort the whole process once 2 of the 4
    // runs are journaled.
    let (mut doomed, addr) = start_harness(&data, Some(2));
    let body = wire::spec_to_json(&spec);
    let response =
        client::request(&addr, "POST", "/campaigns", &[], body.as_bytes()).expect("submit");
    assert_eq!(response.status, 201, "{}", response.utf8().unwrap_or(""));
    // The abort fires on the executor thread mid-campaign; the process
    // dies without unwinding or flushing anything besides the journal.
    let status = doomed.wait().expect("reap aborted server");
    assert!(!status.success(), "the armed server must die");
    assert!(
        !data.join(&id).join("campaign.json").exists(),
        "the interrupted campaign must not have final artifacts"
    );

    // Second server, same data directory: recovery finds spec.json
    // without a completion marker, re-admits the campaign, and the
    // journal resume skips the 2 already-finished runs.
    let (survivor, addr) = start_harness(&data, None);
    let mut streamed = Vec::new();
    let status = client::stream(&addr, &format!("/campaigns/{id}/results"), &mut |line| {
        streamed.push(line.to_owned());
        Ok(())
    })
    .expect("stream resumed results");
    assert_eq!(status, 200);
    assert_eq!(
        streamed, expected_lines,
        "resumed stream must be byte-identical to the uninterrupted run"
    );

    // The status document accounts for the journal replay.
    let response = client::request(&addr, "GET", &format!("/campaigns/{id}"), &[], &[])
        .expect("status request");
    let status_doc = response.utf8().unwrap();
    assert!(
        status_doc.contains("\"phase\":\"done\""),
        "got: {status_doc}"
    );
    assert!(status_doc.contains("\"replayed\":2"), "got: {status_doc}");
    assert!(
        status_doc.contains(&format!("\"completed\":{}", spec.run_count())),
        "got: {status_doc}"
    );

    // Final artifacts, fetched over HTTP, byte-compare against the
    // uninterrupted reference.
    for (artifact, expected) in [
        ("csv", report.summary.to_csv()),
        ("json", report.summary.to_json()),
        ("stepping", report.stepping_csv()),
    ] {
        let response = client::request(
            &addr,
            "GET",
            &format!("/campaigns/{id}/artifacts/{artifact}"),
            &[],
            &[],
        )
        .expect("artifact request");
        assert_eq!(response.status, 200, "artifact {artifact}");
        assert_eq!(
            response.utf8().unwrap(),
            expected,
            "artifact {artifact} diverged from the uninterrupted run"
        );
    }

    // A *third* server on the same directory rebuilds the finished
    // campaign from its journal without re-running anything, and streams
    // the same bytes again.
    let mut survivor = survivor;
    survivor.kill().expect("kill the second server");
    survivor.wait().expect("reap the second server");
    let (mut third, addr) = start_harness(&data, None);
    let mut replayed = Vec::new();
    let status = client::stream(&addr, &format!("/campaigns/{id}/results"), &mut |line| {
        replayed.push(line.to_owned());
        Ok(())
    })
    .expect("stream rebuilt results");
    assert_eq!(status, 200);
    assert_eq!(replayed, expected_lines);
    third.kill().expect("kill the third server");
    third.wait().expect("reap the third server");
}

#[test]
fn sigkilled_stealing_server_resumes_with_a_warm_prelude_cache() {
    // Same recovery story, but with the pull-based scheduler doing the
    // executing and a *real* SIGKILL (the injector stalls the executor
    // at a deterministic journal state so the kill lands predictably).
    // The resumed campaign must also skip its normalization prelude via
    // the on-disk cache the first server left behind.
    let mut spec = serve_campaign();
    spec.name = "serve-kill-stealing".to_owned();
    let id = format!("{:016x}", fingerprint(&spec));
    let total = spec.run_count();

    let mut expected_lines = Vec::new();
    let report = execute_observed(
        &spec,
        spec.expand(),
        0,
        &ExecutionOptions::default(),
        &mut |entry, _| expected_lines.push(wire::entry_to_ndjson(entry)),
    )
    .expect("reference executes");

    let data = scratch("serve-kill-stealing");
    let stealing_args = ["workers", "2", "scheduler", "stealing"];
    let mut stalled_args = vec!["stall-after", "2"];
    stalled_args.extend_from_slice(&stealing_args);
    let (mut doomed, addr) = start_harness_with(&data, None, &stalled_args);
    let body = wire::spec_to_json(&spec);
    let response =
        client::request(&addr, "POST", "/campaigns", &[], body.as_bytes()).expect("submit");
    assert_eq!(response.status, 201, "{}", response.utf8().unwrap_or(""));

    // Wait until exactly 2 runs are journaled (the executor then stalls
    // forever) and the prelude cache is on disk, then deliver the kill.
    let journal = data.join(&id).join("campaign.journal");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let journaled =
            campaign::checkpoint::read_journal(&journal, fingerprint(&spec), total as u64)
                .map(|scan| scan.entries.len())
                .unwrap_or(0);
        if journaled == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the stalled server never journaled 2 records (got {journaled})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        data.join(&id).join("campaign.prelude").is_file(),
        "the first server must leave its prelude cache behind"
    );
    doomed.kill().expect("SIGKILL the stalled server");
    doomed.wait().expect("reap the killed server");

    // The survivor resumes with the same stealing scheduler, replays the
    // 2 journaled runs, serves the prelude from the cache, and streams
    // bytes identical to the uninterrupted sequential reference.
    let (mut survivor, addr) = start_harness_with(&data, None, &stealing_args);
    let mut streamed = Vec::new();
    let status = client::stream(&addr, &format!("/campaigns/{id}/results"), &mut |line| {
        streamed.push(line.to_owned());
        Ok(())
    })
    .expect("stream resumed results");
    assert_eq!(status, 200);
    assert_eq!(streamed, expected_lines);

    let response = client::request(&addr, "GET", &format!("/campaigns/{id}"), &[], &[])
        .expect("status request");
    let status_doc = response.utf8().unwrap();
    assert!(
        status_doc.contains("\"phase\":\"done\""),
        "got: {status_doc}"
    );
    assert!(status_doc.contains("\"replayed\":2"), "got: {status_doc}");
    assert!(
        status_doc.contains("\"scheduler\":\"stealing\""),
        "got: {status_doc}"
    );
    // The warm cache means this invocation simulated no references.
    assert!(status_doc.contains("\"computed\":0"), "got: {status_doc}");
    assert!(
        !status_doc.contains("\"from_cache\":0"),
        "the resumed prelude must come from the cache: {status_doc}"
    );

    for (artifact, expected) in [
        ("csv", report.summary.to_csv()),
        ("json", report.summary.to_json()),
    ] {
        let response = client::request(
            &addr,
            "GET",
            &format!("/campaigns/{id}/artifacts/{artifact}"),
            &[],
            &[],
        )
        .expect("artifact request");
        assert_eq!(response.status, 200, "artifact {artifact}");
        assert_eq!(
            response.utf8().unwrap(),
            expected,
            "artifact {artifact} diverged from the uninterrupted run"
        );
    }
    // The scheduling artifact is not byte-compared (its counters are
    // wall-clock- and worker-dependent) but must exist and name the
    // scheduler and the cache-served prelude.
    let response = client::request(
        &addr,
        "GET",
        &format!("/campaigns/{id}/artifacts/scheduling"),
        &[],
        &[],
    )
    .expect("scheduling artifact request");
    assert_eq!(response.status, 200);
    let scheduling = response.utf8().unwrap();
    assert!(
        scheduling.contains("scheduler,stealing"),
        "got: {scheduling}"
    );
    assert!(
        scheduling.contains("prelude_computed,0"),
        "got: {scheduling}"
    );
    survivor.kill().expect("kill the survivor");
    survivor.wait().expect("reap the survivor");
}
