//! Cross-defense behavioural comparisons on the full system, mirroring the
//! qualitative claims of Sections 8.1 and 8.2.

use integration_tests::{attack_system, benign_ipc, TEST_TIME_SCALE};
use sim::{DefenseKind, SystemBuilder};
use workloads::SyntheticSpec;

fn benign_only(kind: DefenseKind) -> sim::RunResult {
    SystemBuilder::new()
        .time_scale(TEST_TIME_SCALE)
        .defense(kind)
        .rowhammer_threshold(32_768)
        .llc_capacity(1 << 20)
        .min_cycles(60_000)
        .add_workload(SyntheticSpec::high_intensity("benign.h", 0), 6_000)
        .add_workload(SyntheticSpec::medium_intensity("benign.m", 1), 6_000)
        .run()
}

/// Without an attack, BlockHammer's performance is indistinguishable from
/// the unprotected baseline (Figure 4 / Figure 5 left half).
#[test]
fn blockhammer_adds_no_overhead_without_an_attack() {
    let baseline = benign_only(DefenseKind::Baseline);
    let blockhammer = benign_only(DefenseKind::BlockHammer);
    let ratio = benign_ipc(&blockhammer) / benign_ipc(&baseline);
    assert!(
        ratio > 0.97,
        "BlockHammer cost {:.1}% benign IPC without an attack",
        (1.0 - ratio) * 100.0
    );
    assert_eq!(blockhammer.ctrl.rejected_quota, 0);
}

/// Under attack, BlockHammer improves benign performance relative to the
/// unprotected baseline, while reactive-refresh defenses cannot (they only
/// add refresh traffic) — the paper's headline result (Section 8.2).
#[test]
fn blockhammer_improves_benign_performance_under_attack() {
    let baseline = attack_system(DefenseKind::Baseline).run();
    let blockhammer = attack_system(DefenseKind::BlockHammer).run();
    let graphene = attack_system(DefenseKind::Graphene).run();
    let base = benign_ipc(&baseline);
    assert!(
        benign_ipc(&blockhammer) > base * 1.05,
        "BlockHammer benign IPC {:.4} is not clearly above the baseline {:.4}",
        benign_ipc(&blockhammer),
        base
    );
    // Graphene keeps the system safe but does not hand bandwidth back to
    // benign applications: no comparable speedup.
    assert!(
        benign_ipc(&graphene) < benign_ipc(&blockhammer),
        "Graphene ({:.4}) should not outperform BlockHammer ({:.4}) under attack",
        benign_ipc(&graphene),
        benign_ipc(&blockhammer)
    );
}

/// The attacker's share of DRAM activations shrinks under BlockHammer.
#[test]
fn attacker_activation_share_shrinks_under_blockhammer() {
    let baseline = attack_system(DefenseKind::Baseline).run();
    let blockhammer = attack_system(DefenseKind::BlockHammer).run();
    let activation_rate =
        |r: &sim::RunResult| r.dram.totals().activates as f64 / r.total_cycles as f64;
    assert!(
        activation_rate(&blockhammer) < activation_rate(&baseline),
        "total activation rate should drop when the attacker is throttled \
         (baseline {:.5}, BlockHammer {:.5})",
        activation_rate(&baseline),
        activation_rate(&blockhammer)
    );
    assert!(
        blockhammer.ctrl.rejected_quota > 0,
        "the quota never engaged"
    );
}

/// Every defense can run the attack mix to completion (no deadlocks, no
/// panics) and produces internally consistent statistics.
#[test]
fn every_defense_completes_the_attack_mix() {
    for kind in [
        DefenseKind::Baseline,
        DefenseKind::Para,
        DefenseKind::ProHit,
        DefenseKind::MrLoc,
        DefenseKind::Cbt,
        DefenseKind::TwiCe,
        DefenseKind::Graphene,
        DefenseKind::BlockHammer,
        DefenseKind::BlockHammerObserve,
    ] {
        let result = attack_system(kind).run();
        for thread in result.benign_threads() {
            // Every benign thread must make substantial forward progress;
            // defenses with heavy victim-refresh traffic may not let it
            // finish the full budget within the bounded run.
            assert!(
                thread.instructions >= 1_500,
                "{kind:?}: benign thread {} finished only {} instructions",
                thread.name,
                thread.instructions
            );
        }
        assert!(
            result.dram.totals().activates > 0,
            "{kind:?}: no activations"
        );
        assert!(
            result.dram_energy_joules() > 0.0,
            "{kind:?}: zero DRAM energy"
        );
        let totals = result.dram.totals();
        assert!(
            totals.reads + totals.writes >= totals.activates / 2,
            "{kind:?}: implausible command mix {totals:?}"
        );
    }
}
