//! Property tests on the campaign wire format: a [`CampaignSpec`] must
//! survive serialize → parse with its fields *and its fingerprint*
//! intact, for any spec the generators can produce. The fingerprint is
//! the campaign server's identity (campaign id, journal key), so a spec
//! whose fingerprint drifted across the wire would resume the wrong
//! journal — the server refuses such specs, and this suite pins that
//! they cannot exist in the first place.

use campaign::checkpoint::fingerprint;
use campaign::{wire, CampaignSpec, RunScale, Scenario};
use proptest::prelude::*;
use sim::{AdvanceMode, DefenseKind};
use workloads::AttackKind;

/// Every scenario label the wire format can carry, including the
/// non-default attack shapes.
const SCENARIOS: &[Scenario] = &[
    Scenario::BenignOnly,
    Scenario::Attack(AttackKind::DoubleSided),
    Scenario::Attack(AttackKind::SingleSided),
    Scenario::Attack(AttackKind::ManySided { sides: 4 }),
    Scenario::Attack(AttackKind::ManySided { sides: 19 }),
];

/// Every defense label, exercising the parenthesised
/// `BlockHammer(observe)` spelling too.
const DEFENSES: &[DefenseKind] = &[
    DefenseKind::Baseline,
    DefenseKind::Para,
    DefenseKind::ProHit,
    DefenseKind::MrLoc,
    DefenseKind::Cbt,
    DefenseKind::TwiCe,
    DefenseKind::Graphene,
    DefenseKind::BlockHammer,
    DefenseKind::BlockHammerObserve,
];

/// Names that stress the JSON string escaper: quotes, backslashes,
/// control characters and multi-byte UTF-8.
const NAMES: &[&str] = &[
    "smoke",
    "fig4-sweep",
    "name with spaces",
    "quote\"inside",
    "back\\slash",
    "tab\there",
    "newline\nin name",
    "unicode-\u{9b3c}\u{2603}-mix",
];

/// Builds a spec from sampled axis selections. `scenario_mask` and
/// `defense_mask` pick non-empty subsets of the label tables.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    name_pick: usize,
    mix_count: usize,
    threads_per_mix: usize,
    scenario_mask: usize,
    defense_mask: usize,
    n_rh: Vec<u64>,
    channel_exps: Vec<u32>,
    seed: u64,
    lockstep: bool,
    normalize: bool,
) -> CampaignSpec {
    let scenarios: Vec<Scenario> = SCENARIOS
        .iter()
        .enumerate()
        .filter(|(i, _)| scenario_mask & (1 << i) != 0)
        .map(|(_, s)| *s)
        .collect();
    let defenses: Vec<DefenseKind> = DEFENSES
        .iter()
        .enumerate()
        .filter(|(i, _)| defense_mask & (1 << i) != 0)
        .map(|(_, d)| *d)
        .collect();
    CampaignSpec {
        name: NAMES[name_pick % NAMES.len()].to_owned(),
        mix_count,
        threads_per_mix,
        scenarios,
        defenses,
        n_rh_points: n_rh,
        channel_counts: channel_exps.iter().map(|e| 1usize << e).collect(),
        scale: RunScale {
            advance: if lockstep {
                AdvanceMode::Lockstep
            } else {
                AdvanceMode::EventDriven
            },
            ..RunScale::quick()
        },
        seed,
        normalize,
    }
}

proptest! {
    /// serialize → parse is the identity on the spec *and* on its
    /// fingerprint, across every axis label, tricky names, both stepping
    /// modes and arbitrary seeds.
    #[test]
    fn spec_round_trips_with_fingerprint_intact(
        name_pick in 0usize..8,
        mix_count in 1usize..6,
        threads_per_mix in 2usize..9,
        scenario_mask in 1usize..32,
        defense_mask in 1usize..512,
        n_rh in proptest::collection::vec(1u64..100_000, 1..5),
        channel_exps in proptest::collection::vec(0u32..5, 1..4),
        seed in 0u64..u64::MAX,
        flags in 0u32..4,
    ) {
        let spec = build_spec(
            name_pick,
            mix_count,
            threads_per_mix,
            scenario_mask,
            defense_mask,
            n_rh,
            channel_exps,
            seed,
            flags & 1 != 0,
            flags & 2 != 0,
        );
        let wire_text = wire::spec_to_json(&spec);
        let echoed = wire::spec_from_json(&wire_text)
            .expect("canonical serialization must parse");
        prop_assert_eq!(&echoed, &spec);
        prop_assert_eq!(fingerprint(&echoed), fingerprint(&spec));
        // The canonical form is a fixed point: re-serializing yields the
        // same bytes, so servers and clients agree on one rendering.
        prop_assert_eq!(wire::spec_to_json(&echoed), wire_text);
    }
}

/// Per-field corruption changes the fingerprint: no two distinct specs
/// the server could admit share a campaign id (for these single-field
/// edits — full collision resistance is the hash's job).
#[test]
fn fingerprint_distinguishes_every_field() {
    let base = CampaignSpec::smoke();
    let fp = fingerprint(&base);
    let mut variants: Vec<CampaignSpec> = Vec::new();
    let mut v = base.clone();
    v.name.push('!');
    variants.push(v);
    let mut v = base.clone();
    v.mix_count += 1;
    variants.push(v);
    let mut v = base.clone();
    v.threads_per_mix += 1;
    variants.push(v);
    let mut v = base.clone();
    v.scenarios = vec![Scenario::BenignOnly];
    variants.push(v);
    let mut v = base.clone();
    v.defenses.push(DefenseKind::Para);
    variants.push(v);
    let mut v = base.clone();
    v.n_rh_points = vec![1024];
    variants.push(v);
    let mut v = base.clone();
    v.channel_counts = vec![2];
    variants.push(v);
    let mut v = base.clone();
    v.scale.min_cycles += 1;
    variants.push(v);
    let mut v = base.clone();
    v.scale.advance = AdvanceMode::Lockstep;
    variants.push(v);
    let mut v = base.clone();
    v.seed ^= 1;
    variants.push(v);
    let mut v = base.clone();
    v.normalize = !v.normalize;
    variants.push(v);
    for variant in variants {
        assert_ne!(
            fingerprint(&variant),
            fp,
            "fingerprint must see the edit in {variant:?}"
        );
        // And the edited spec still round-trips to itself.
        let echoed = wire::spec_from_json(&wire::spec_to_json(&variant)).unwrap();
        assert_eq!(echoed, variant);
    }
}
