//! The workspace's own product tree must pass `bh-lint` — every
//! determinism, hot-path and hygiene rule, with zero unjustified
//! suppressions. A finding here means a change introduced (or stopped
//! justifying) a forbidden pattern; run `cargo run -p bh-lint` locally
//! for the same report.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = bh_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the integration-tests crate lives inside the workspace");
    let findings = bh_lint::run_workspace(&root).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "bh-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
