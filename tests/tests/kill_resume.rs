//! The end-to-end fault-tolerance pin: a campaign process killed
//! mid-sweep — by an injected `process::abort` and by a *real* signal
//! delivered from outside — resumes from its checkpoint journal and
//! produces byte-identical artifacts to an uninterrupted run, for both
//! sequential and pooled execution.
//!
//! The campaign under test is [`integration_tests::resume_campaign`],
//! executed by the `resume_harness` binary in a child process (a kill
//! must hit a whole process, not a thread, to mean anything).

use campaign::checkpoint::read_journal;
use campaign::fingerprint;
use integration_tests::resume_campaign;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_resume_harness"))
}

fn scratch(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {}/{name}: {e}", dir.display()))
}

/// Runs the harness to completion in `dir` and asserts success.
fn run_to_completion(dir: &Path, workers: usize) {
    let output = harness()
        .args([
            "out",
            &dir.display().to_string(),
            "workers",
            &workers.to_string(),
        ])
        .output()
        .expect("spawn resume_harness");
    assert!(
        output.status.success(),
        "harness failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Asserts `dir`'s artifacts are byte-identical to the reference run's.
fn assert_matches_reference(dir: &Path, reference: &Path) {
    for artifact in ["campaign.csv", "campaign.json", "stepping.csv"] {
        assert_eq!(
            read(dir, artifact),
            read(reference, artifact),
            "{artifact} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn injected_abort_then_resume_is_byte_identical() {
    let spec = resume_campaign();
    let total = spec.expand().len();
    let reference = scratch("kill-resume-ref-abort");
    run_to_completion(&reference, 0);
    for workers in [0usize, 2] {
        let dir = scratch(&format!("kill-resume-abort-{workers}"));
        // First invocation: the fault injector aborts the process (no
        // unwinding, no flushes) once 2 of the 4 runs are journaled.
        let output = harness()
            .args([
                "out",
                &dir.display().to_string(),
                "workers",
                &workers.to_string(),
            ])
            .args(["abort-after", "2"])
            .output()
            .expect("spawn resume_harness");
        assert!(
            !output.status.success(),
            "{workers} workers: the armed harness must die, got: {}",
            String::from_utf8_lossy(&output.stdout)
        );
        let scan = read_journal(
            &dir.join("campaign.journal"),
            fingerprint(&spec),
            total as u64,
        )
        .expect("the journal survives the abort");
        assert_eq!(
            scan.entries.len(),
            2,
            "exactly the pre-abort runs are journaled"
        );
        // Second invocation resumes and completes.
        run_to_completion(&dir, workers);
        assert_matches_reference(&dir, &reference);
    }
}

#[test]
fn real_process_kill_then_resume_is_byte_identical() {
    let spec = resume_campaign();
    let total = spec.expand().len();
    let fp = fingerprint(&spec);
    let reference = scratch("kill-resume-ref-kill");
    run_to_completion(&reference, 0);
    for workers in [0usize, 2] {
        let dir = scratch(&format!("kill-resume-kill-{workers}"));
        // The harness stalls once 2 runs are journaled; this test
        // delivers a real SIGKILL while it sits there.
        let mut child = harness()
            .args([
                "out",
                &dir.display().to_string(),
                "workers",
                &workers.to_string(),
            ])
            .args(["stall-after", "2"])
            .spawn()
            .expect("spawn resume_harness");
        let journal = dir.join("campaign.journal");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            // The journal is flushed record-by-record, so polling the
            // file observes the stall point; a torn in-progress record
            // (dropped by the scanner) or a not-yet-created file just
            // means "keep waiting".
            let journaled = read_journal(&journal, fp, total as u64)
                .map(|scan| scan.entries.len())
                .unwrap_or(0);
            if journaled >= 2 {
                break;
            }
            if let Some(status) = child.try_wait().expect("poll child") {
                panic!("{workers} workers: harness exited early with {status}");
            }
            assert!(
                Instant::now() < deadline,
                "{workers} workers: harness never reached the stall point"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        child.kill().expect("kill the stalled harness");
        child.wait().expect("reap the killed harness");
        // Resume in a fresh process and byte-compare.
        run_to_completion(&dir, workers);
        assert_matches_reference(&dir, &reference);
    }
}
