//! Journal corruption properties: any truncation or single-byte flip of
//! a checkpoint journal either resumes cleanly from the last good record
//! or fails with a structured [`JournalError`] — it never panics and
//! never silently replays a corrupted outcome.
//!
//! The journal under attack is produced by a real (tiny) campaign run,
//! so the bytes exercised are exactly what production resume would read.

use campaign::checkpoint::{parse_journal, resume_or_create, JournalScan};
use campaign::{execute_resumable, fingerprint, CampaignSpec, ExecutionOptions, JournalEntry};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// A pristine journal: its bytes, the entries it holds, and the
/// fingerprint/run-count it was written under.
struct PristineJournal {
    bytes: Vec<u8>,
    entries: Vec<JournalEntry>,
    fingerprint: u64,
    total_runs: u64,
}

fn scratch(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs a 4-run campaign once, journaled, and caches the journal bytes.
fn pristine() -> &'static PristineJournal {
    static JOURNAL: OnceLock<PristineJournal> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        let mut campaign = CampaignSpec::smoke();
        campaign.name = "checkpoint-robustness".to_owned();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 400;
        campaign.scale.min_cycles = 20_000;
        let dir = scratch("checkpoint-robustness");
        let path = dir.join("campaign.journal");
        let options = ExecutionOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        let report = execute_resumable(&campaign, campaign.expand(), 0, &options)
            .expect("the journal-producing campaign runs");
        let bytes = std::fs::read(&path).expect("journal file exists");
        let fp = fingerprint(&campaign);
        let total = report.outcomes.len() as u64;
        let scan = parse_journal(&bytes, fp, total).expect("pristine journal parses");
        assert_eq!(scan.entries.len() as u64, total, "every run was journaled");
        assert!(!scan.dropped_trailing);
        PristineJournal {
            bytes,
            entries: scan.entries,
            fingerprint: fp,
            total_runs: total,
        }
    })
}

/// The robustness contract for one mutated byte string.
fn assert_survives(mutated: &[u8], label: &str) {
    let p = pristine();
    match parse_journal(mutated, p.fingerprint, p.total_runs) {
        Ok(JournalScan {
            entries, good_len, ..
        }) => {
            // A successful parse must yield an exact prefix of the
            // original entries — never a spliced or altered outcome.
            assert!(
                entries.len() <= p.entries.len(),
                "{label}: more entries than were written"
            );
            assert_eq!(
                entries,
                p.entries[..entries.len()],
                "{label}: recovered entries must be a pristine prefix"
            );
            assert!(
                good_len as usize <= mutated.len(),
                "{label}: good_len points past the data"
            );
        }
        Err(error) => {
            // Structured failure is acceptable; the Display impl must
            // hold up too (no panicking formatting paths).
            let _ = error.to_string();
        }
    }
}

proptest! {
    /// Truncating the journal anywhere — mid-header, mid-record,
    /// mid-checksum — yields a clean prefix or a structured error.
    #[test]
    fn any_truncation_resumes_cleanly_or_errors(cut in 0u64..1_000_000) {
        let p = pristine();
        let cut = (cut as usize) % (p.bytes.len() + 1);
        assert_survives(&p.bytes[..cut], &format!("truncated at {cut}"));
    }

    /// Flipping any single byte yields a clean prefix or a structured
    /// error — the checksum (or the header check) catches the damage.
    #[test]
    fn any_single_byte_flip_resumes_cleanly_or_errors(
        position in 0u64..1_000_000,
        flip in 1u64..256,
    ) {
        let p = pristine();
        let position = (position as usize) % p.bytes.len();
        let mut mutated = p.bytes.clone();
        mutated[position] ^= flip as u8;
        assert_survives(&mutated, &format!("flipped byte {position} by {flip:#04x}"));
    }

    /// Both at once: flip a byte, then truncate.
    #[test]
    fn combined_flip_and_truncation_is_survivable(
        position in 0u64..1_000_000,
        flip in 1u64..256,
        cut in 0u64..1_000_000,
    ) {
        let p = pristine();
        let position = (position as usize) % p.bytes.len();
        let mut mutated = p.bytes.clone();
        mutated[position] ^= flip as u8;
        let cut = (cut as usize) % (mutated.len() + 1);
        mutated.truncate(cut);
        assert_survives(&mutated, &format!("flip {position} then cut {cut}"));
    }
}

#[test]
fn resume_truncates_the_file_to_the_last_good_record_and_appends() {
    let p = pristine();
    // Chop the journal mid-way through its final record (one byte short):
    // resume must drop the torn record, truncate the file to the good
    // prefix, and hand back a writer that appends where it left off.
    let dir = scratch("checkpoint-torn-resume");
    let path = dir.join("torn.journal");
    std::fs::write(&path, &p.bytes[..p.bytes.len() - 1]).expect("write torn journal");
    let resumed =
        resume_or_create(&path, p.fingerprint, p.total_runs).expect("torn journal resumes");
    assert_eq!(resumed.entries.len(), p.entries.len() - 1);
    assert!(resumed.dropped_trailing, "the torn record was dropped");
    let mut writer = resumed.writer;
    writer
        .append(&p.entries[p.entries.len() - 1])
        .expect("re-append the lost record");
    drop(writer);
    // The healed journal is byte-identical to the pristine one.
    let healed = std::fs::read(&path).expect("read healed journal");
    assert_eq!(healed, p.bytes);
}
