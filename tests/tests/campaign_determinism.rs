//! Campaign determinism pins: the same `CampaignSpec` + seed produces
//! identical run lists and identical aggregated output under sequential
//! and pooled execution, across worker counts and scheduler modes, and
//! whether runs execute from generators or from recorded trace files.
//!
//! The heart of the suite is byte-identity: sequential, slot-pinned and
//! work-stealing execution must emit the same `campaign.csv`,
//! `campaign.json`, checkpoint-journal bytes and NDJSON record lines —
//! including under random failure policies and injected panics
//! (`schedulers_agree_under_random_specs_policies_and_panics`).

use campaign::faults::{arm, disarm, FaultPlan};
use campaign::{
    execute, execute_observed, prelude_cache_path, record_run_traces, wire, CampaignSpec,
    ExecutionOptions, FailurePolicy, SchedulerMode, TraceFormat,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Fault plans are armed process-wide, so every test in this binary that
/// executes campaigns serializes on this lock — otherwise a concurrent
/// test could absorb another test's injected panic.
static FAULTS: Mutex<()> = Mutex::new(());

fn fault_serial() -> MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A campaign small enough for the test suite but still covering both
/// scenarios, two defenses and every aggregation path.
fn tiny_campaign() -> CampaignSpec {
    // The CI smoke shape: 2 mixes x 2 scenarios x 2 defenses, four
    // threads per mix, 2000 instructions. Small enough for the test
    // suite, large enough that benign threads overlap the phase where
    // BlockHammer's blacklisting is active (shorter budgets finish
    // before the defense engages and the comparison is vacuous).
    let mut campaign = CampaignSpec::smoke();
    campaign.name = "determinism".to_owned();
    campaign
}

/// A much smaller campaign for the property test, which executes two
/// whole campaigns per sampled case.
fn micro_campaign(scenarios: usize, defenses: usize) -> CampaignSpec {
    let mut campaign = CampaignSpec::smoke();
    campaign.name = "determinism-micro".to_owned();
    campaign.mix_count = 1;
    campaign.threads_per_mix = 2;
    campaign.scenarios.truncate(scenarios.max(1));
    campaign.defenses.truncate(defenses.max(1));
    campaign.scale.benign_instructions = 300;
    campaign.scale.min_cycles = 10_000;
    campaign
}

fn scratch_dir(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label)
}

/// Everything one journaled execution leaves behind, for byte-comparison
/// across scheduler modes.
#[derive(Debug, PartialEq)]
struct ModeArtifacts {
    csv: String,
    json: String,
    journal: Vec<u8>,
    ndjson: Vec<String>,
    error: Option<String>,
}

/// Runs `spec` with a journal under `label`'s scratch dir and captures
/// every comparable artifact. Campaign-level errors (e.g. a
/// `FailurePolicy::Abort` hitting an injected panic) are captured as
/// data: the journaled prefix and streamed lines must still match.
fn run_mode(
    spec: &CampaignSpec,
    workers: usize,
    scheduler: SchedulerMode,
    policy: FailurePolicy,
    label: &str,
) -> ModeArtifacts {
    let dir = scratch_dir(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let journal = dir.join("campaign.journal");
    let options = ExecutionOptions {
        policy,
        journal: Some(journal.clone()),
        scheduler,
    };
    let mut ndjson = Vec::new();
    let result = execute_observed(spec, spec.expand(), workers, &options, &mut |entry, _| {
        ndjson.push(wire::entry_to_ndjson(entry))
    });
    let journal_bytes = std::fs::read(&journal).expect("journal exists");
    match result {
        Ok(report) => ModeArtifacts {
            csv: report.summary.to_csv(),
            json: report.summary.to_json(),
            journal: journal_bytes,
            ndjson,
            error: None,
        },
        Err(error) => ModeArtifacts {
            csv: String::new(),
            json: String::new(),
            journal: journal_bytes,
            ndjson,
            error: Some(error.to_string()),
        },
    }
}

#[test]
fn expansion_is_reproducible() {
    let campaign = tiny_campaign();
    assert_eq!(campaign.expand(), campaign.expand());
    assert_eq!(campaign.expand().len(), campaign.run_count());
}

#[test]
fn worker_counts_emit_byte_identical_output() {
    let _serial = fault_serial();
    let campaign = tiny_campaign();
    let sequential = execute(&campaign, campaign.expand(), 0).expect("sequential runs");
    let csv = sequential.summary.to_csv();
    let json = sequential.summary.to_json();
    assert_eq!(sequential.scheduling.scheduler, "sequential");
    for workers in [1, 2, 4] {
        let pooled = execute(&campaign, campaign.expand(), workers).expect("pooled runs");
        // Outcomes stream back in run order regardless of completion
        // order...
        assert_eq!(
            pooled.outcomes, sequential.outcomes,
            "{workers}-worker outcomes diverged"
        );
        // ...so the aggregate — and its serialized forms — are
        // byte-identical.
        assert_eq!(pooled.summary, sequential.summary);
        assert_eq!(
            pooled.summary.to_csv(),
            csv,
            "{workers}-worker CSV diverged"
        );
        assert_eq!(
            pooled.summary.to_json(),
            json,
            "{workers}-worker JSON diverged"
        );
    }
}

#[test]
fn scheduler_modes_emit_byte_identical_artifacts_and_journals() {
    let _serial = fault_serial();
    let campaign = tiny_campaign();
    let reference = run_mode(
        &campaign,
        0,
        SchedulerMode::default(),
        FailurePolicy::Quarantine,
        "sched-sequential",
    );
    assert!(reference.error.is_none());
    for (workers, scheduler, label) in [
        (2, SchedulerMode::SlotPinned, "sched-pinned-2"),
        (2, SchedulerMode::Stealing, "sched-stealing-2"),
        (4, SchedulerMode::Stealing, "sched-stealing-4"),
    ] {
        let mode = run_mode(
            &campaign,
            workers,
            scheduler,
            FailurePolicy::Quarantine,
            label,
        );
        assert_eq!(mode, reference, "{label} diverged from sequential");
    }
}

#[test]
fn stealing_stats_account_for_every_run() {
    let _serial = fault_serial();
    let campaign = tiny_campaign();
    let options = ExecutionOptions {
        scheduler: SchedulerMode::Stealing,
        ..ExecutionOptions::default()
    };
    let report = execute_observed(&campaign, campaign.expand(), 2, &options, &mut |_, _| {})
        .expect("stealing runs");
    let stats = &report.scheduling;
    assert_eq!(stats.scheduler, "stealing");
    assert_eq!(stats.workers.len(), 2);
    let jobs: u64 = stats.workers.iter().map(|w| w.jobs).sum();
    assert_eq!(jobs as usize, campaign.run_count(), "every run is tallied");
    // The reorder buffer admits each completion before releasing it, so
    // even perfectly in-order completion peaks at 1.
    assert!(stats.reorder_high_water >= 1);
    assert!(stats.reorder_high_water <= campaign.run_count());
    // No journal was configured, so no prelude cache: every reference
    // was computed by this invocation.
    assert!(stats.prelude.references > 0);
    assert_eq!(stats.prelude.computed, stats.prelude.references);
    assert_eq!(stats.prelude.from_cache, 0);
}

#[test]
fn prelude_cache_is_reused_exactly_when_present() {
    let _serial = fault_serial();
    let campaign = tiny_campaign();
    let dir = scratch_dir("prelude-cache");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let journal = dir.join("campaign.journal");
    let cache = prelude_cache_path(&journal);
    let options = ExecutionOptions {
        journal: Some(journal.clone()),
        scheduler: SchedulerMode::Stealing,
        ..ExecutionOptions::default()
    };
    let run = || {
        execute_observed(&campaign, campaign.expand(), 2, &options, &mut |_, _| {})
            .expect("campaign runs")
    };

    // Cold: every reference simulated, and the cache written to disk.
    let cold = run();
    let references = cold.scheduling.prelude.references;
    assert!(references > 0);
    assert_eq!(cold.scheduling.prelude.computed, references);
    assert_eq!(cold.scheduling.prelude.from_cache, 0);
    assert!(cache.is_file(), "prelude cache written next to the journal");

    // Warm: journal deleted (so every run re-executes) but cache kept —
    // the whole prelude is served from disk.
    std::fs::remove_file(&journal).expect("delete journal");
    let warm = run();
    assert_eq!(warm.scheduling.prelude.from_cache, references);
    assert_eq!(warm.scheduling.prelude.computed, 0);

    // Cold again: deleting the cache too forces recomputation.
    std::fs::remove_file(&journal).expect("delete journal");
    std::fs::remove_file(&cache).expect("delete cache");
    let recomputed = run();
    assert_eq!(recomputed.scheduling.prelude.computed, references);
    assert_eq!(recomputed.scheduling.prelude.from_cache, 0);

    // Cache state must never change results.
    assert_eq!(warm.summary.to_csv(), cold.summary.to_csv());
    assert_eq!(warm.summary.to_json(), cold.summary.to_json());
    assert_eq!(recomputed.summary.to_csv(), cold.summary.to_csv());
}

#[test]
fn trace_replay_matches_generator_execution() {
    let _serial = fault_serial();
    let campaign = tiny_campaign();
    let generated = execute(&campaign, campaign.expand(), 0).expect("generator runs");
    for format in [TraceFormat::Binary, TraceFormat::Text] {
        let dir = scratch_dir(&format!("campaign-traces-{format}"));
        // Start from a clean slate: stale files from older test versions
        // must not be mistaken for this campaign's traces.
        let _ = std::fs::remove_dir_all(&dir);
        let replayable: Vec<_> = campaign
            .expand()
            .iter()
            .map(|run| record_run_traces(run, &dir, format).expect("recording succeeds"))
            .collect();
        assert!(
            replayable
                .iter()
                .flat_map(|r| r.threads.iter())
                .all(|t| t.trace.is_some()),
            "every thread replays from a file"
        );
        let replayed = execute(&campaign, replayable, 2).expect("replayed runs");
        // Same runs, same outcomes, same bytes — from disk, pooled.
        assert_eq!(replayed.outcomes, generated.outcomes, "{format} diverged");
        assert_eq!(replayed.summary.to_csv(), generated.summary.to_csv());
    }
}

#[test]
fn attack_sweep_points_reflect_the_defense() {
    let _serial = fault_serial();
    // Sanity on the aggregate itself: in the attack scenario BlockHammer
    // must beat the baseline's benign throughput and report attacker
    // RHLI, with benign RHLI at zero.
    let campaign = tiny_campaign();
    let report = execute(&campaign, campaign.expand(), 2).expect("campaign runs");
    let point = |defense: &str, scenario: &str| {
        report
            .summary
            .points
            .iter()
            .find(|p| p.key.defense == defense && p.key.scenario == scenario)
            .unwrap_or_else(|| panic!("missing sweep point {defense}/{scenario}"))
    };
    let baseline = point("Baseline", "attack");
    let blockhammer = point("BlockHammer", "attack");
    assert!(
        blockhammer.mean_benign_ipc > baseline.mean_benign_ipc,
        "BlockHammer must speed up attacked benign threads \
         (baseline {:.4}, BlockHammer {:.4})",
        baseline.mean_benign_ipc,
        blockhammer.mean_benign_ipc
    );
    assert!(blockhammer.max_attacker_rhli > 0.0);
    assert_eq!(blockhammer.max_benign_rhli, 0.0);
    let normalized = blockhammer.normalized.expect("normalized metrics");
    assert!(normalized.weighted_speedup > 1.0);
}

proptest! {
    /// Work-stealing execution is byte-identical to sequential under
    /// random campaign shapes, failure policies, worker counts and
    /// injected panics — including `Abort`'s error and journaled prefix,
    /// which depend on the reorder buffer applying the policy at
    /// release time.
    #[test]
    fn schedulers_agree_under_random_specs_policies_and_panics(
        scenarios in 1u64..3,
        defenses in 1u64..3,
        policy_pick in 0u64..3,
        panic_pick in 0u64..8,
        workers_pick in 0u64..2,
    ) {
        let _serial = fault_serial();
        let campaign = micro_campaign(scenarios as usize, defenses as usize);
        let total = campaign.run_count();
        let policy = match policy_pick {
            0 => FailurePolicy::Quarantine,
            1 => FailurePolicy::Retry { max_attempts: 2 },
            _ => FailurePolicy::Abort,
        };
        // Even picks inject nothing; odd picks panic a run, transiently
        // (one attempt — a retry succeeds) or permanently by parity.
        let plan = if panic_pick % 2 == 1 {
            FaultPlan {
                panic_on_run: Some((
                    (panic_pick as usize / 2) % total,
                    if panic_pick >= 4 { u32::MAX } else { 1 },
                )),
                ..FaultPlan::default()
            }
        } else {
            FaultPlan::default()
        };
        let workers = [2usize, 4][workers_pick as usize];

        arm(plan.clone());
        let sequential = run_mode(
            &campaign,
            0,
            SchedulerMode::default(),
            policy,
            "prop-sequential",
        );
        // Re-arm to reset the injection counters for the second pass.
        arm(plan);
        let stealing = run_mode(
            &campaign,
            workers,
            SchedulerMode::Stealing,
            policy,
            "prop-stealing",
        );
        disarm();
        prop_assert_eq!(stealing, sequential);
    }
}
