//! Campaign determinism pins: the same `CampaignSpec` + seed produces
//! identical run lists and identical aggregated output under sequential
//! and pooled execution, across worker counts, and whether runs execute
//! from generators or from recorded trace files.

use campaign::{execute, record_run_traces, CampaignSpec, TraceFormat};
use std::path::PathBuf;

/// A campaign small enough for the test suite but still covering both
/// scenarios, two defenses and every aggregation path.
fn tiny_campaign() -> CampaignSpec {
    // The CI smoke shape: 2 mixes x 2 scenarios x 2 defenses, four
    // threads per mix, 2000 instructions. Small enough for the test
    // suite, large enough that benign threads overlap the phase where
    // BlockHammer's blacklisting is active (shorter budgets finish
    // before the defense engages and the comparison is vacuous).
    let mut campaign = CampaignSpec::smoke();
    campaign.name = "determinism".to_owned();
    campaign
}

fn scratch_dir(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label)
}

#[test]
fn expansion_is_reproducible() {
    let campaign = tiny_campaign();
    assert_eq!(campaign.expand(), campaign.expand());
    assert_eq!(campaign.expand().len(), campaign.run_count());
}

#[test]
fn worker_counts_emit_byte_identical_output() {
    let campaign = tiny_campaign();
    let sequential = execute(&campaign, campaign.expand(), 0).expect("sequential runs");
    let csv = sequential.summary.to_csv();
    let json = sequential.summary.to_json();
    for workers in [1, 2, 4] {
        let pooled = execute(&campaign, campaign.expand(), workers).expect("pooled runs");
        // Outcomes stream back in run order regardless of completion
        // order...
        assert_eq!(
            pooled.outcomes, sequential.outcomes,
            "{workers}-worker outcomes diverged"
        );
        // ...so the aggregate — and its serialized forms — are
        // byte-identical.
        assert_eq!(pooled.summary, sequential.summary);
        assert_eq!(
            pooled.summary.to_csv(),
            csv,
            "{workers}-worker CSV diverged"
        );
        assert_eq!(
            pooled.summary.to_json(),
            json,
            "{workers}-worker JSON diverged"
        );
    }
}

#[test]
fn trace_replay_matches_generator_execution() {
    let campaign = tiny_campaign();
    let generated = execute(&campaign, campaign.expand(), 0).expect("generator runs");
    for format in [TraceFormat::Binary, TraceFormat::Text] {
        let dir = scratch_dir(&format!("campaign-traces-{format}"));
        // Start from a clean slate: stale files from older test versions
        // must not be mistaken for this campaign's traces.
        let _ = std::fs::remove_dir_all(&dir);
        let replayable: Vec<_> = campaign
            .expand()
            .iter()
            .map(|run| record_run_traces(run, &dir, format).expect("recording succeeds"))
            .collect();
        assert!(
            replayable
                .iter()
                .flat_map(|r| r.threads.iter())
                .all(|t| t.trace.is_some()),
            "every thread replays from a file"
        );
        let replayed = execute(&campaign, replayable, 2).expect("replayed runs");
        // Same runs, same outcomes, same bytes — from disk, pooled.
        assert_eq!(replayed.outcomes, generated.outcomes, "{format} diverged");
        assert_eq!(replayed.summary.to_csv(), generated.summary.to_csv());
    }
}

#[test]
fn attack_sweep_points_reflect_the_defense() {
    // Sanity on the aggregate itself: in the attack scenario BlockHammer
    // must beat the baseline's benign throughput and report attacker
    // RHLI, with benign RHLI at zero.
    let campaign = tiny_campaign();
    let report = execute(&campaign, campaign.expand(), 2).expect("campaign runs");
    let point = |defense: &str, scenario: &str| {
        report
            .summary
            .points
            .iter()
            .find(|p| p.key.defense == defense && p.key.scenario == scenario)
            .unwrap_or_else(|| panic!("missing sweep point {defense}/{scenario}"))
    };
    let baseline = point("Baseline", "attack");
    let blockhammer = point("BlockHammer", "attack");
    assert!(
        blockhammer.mean_benign_ipc > baseline.mean_benign_ipc,
        "BlockHammer must speed up attacked benign threads \
         (baseline {:.4}, BlockHammer {:.4})",
        baseline.mean_benign_ipc,
        blockhammer.mean_benign_ipc
    );
    assert!(blockhammer.max_attacker_rhli > 0.0);
    assert_eq!(blockhammer.max_benign_rhli, 0.0);
    let normalized = blockhammer.normalized.expect("normalized metrics");
    assert!(normalized.weighted_speedup > 1.0);
}
