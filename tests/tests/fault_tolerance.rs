//! Fault-tolerance pins: deterministic injected faults (panicking runs,
//! trace I/O errors) exercise every `FailurePolicy`, and the checkpoint
//! journal resumes an aborted campaign to byte-identical output.
//!
//! The fault injector is process-global (`campaign::faults`), so every
//! test here serializes on [`FAULTS`] and disarms before returning.

use campaign::faults::{arm, disarm, FaultPlan};
use campaign::{
    execute_resumable, fingerprint, record_run_traces, CampaignError, CampaignReport, CampaignSpec,
    ExecutionOptions, FailurePolicy, JournalError, TraceFormat,
};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that arm the process-global fault plan.
static FAULTS: Mutex<()> = Mutex::new(());

fn faults_lock() -> MutexGuard<'static, ()> {
    // A panicking test must not wedge the rest of the suite.
    FAULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A 4-run campaign (1 mix x 2 scenarios x 2 defenses) small enough to
/// execute many times per test.
fn tiny_campaign() -> CampaignSpec {
    let mut campaign = CampaignSpec::smoke();
    campaign.name = "fault-tolerance".to_owned();
    campaign.mix_count = 1;
    campaign.threads_per_mix = 2;
    campaign.scale.benign_instructions = 400;
    campaign.scale.min_cycles = 20_000;
    campaign
}

fn scratch(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn options(policy: FailurePolicy) -> ExecutionOptions {
    ExecutionOptions {
        policy,
        journal: None,
        scheduler: Default::default(),
    }
}

/// Runs the campaign with no faults armed — the reference output.
fn clean_reference(campaign: &CampaignSpec) -> CampaignReport {
    disarm();
    execute_resumable(
        campaign,
        campaign.expand(),
        0,
        &options(FailurePolicy::Abort),
    )
    .expect("clean campaign runs")
}

#[test]
fn an_injected_panic_aborts_by_default_with_the_run_identity() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    arm(FaultPlan {
        panic_on_run: Some((2, u32::MAX)),
        ..Default::default()
    });
    let result = execute_resumable(
        &campaign,
        campaign.expand(),
        0,
        &options(FailurePolicy::Abort),
    );
    disarm();
    match result {
        Err(CampaignError::RunFailed { index, cause, .. }) => {
            assert_eq!(index, 2);
            assert!(cause.contains("injected fault"), "got: {cause}");
        }
        other => panic!("expected RunFailed, got {other:?}"),
    }
}

#[test]
fn quarantine_completes_and_marks_the_point_degraded() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    let reference = clean_reference(&campaign);
    arm(FaultPlan {
        panic_on_run: Some((1, u32::MAX)),
        ..Default::default()
    });
    let report = execute_resumable(
        &campaign,
        campaign.expand(),
        0,
        &options(FailurePolicy::Quarantine),
    )
    .expect("quarantine completes the campaign");
    disarm();
    assert_eq!(report.outcomes.len(), reference.outcomes.len() - 1);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].index, 1);
    assert_eq!(report.failures[0].attempts, 1);
    assert!(report.failures[0].cause.contains("injected fault"));
    assert!(report.summary.is_degraded());
    assert_eq!(
        report
            .summary
            .points
            .iter()
            .map(|p| p.failed_runs)
            .sum::<usize>(),
        1
    );
    // The manifest names the quarantined run; the summary CSV still
    // parses (the degraded point serializes like any other).
    assert!(report.failures_csv().contains(&report.failures[0].name));
    assert!(campaign::parse_summary_csv(&report.summary.to_csv()).is_ok());
}

#[test]
fn retry_recovers_a_transient_fault_to_byte_identical_output() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    let reference = clean_reference(&campaign);
    // The fault fires only on the first attempt of run 2: the retry
    // succeeds, and the campaign output is as if nothing happened.
    arm(FaultPlan {
        panic_on_run: Some((2, 1)),
        ..Default::default()
    });
    let report = execute_resumable(
        &campaign,
        campaign.expand(),
        0,
        &options(FailurePolicy::Retry { max_attempts: 3 }),
    )
    .expect("retry completes the campaign");
    disarm();
    assert!(report.failures.is_empty(), "the retry must succeed");
    assert_eq!(report.outcomes, reference.outcomes);
    assert_eq!(report.summary.to_csv(), reference.summary.to_csv());
    assert_eq!(report.summary.to_json(), reference.summary.to_json());
}

#[test]
fn retry_exhaustion_quarantines_with_the_attempt_count() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    arm(FaultPlan {
        panic_on_run: Some((0, u32::MAX)),
        ..Default::default()
    });
    let report = execute_resumable(
        &campaign,
        campaign.expand(),
        0,
        &options(FailurePolicy::Retry { max_attempts: 2 }),
    )
    .expect("exhausted retries quarantine, not abort");
    disarm();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].index, 0);
    assert_eq!(report.failures[0].attempts, 2);
}

#[test]
fn injected_trace_io_errors_follow_the_policy() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    let dir = scratch("fault-trace-io");
    let replayable: Vec<_> = campaign
        .expand()
        .iter()
        .map(|run| record_run_traces(run, &dir, TraceFormat::Binary).expect("recording succeeds"))
        .collect();
    disarm();
    let reference = execute_resumable(
        &campaign,
        replayable.clone(),
        0,
        &options(FailurePolicy::Abort),
    )
    .expect("clean trace campaign runs");
    // One injected open failure: the first run to open a trace fails
    // once; under Retry the second attempt re-opens successfully.
    arm(FaultPlan {
        trace_open_failures: 1,
        ..Default::default()
    });
    let report = execute_resumable(
        &campaign,
        replayable,
        0,
        &options(FailurePolicy::Retry { max_attempts: 2 }),
    )
    .expect("retry heals the transient I/O fault");
    disarm();
    assert!(report.failures.is_empty());
    assert_eq!(report.outcomes, reference.outcomes);
    assert_eq!(report.summary.to_csv(), reference.summary.to_csv());
}

#[test]
fn an_aborted_campaign_resumes_to_byte_identical_output() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    let reference = clean_reference(&campaign);
    for workers in [0usize, 2] {
        let dir = scratch(&format!("fault-resume-{workers}"));
        let journal = dir.join("campaign.journal");
        let journaled = ExecutionOptions {
            policy: FailurePolicy::Abort,
            journal: Some(journal.clone()),
            scheduler: Default::default(),
        };
        // First invocation dies on run 2; runs 0 and 1 are journaled.
        arm(FaultPlan {
            panic_on_run: Some((2, u32::MAX)),
            ..Default::default()
        });
        let result = execute_resumable(&campaign, campaign.expand(), workers, &journaled);
        disarm();
        assert!(result.is_err(), "the armed campaign must abort");
        // Second invocation resumes: replays 0..2, runs only the tail.
        let resumed = execute_resumable(&campaign, campaign.expand(), workers, &journaled)
            .expect("resume completes");
        assert_eq!(resumed.replayed, 2, "{workers} workers");
        assert_eq!(resumed.outcomes, reference.outcomes);
        assert_eq!(resumed.summary.to_csv(), reference.summary.to_csv());
        assert_eq!(resumed.summary.to_json(), reference.summary.to_json());
        // A third invocation finds everything journaled: nothing
        // executes, output still byte-identical.
        let replayed = execute_resumable(&campaign, campaign.expand(), workers, &journaled)
            .expect("full replay completes");
        assert_eq!(replayed.replayed, reference.outcomes.len());
        assert_eq!(replayed.runs_per_sec(), None, "nothing executed");
        assert_eq!(replayed.summary.to_csv(), reference.summary.to_csv());
    }
}

#[test]
fn pooled_quarantine_matches_sequential_byte_for_byte() {
    let _guard = faults_lock();
    let campaign = tiny_campaign();
    let mut reports = Vec::new();
    for workers in [0usize, 2] {
        arm(FaultPlan {
            panic_on_run: Some((1, u32::MAX)),
            ..Default::default()
        });
        let report = execute_resumable(
            &campaign,
            campaign.expand(),
            workers,
            &options(FailurePolicy::Quarantine),
        )
        .expect("quarantine completes");
        disarm();
        reports.push(report);
    }
    let (sequential, pooled) = (&reports[0], &reports[1]);
    assert_eq!(pooled.outcomes, sequential.outcomes);
    assert_eq!(pooled.failures, sequential.failures);
    assert_eq!(pooled.summary.to_csv(), sequential.summary.to_csv());
    assert_eq!(pooled.summary.to_json(), sequential.summary.to_json());
    assert_eq!(pooled.failures_csv(), sequential.failures_csv());
    assert_eq!(pooled.failures_json(), sequential.failures_json());
}

#[test]
fn a_journal_refuses_a_different_campaign() {
    let _guard = faults_lock();
    disarm();
    let campaign = tiny_campaign();
    let dir = scratch("fault-mismatch");
    let journal = dir.join("campaign.journal");
    let journaled = ExecutionOptions {
        policy: FailurePolicy::Abort,
        journal: Some(journal),
        scheduler: Default::default(),
    };
    execute_resumable(&campaign, campaign.expand(), 0, &journaled).expect("first campaign runs");
    let mut other = campaign.clone();
    other.seed ^= 0xdead_beef;
    assert_ne!(fingerprint(&campaign), fingerprint(&other));
    match execute_resumable(&other, other.expand(), 0, &journaled) {
        Err(CampaignError::Checkpoint {
            error: JournalError::SpecMismatch { message },
        }) => assert!(message.contains("fingerprint"), "got: {message}"),
        other => panic!("expected a spec mismatch, got {other:?}"),
    }
}
