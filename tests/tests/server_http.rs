//! End-to-end tests of the campaign server over real loopback HTTP:
//! concurrent clients streaming byte-identical results that match batch
//! execution, bounded-queue backpressure, and the admission-time wire
//! contract (fingerprint pinning, malformed specs, run limits).

use campaign::checkpoint::fingerprint;
use campaign::{execute_observed, wire, CampaignSpec, ExecutionOptions};
use integration_tests::{serve_campaign, serve_slow_campaign};
use server::http::client;
use server::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// A fresh data directory under the temp dir, wiped before use.
fn data_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bh-serve-tests")
        .join(format!("{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(test: &str, queue_capacity: usize, max_runs: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir(test),
        queue_capacity,
        workers: 2,
        max_runs,
        scheduler: Default::default(),
    })
    .expect("server starts on an ephemeral port")
}

/// POSTs `spec` (with its fingerprint pinned in the request header) and
/// returns `(status, body)`.
fn submit(addr: &str, spec: &CampaignSpec) -> (u16, String) {
    let body = wire::spec_to_json(spec);
    let fp = format!("{:016x}", fingerprint(spec));
    let response = client::request(
        addr,
        "POST",
        "/campaigns",
        &[("x-campaign-fingerprint", &fp)],
        body.as_bytes(),
    )
    .expect("loopback request succeeds");
    let text = response.utf8().expect("response is UTF-8").to_owned();
    (response.status, text)
}

/// Polls the status document until `phase` appears (or panics).
fn await_phase(addr: &str, id: &str, phase: &str) -> String {
    for _ in 0..600 {
        let response = client::request(addr, "GET", &format!("/campaigns/{id}"), &[], &[])
            .expect("status request succeeds");
        let body = response.utf8().expect("status is UTF-8").to_owned();
        if body.contains(&format!("\"phase\":\"{phase}\"")) {
            return body;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("campaign {id} never reached phase {phase}");
}

/// The batch-engine reference: the NDJSON record lines and final
/// artifacts of `spec` executed locally, without any server.
fn batch_reference(spec: &CampaignSpec) -> (Vec<String>, String, String, String) {
    let mut lines = Vec::new();
    let report = execute_observed(
        spec,
        spec.expand(),
        0,
        &ExecutionOptions::default(),
        &mut |entry, _| lines.push(wire::entry_to_ndjson(entry)),
    )
    .expect("batch reference executes");
    (
        lines,
        report.summary.to_csv(),
        report.summary.to_json(),
        report.stepping_csv(),
    )
}

#[test]
fn concurrent_clients_stream_byte_identical_results_matching_batch() {
    let spec = serve_campaign();
    // The reference runs sequentially (workers = 0); the server runs the
    // same spec with two workers. Byte-identical output across worker
    // counts is the campaign engine's determinism contract.
    let (expected_lines, expected_csv, expected_json, expected_stepping) = batch_reference(&spec);
    assert_eq!(expected_lines.len(), spec.run_count());

    let server = start("concurrent", 8, 100_000);
    let addr = server.addr().to_string();
    let id = format!("{:016x}", fingerprint(&spec));

    // Two clients race the same submission; admission is idempotent, so
    // exactly one 201 (admitted) and one 200 (already known).
    let submits: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| scope.spawn(|| submit(&addr, &spec)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut statuses: Vec<u16> = submits.iter().map(|(status, _)| *status).collect();
    statuses.sort_unstable();
    assert_eq!(statuses, [200, 201], "got: {submits:?}");

    // Both clients stream the results concurrently; each must receive
    // the complete record sequence, byte-identical to the batch run.
    let streams: Vec<(u16, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let mut lines = Vec::new();
                    let status =
                        client::stream(&addr, &format!("/campaigns/{id}/results"), &mut |line| {
                            lines.push(line.to_owned());
                            Ok(())
                        })
                        .expect("streaming request succeeds");
                    (status, lines)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, lines) in &streams {
        assert_eq!(*status, 200);
        assert_eq!(lines, &expected_lines, "streamed records must match batch");
    }

    // The campaign finished cleanly and its artifacts are byte-identical
    // to what the batch engine writes.
    let status = await_phase(&addr, &id, "done");
    assert!(status.contains(&format!("\"completed\":{}", spec.run_count())));
    assert!(status.contains("\"failed\":0"));
    for (artifact, expected) in [
        ("csv", &expected_csv),
        ("json", &expected_json),
        ("stepping", &expected_stepping),
    ] {
        let response = client::request(
            &addr,
            "GET",
            &format!("/campaigns/{id}/artifacts/{artifact}"),
            &[],
            &[],
        )
        .expect("artifact request succeeds");
        assert_eq!(response.status, 200, "artifact {artifact}");
        assert_eq!(
            response.utf8().unwrap(),
            expected.as_str(),
            "artifact {artifact} bytes"
        );
    }

    // A client attaching after completion replays the same bytes.
    let mut late = Vec::new();
    let status = client::stream(&addr, &format!("/campaigns/{id}/results"), &mut |line| {
        late.push(line.to_owned());
        Ok(())
    })
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(late, expected_lines);

    server.stop();
}

#[test]
fn full_queue_rejects_with_503_and_retry_after() {
    let server = start("backpressure", 1, 100_000);
    let addr = server.addr().to_string();

    // Occupy the executor with the slow campaign…
    let slow = serve_slow_campaign();
    let (status, _) = submit(&addr, &slow);
    assert_eq!(status, 201);
    await_phase(&addr, &format!("{:016x}", fingerprint(&slow)), "running");

    // …fill the 1-slot queue behind it…
    let mut queued = serve_campaign();
    queued.name = "serve-queued".to_owned();
    let (status, _) = submit(&addr, &queued);
    assert_eq!(status, 201);

    // …and the third client is told to back off.
    let mut rejected = serve_campaign();
    rejected.name = "serve-rejected".to_owned();
    let body = wire::spec_to_json(&rejected);
    let response = client::request(&addr, "POST", "/campaigns", &[], body.as_bytes()).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    // The rejected campaign was not recorded anywhere: no status, and no
    // spec.json that a restart would wrongly revive.
    let rejected_id = format!("{:016x}", fingerprint(&rejected));
    let response =
        client::request(&addr, "GET", &format!("/campaigns/{rejected_id}"), &[], &[]).unwrap();
    assert_eq!(response.status, 404);
    assert!(!server
        .config()
        .data_dir
        .join(&rejected_id)
        .join("spec.json")
        .exists());

    let response = client::request(&addr, "GET", "/healthz", &[], &[]).unwrap();
    assert_eq!(response.status, 200);
    let health = response.utf8().unwrap();
    assert!(health.contains("\"queue_depth\":1"), "got: {health}");
    assert!(health.contains("\"queue_capacity\":1"));
    assert!(health.contains("\"executor_alive\":true"));

    server.stop();
}

#[test]
fn admission_refuses_bad_specs_and_mismatched_fingerprints() {
    let server = start("refusals", 8, 6);
    let addr = server.addr().to_string();
    let spec = serve_campaign();
    let body = wire::spec_to_json(&spec);

    // Not JSON at all.
    let response = client::request(&addr, "POST", "/campaigns", &[], b"not json").unwrap();
    assert_eq!(response.status, 400);
    assert!(response.utf8().unwrap().contains("spec refused"));

    // Structurally valid JSON that violates spec bounds.
    let zero_mixes = body.replacen("\"mix_count\":1", "\"mix_count\":0", 1);
    let response =
        client::request(&addr, "POST", "/campaigns", &[], zero_mixes.as_bytes()).unwrap();
    assert_eq!(response.status, 400);

    // A fingerprint the client computed over a *different* spec than it
    // sent: the server must refuse rather than silently re-keying.
    let response = client::request(
        &addr,
        "POST",
        "/campaigns",
        &[("x-campaign-fingerprint", "00000000deadbeef")],
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 400);
    assert!(response.utf8().unwrap().contains("does not match"));

    // Over the server's run budget (this server caps at 6; an 8-run
    // variant must be refused before touching the queue).
    let mut big = spec.clone();
    big.mix_count = 2;
    assert!(big.run_count() > 6);
    let (status, body_text) = submit(&addr, &big);
    assert_eq!(status, 400);
    assert!(body_text.contains("over this server's limit"));

    // Unknown routes and methods.
    let response = client::request(&addr, "GET", "/campaigns/feedbeef00000000", &[], &[]).unwrap();
    assert_eq!(response.status, 404);
    let response = client::request(&addr, "GET", "/nope", &[], &[]).unwrap();
    assert_eq!(response.status, 404);
    let response = client::request(&addr, "DELETE", "/campaigns", &[], &[]).unwrap();
    assert_eq!(response.status, 405);

    // Nothing above was admitted.
    assert!(server
        .config()
        .data_dir
        .read_dir()
        .map_or(true, |mut d| d.next().is_none()));
    server.stop();
}
