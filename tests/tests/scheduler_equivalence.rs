//! Equivalence of the two FR-FCFS scheduling implementations.
//!
//! The memory controller can scan its demand queues either linearly
//! (`SchedulerPolicy::LinearScan`, the reference implementation) or via
//! per-bank indexed queues (`SchedulerPolicy::BankedIndex`, the fast
//! default). The two must make identical decisions cycle for cycle, so
//! these tests drive both through the same mixed read/write multi-bank
//! workloads — including stateful defenses whose behaviour depends on the
//! exact order they are consulted in — and assert identical completion
//! streams and controller statistics.

use bh_types::{AccessType, Cycle, DramAddress, ReqId, ThreadId};
use memctrl::{CtrlStats, MemCtrlConfig, MemoryController, SchedulerPolicy};
use mitigations::{
    DefenseGeometry, DefenseStats, MetadataFootprint, NoMitigation, Para, RowHammerDefense,
    RowHammerThreshold,
};
use proptest::prelude::*;

/// One demand access of a generated workload.
struct Access {
    thread: usize,
    phys: u64,
    access: AccessType,
    arrival: Cycle,
}

/// A defense whose veto decisions depend on *how many times* it has been
/// consulted: it vetoes every third `is_activation_safe` call. Any
/// difference in the order or number of defense consultations between two
/// controller implementations snowballs into divergent schedules, so
/// agreement under this defense pins the consultation sequence itself.
#[derive(Debug, Default)]
struct CountedVeto {
    calls: u64,
    vetoes: u64,
}

impl RowHammerDefense for CountedVeto {
    fn name(&self) -> &'static str {
        "CountedVeto"
    }
    fn is_activation_safe(&mut self, _now: Cycle, _thread: ThreadId, _addr: &DramAddress) -> bool {
        self.calls += 1;
        if self.calls % 3 == 0 {
            self.vetoes += 1;
            false
        } else {
            true
        }
    }
    fn on_activation(
        &mut self,
        _now: Cycle,
        _thread: ThreadId,
        _addr: &DramAddress,
    ) -> Vec<DramAddress> {
        Vec::new()
    }
    fn metadata(&self) -> MetadataFootprint {
        MetadataFootprint::default()
    }
    fn stats(&self) -> DefenseStats {
        DefenseStats {
            blocked_activations: self.vetoes,
            ..DefenseStats::default()
        }
    }
}

/// Decodes one random word into an access; rows and columns are kept in a
/// small range so workloads mix row hits, misses and conflicts densely
/// across several banks.
fn decode_accesses(words: &[u64]) -> Vec<Access> {
    let config = MemCtrlConfig::default();
    let geometry = config.organization.geometry();
    let mapping = config.mapping;
    let mut arrival: Cycle = 0;
    words
        .iter()
        .map(|&word| {
            let thread = (word & 7) as usize;
            let bank_group = ((word >> 3) & 3) as usize;
            let bank = ((word >> 5) & 3) as usize;
            let row = (word >> 7) & 31;
            let column = (word >> 12) & 127;
            let is_write = (word >> 19) & 3 == 0;
            arrival += (word >> 21) & 7;
            let addr = DramAddress::new(0, 0, bank_group, bank, row, column);
            Access {
                thread,
                phys: mapping.encode(&geometry, &addr),
                access: if is_write {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
                arrival,
            }
        })
        .collect()
}

/// Runs `accesses` through a controller with the given policy and defense,
/// retrying rejected enqueues each cycle, until the controller drains.
/// Returns the completion stream (request id, completion cycle) in report
/// order plus the final controller statistics.
fn run_workload(
    policy: SchedulerPolicy,
    accesses: &[Access],
    mut defense: Box<dyn RowHammerDefense>,
) -> (Vec<(ReqId, Cycle)>, CtrlStats) {
    let config = MemCtrlConfig {
        scheduler: policy,
        ..MemCtrlConfig::default()
    };
    let mut ctrl = MemoryController::new(config);
    let mut completions = Vec::new();
    let mut next = 0;
    let mut cycle: Cycle = 0;
    while next < accesses.len() || !ctrl.is_idle() {
        while next < accesses.len() && accesses[next].arrival <= cycle {
            let access = &accesses[next];
            let accepted = ctrl
                .enqueue(
                    ThreadId::new(access.thread),
                    access.phys,
                    access.access,
                    cycle,
                    defense.as_ref(),
                )
                .is_ok();
            if accepted {
                next += 1;
            } else {
                break;
            }
        }
        for done in ctrl.tick(cycle, defense.as_mut()) {
            completions.push((done.request.id, done.completed_at));
        }
        cycle += 1;
        assert!(cycle < 50_000_000, "workload did not drain");
    }
    (completions, ctrl.stats().clone())
}

fn assert_policies_agree(
    accesses: &[Access],
    make_defense: impl Fn() -> Box<dyn RowHammerDefense>,
) {
    let (linear_done, linear_stats) =
        run_workload(SchedulerPolicy::LinearScan, accesses, make_defense());
    let (banked_done, banked_stats) =
        run_workload(SchedulerPolicy::BankedIndex, accesses, make_defense());
    assert_eq!(
        linear_done, banked_done,
        "completion streams diverged between scheduling policies"
    );
    assert_eq!(
        linear_stats, banked_stats,
        "controller statistics diverged between scheduling policies"
    );
}

/// A long deterministic mixed workload under a reactive defense (PARA
/// injects victim-refresh traffic, exercising the victim queue alongside
/// the demand queues).
#[test]
fn policies_agree_on_a_dense_mix_with_victim_refreshes() {
    // A fixed multiplicative generator; the constants are arbitrary.
    let words: Vec<u64> = (1..400u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect();
    let accesses = decode_accesses(&words);
    assert!(accesses.iter().any(|a| a.access == AccessType::Write));
    assert_policies_agree(&accesses, || {
        Box::new(Para::new(
            RowHammerThreshold::new(64),
            5e-2,
            DefenseGeometry::default(),
            7,
        ))
    });
}

/// The same dense mix under no defense at all (pure FR-FCFS ordering).
#[test]
fn policies_agree_on_a_dense_mix_without_defense() {
    let words: Vec<u64> = (1..400u64)
        .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95).rotate_left(29))
        .collect();
    let accesses = decode_accesses(&words);
    assert_policies_agree(&accesses, || Box::new(NoMitigation::new()));
}

proptest! {
    /// Random mixed read/write multi-bank workloads complete identically
    /// under both scheduling policies, with a consultation-order-sensitive
    /// throttling defense in the loop.
    #[test]
    fn policies_agree_on_random_workloads(words in proptest::collection::vec(0u64..u64::MAX, 1..100)) {
        let accesses = decode_accesses(&words);
        let (linear_done, linear_stats) = run_workload(
            SchedulerPolicy::LinearScan,
            &accesses,
            Box::new(CountedVeto::default()),
        );
        let (banked_done, banked_stats) = run_workload(
            SchedulerPolicy::BankedIndex,
            &accesses,
            Box::new(CountedVeto::default()),
        );
        prop_assert_eq!(linear_done, banked_done);
        prop_assert_eq!(linear_stats, banked_stats);
    }
}
