//! End-to-end tests of the channel-sharded memory subsystem: a
//! `channels = 1` system must behave exactly like the paper's single-channel
//! configuration, and multi-channel systems must run figure-5-style
//! multiprogrammed workloads with an independent defense instance per
//! channel.

use integration_tests::{attack_system, TEST_REFRESH_WINDOW, TEST_TIME_SCALE};
use sim::{DefenseKind, RunResult, SystemBuilder};
use workloads::SyntheticSpec;

/// A figure-5-style multiprogrammed mix (attacker + benign threads of each
/// intensity category) on a system with the given number of channels.
fn multiprogram_run(channels: usize, kind: DefenseKind) -> RunResult {
    SystemBuilder::new()
        .time_scale(TEST_TIME_SCALE)
        .channels(channels)
        .defense(kind)
        .rowhammer_threshold(32_768)
        .llc_capacity(1 << 20)
        .min_cycles(2 * TEST_REFRESH_WINDOW)
        .max_cycles(1_500_000)
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("victim.high", 0), 5_000)
        .add_workload(SyntheticSpec::medium_intensity("victim.medium", 1), 5_000)
        .add_workload(SyntheticSpec::low_intensity("victim.low", 2), 5_000)
        .run()
}

/// `channels = 1` through the sharded subsystem is the same single-channel
/// path the whole pre-sharding test suite validates: an explicit
/// `.channels(1)` reproduces the default builder's results exactly.
#[test]
fn single_channel_regression_matches_default_path() {
    let default_run = attack_system(DefenseKind::BlockHammer).run();
    let explicit_run = attack_system(DefenseKind::BlockHammer).channels(1).run();
    assert_eq!(default_run.total_cycles, explicit_run.total_cycles);
    assert_eq!(default_run.dram.totals(), explicit_run.dram.totals());
    assert_eq!(
        default_run.ctrl.accepted_requests,
        explicit_run.ctrl.accepted_requests
    );
    assert_eq!(
        default_run.defense_stats.observed_activations,
        explicit_run.defense_stats.observed_activations
    );
    for (a, b) in default_run.threads.iter().zip(&explicit_run.threads) {
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.memory_requests, b.memory_requests);
        assert_eq!(a.max_rhli, b.max_rhli);
    }
}

/// A two-channel system runs the multiprogrammed mix end to end: every
/// benign thread finishes, both channels carry traffic, and each channel's
/// independent defense instance reports its own activity.
#[test]
fn two_channels_run_multiprogram_mix_end_to_end() {
    let result = multiprogram_run(2, DefenseKind::BlockHammer);
    assert_eq!(result.per_channel.len(), 2);
    for thread in result.benign_threads() {
        assert!(
            thread.instructions >= 5_000,
            "benign thread {} finished only {} instructions",
            thread.name,
            thread.instructions
        );
    }
    for shard in &result.per_channel {
        assert_eq!(shard.defense, "BlockHammer");
        assert!(
            shard.dram.totals().activates > 0,
            "channel {} carried no traffic",
            shard.channel
        );
        assert!(
            shard.defense_stats.observed_activations > 0,
            "channel {}'s defense observed nothing",
            shard.channel
        );
    }
    // The per-channel defenses observe disjoint traffic; the merged view
    // is their sum.
    let per_channel_observed: u64 = result
        .per_channel
        .iter()
        .map(|shard| shard.defense_stats.observed_activations)
        .sum();
    assert_eq!(
        result.defense_stats.observed_activations,
        per_channel_observed
    );
}

/// The attacker is identified (RHLI > 0) and throttled on a sharded
/// system too: each channel's BlockHammer sees the attack traffic that
/// lands on its shard.
#[test]
fn sharded_blockhammer_still_identifies_and_throttles_the_attacker() {
    let baseline = multiprogram_run(2, DefenseKind::Baseline);
    let protected = multiprogram_run(2, DefenseKind::BlockHammer);
    let attacker_rate = |r: &RunResult| r.threads[0].memory_requests as f64 / r.total_cycles as f64;
    assert!(
        attacker_rate(&protected) < attacker_rate(&baseline),
        "BlockHammer must reduce the attacker's throughput on a 2-channel system \
         (baseline {:.4}/cycle, protected {:.4}/cycle)",
        attacker_rate(&baseline),
        attacker_rate(&protected)
    );
    let attacker = protected.attacker().expect("mix has an attacker");
    assert!(attacker.max_rhli > 0.0, "attacker RHLI must be non-zero");
    for benign in protected.benign_threads() {
        assert_eq!(
            benign.max_rhli, 0.0,
            "benign thread {} was flagged with RHLI {}",
            benign.name, benign.max_rhli
        );
    }
}

/// RowHammer safety holds per channel: with the activation log enabled on
/// a 2-channel BlockHammer system, no row of either channel exceeds the
/// scaled threshold within a refresh window.
#[test]
fn sharded_blockhammer_keeps_every_channel_safe() {
    let result = SystemBuilder::new()
        .time_scale(TEST_TIME_SCALE)
        .channels(2)
        .defense(DefenseKind::BlockHammer)
        .rowhammer_threshold(32_768)
        .llc_capacity(1 << 20)
        .min_cycles(2 * TEST_REFRESH_WINDOW)
        .max_cycles(1_500_000)
        .activation_log()
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("victim.high", 0), 5_000)
        .run();
    let worst = result
        .dram
        .max_row_activations_in_window(TEST_REFRESH_WINDOW)
        .expect("activation log enabled");
    assert!(
        worst <= result.n_rh,
        "a row received {worst} activations within one refresh window, above N_RH = {}",
        result.n_rh
    );
}

/// Four channels work too, and shard statistics stay consistent with the
/// merged system-wide view.
#[test]
fn four_channel_stats_are_consistent() {
    let result = multiprogram_run(4, DefenseKind::Graphene);
    assert_eq!(result.per_channel.len(), 4);
    assert_eq!(result.dram.per_rank.len(), 4);
    let summed: u64 = result
        .per_channel
        .iter()
        .map(|shard| shard.dram.totals().activates)
        .sum();
    assert_eq!(result.dram.totals().activates, summed);
    let summed_victims: u64 = result
        .per_channel
        .iter()
        .map(|shard| shard.ctrl.victim_refreshes_performed)
        .sum();
    assert_eq!(result.ctrl.victim_refreshes_performed, summed_victims);
}

/// `channels = 1` run statistics are pinned to exact values so that any
/// future change to the scheduling hot path, the completion stream or the
/// controller bookkeeping that alters single-channel behaviour — however
/// subtly — fails loudly instead of drifting silently.
///
/// The golden values were captured after the FR-FCFS bookkeeping fixes
/// (stable completion ordering, per-rank refresh scanning) and the
/// per-bank queue index landed, and are identical in debug and release
/// builds. They encode the post-fix single-channel behaviour that the
/// banked and linear scheduling policies both produce.
#[test]
fn single_channel_run_stats_are_pinned() {
    let result = SystemBuilder::new()
        .time_scale(TEST_TIME_SCALE)
        .defense(DefenseKind::BlockHammer)
        .rowhammer_threshold(32_768)
        .llc_capacity(1 << 20)
        .min_cycles(60_000)
        .max_cycles(1_500_000)
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("victim.high", 0), 3_000)
        .run();
    assert_eq!(result.total_cycles, 60_000);
    assert_eq!(result.dram.totals().activates, 456);
    assert_eq!(result.ctrl.accepted_requests, 1_546);
    assert_eq!(result.ctrl.row_hits, 1_546);
    assert_eq!(result.ctrl.row_conflicts, 408);
    assert_eq!(result.ctrl.reads_completed, 1_546);
    assert_eq!(result.ctrl.writes_completed, 0);
    assert_eq!(result.ctrl.auto_refreshes, 2);
    assert_eq!(result.ctrl.activations_delayed_by_defense, 208);
    assert_eq!(result.threads[0].memory_requests, 1_488);
    assert_eq!(result.threads[1].instructions, 3_000);
    assert_eq!(result.threads[1].cycles, 7_617);
    assert_eq!(result.llc_hits, 14);
    assert_eq!(result.llc_misses, 58);
}
