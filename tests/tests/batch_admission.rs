//! Equivalence of batched and per-request controller admission.
//!
//! `MemoryController::enqueue_batch` amortizes the enqueue-side work
//! (defense quota lookups, queue-space accounting) across a per-channel
//! batch, as the simulator's per-cycle fetch/writeback drains use it. It
//! must admit exactly the requests that retrying `enqueue` one request at
//! a time (stopping at the first rejection, like the pre-batch drain loop
//! did) would admit, assign the same ids, and count the same statistics —
//! under queue-full pressure and defense quotas alike. These tests drive
//! both admission styles through identical workloads and assert identical
//! completion streams and controller statistics.

use bh_types::{AccessType, Cycle, DramAddress, ReqId, ThreadId};
use memctrl::{CtrlStats, MemCtrlConfig, MemoryController};
use mitigations::{DefenseStats, MetadataFootprint, NoMitigation, RowHammerDefense};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A defense that imposes a small fixed in-flight quota on every thread,
/// so `QuotaExceeded` rejections happen constantly.
#[derive(Debug)]
struct FixedQuota(u32);

impl RowHammerDefense for FixedQuota {
    fn name(&self) -> &'static str {
        "FixedQuota"
    }
    fn on_activation(
        &mut self,
        _now: Cycle,
        _thread: ThreadId,
        _addr: &DramAddress,
    ) -> Vec<DramAddress> {
        Vec::new()
    }
    fn inflight_quota(&self, _thread: ThreadId, _bank: usize) -> Option<u32> {
        Some(self.0)
    }
    fn metadata(&self) -> MetadataFootprint {
        MetadataFootprint::default()
    }
    fn stats(&self) -> DefenseStats {
        DefenseStats::default()
    }
}

/// One demand access of a generated workload.
struct Access {
    thread: usize,
    phys: u64,
    access: AccessType,
    arrival: Cycle,
}

/// Decodes random words into a dense multi-bank access stream (same
/// approach as the scheduler equivalence suite).
fn decode_accesses(words: &[u64]) -> Vec<Access> {
    let config = MemCtrlConfig::default();
    let geometry = config.organization.geometry();
    let mapping = config.mapping;
    let mut arrival: Cycle = 0;
    words
        .iter()
        .map(|&word| {
            let thread = (word & 7) as usize;
            let bank_group = ((word >> 3) & 3) as usize;
            let bank = ((word >> 5) & 3) as usize;
            let row = (word >> 7) & 31;
            let column = (word >> 12) & 127;
            let is_write = (word >> 19) & 3 == 0;
            arrival += (word >> 21) & 7;
            let addr = DramAddress::new(0, 0, bank_group, bank, row, column);
            Access {
                thread,
                phys: mapping.encode(&geometry, &addr),
                access: if is_write {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
                arrival,
            }
        })
        .collect()
}

/// How pending requests are handed to the controller each cycle.
#[derive(Clone, Copy)]
enum AdmissionStyle {
    /// Retry the head of each queue with `enqueue` until the first error
    /// (the pre-batch drain loop).
    Singles,
    /// One `enqueue_batch` call per queue per cycle.
    Batched,
}

/// Runs `accesses` through a controller, queueing arrivals into per-kind
/// pending queues (like the simulator's per-channel fetch and writeback
/// queues) and draining them each cycle in the given style. Returns the
/// completion stream and final statistics.
fn run_workload(
    style: AdmissionStyle,
    accesses: &[Access],
    mut defense: Box<dyn RowHammerDefense>,
) -> (Vec<(ReqId, Cycle)>, CtrlStats) {
    let config = MemCtrlConfig {
        // Small queues make QueueFull rejections frequent.
        read_queue_capacity: 12,
        write_queue_capacity: 12,
        write_drain_high: 8,
        write_drain_low: 3,
        ..MemCtrlConfig::default()
    };
    let mut ctrl = MemoryController::new(config);
    let mut reads: VecDeque<(ThreadId, u64)> = VecDeque::new();
    let mut writes: VecDeque<(ThreadId, u64)> = VecDeque::new();
    let mut completions = Vec::new();
    let mut next = 0;
    let mut cycle: Cycle = 0;
    loop {
        while next < accesses.len() && accesses[next].arrival <= cycle {
            let access = &accesses[next];
            let entry = (ThreadId::new(access.thread), access.phys);
            match access.access {
                AccessType::Read => reads.push_back(entry),
                AccessType::Write => writes.push_back(entry),
            }
            next += 1;
        }
        for (queue, kind) in [
            (&mut reads, AccessType::Read),
            (&mut writes, AccessType::Write),
        ] {
            match style {
                AdmissionStyle::Singles => {
                    while let Some(&(thread, phys)) = queue.front() {
                        if ctrl
                            .enqueue(thread, phys, kind, cycle, defense.as_ref())
                            .is_ok()
                        {
                            queue.pop_front();
                        } else {
                            break;
                        }
                    }
                }
                AdmissionStyle::Batched => {
                    let outcome = ctrl.enqueue_batch(
                        queue.iter().map(|&(thread, phys)| (thread, phys, ())),
                        kind,
                        cycle,
                        defense.as_ref(),
                        |_, ()| {},
                    );
                    queue.drain(..outcome.accepted);
                }
            }
        }
        for done in ctrl.tick(cycle, defense.as_mut()) {
            completions.push((done.request.id, done.completed_at));
        }
        if next >= accesses.len() && reads.is_empty() && writes.is_empty() && ctrl.is_idle() {
            break;
        }
        cycle += 1;
        assert!(cycle < 50_000_000, "workload did not drain");
    }
    (completions, ctrl.stats().clone())
}

fn assert_styles_agree(accesses: &[Access], make_defense: impl Fn() -> Box<dyn RowHammerDefense>) {
    let (singles_done, singles_stats) =
        run_workload(AdmissionStyle::Singles, accesses, make_defense());
    let (batched_done, batched_stats) =
        run_workload(AdmissionStyle::Batched, accesses, make_defense());
    assert_eq!(
        singles_done, batched_done,
        "completion streams diverged between admission styles"
    );
    assert_eq!(
        singles_stats, batched_stats,
        "controller statistics diverged between admission styles"
    );
}

/// A dense mixed read/write stream with no defense: exercises the
/// queue-full path of both admission styles.
#[test]
fn admission_styles_agree_without_a_defense() {
    let words: Vec<u64> = (1..500u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
        .collect();
    let accesses = decode_accesses(&words);
    assert!(accesses.iter().any(|a| a.access == AccessType::Write));
    assert_styles_agree(&accesses, || Box::new(NoMitigation::new()));
}

/// The same stream under a tight in-flight quota: exercises the
/// quota-rejection path (and its statistics) of both styles.
#[test]
fn admission_styles_agree_under_a_tight_quota() {
    let words: Vec<u64> = (1..500u64)
        .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95).rotate_left(7))
        .collect();
    let accesses = decode_accesses(&words);
    let (_, stats) = run_workload(AdmissionStyle::Singles, &accesses, Box::new(FixedQuota(2)));
    assert!(
        stats.rejected_quota > 0,
        "the scenario must actually exercise quota rejections"
    );
    assert_styles_agree(&accesses, || Box::new(FixedQuota(2)));
}

proptest! {
    /// Random workloads drain identically whether requests are admitted
    /// one at a time or per-cycle batches, with quota pressure in the
    /// loop.
    #[test]
    fn admission_styles_agree_on_random_workloads(
        words in proptest::collection::vec(0u64..u64::MAX, 1..80),
        quota in 1u32..6,
    ) {
        let accesses = decode_accesses(&words);
        let (singles_done, singles_stats) = run_workload(
            AdmissionStyle::Singles,
            &accesses,
            Box::new(FixedQuota(quota)),
        );
        let (batched_done, batched_stats) = run_workload(
            AdmissionStyle::Batched,
            &accesses,
            Box::new(FixedQuota(quota)),
        );
        prop_assert_eq!(singles_done, batched_done);
        prop_assert_eq!(singles_stats, batched_stats);
    }
}
