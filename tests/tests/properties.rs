//! Property-based tests on cross-crate invariants.

use bh_types::{AddressMapping, AddressMappingGeometry};
use blockhammer::config::{compute_t_delay, BlockHammerConfig};
use blockhammer::{security, DualCountingBloomFilter};
use mitigations::{DefenseGeometry, RowHammerThreshold};
use proptest::prelude::*;
use std::collections::HashMap;

/// The paper's Table 5 geometry widened to `channels` channels.
fn geometry_with_channels(channels: usize) -> AddressMappingGeometry {
    AddressMappingGeometry {
        channels,
        ..AddressMappingGeometry::default()
    }
}

proptest! {
    /// `decode` followed by `encode` is the identity on line-aligned
    /// physical addresses for every mapping scheme and for 1-, 2- and
    /// 4-channel organizations — the invariant the channel-sharded memory
    /// subsystem relies on to route requests.
    #[test]
    fn channel_decode_encode_round_trips(line in 0u64..(8u64 << 30) / 64, channel_exp in 0u32..3) {
        let channels = 1usize << channel_exp;
        let geometry = geometry_with_channels(channels);
        for mapping in [AddressMapping::Mop { mop_lines: 4 }, AddressMapping::RoBaRaCoCh] {
            let phys = (line * 64) % geometry.capacity_bytes();
            let decoded = mapping.decode(&geometry, phys);
            prop_assert!(decoded.channel() < channels);
            prop_assert_eq!(mapping.encode(&geometry, &decoded), phys);
        }
    }

    /// Splitting an address into `(channel, channel-local address)` and
    /// decoding the local part against the single-channel geometry yields
    /// the same DRAM coordinates as a full-system decode, for 1/2/4
    /// channels — so each shard's controller sees exactly the addresses it
    /// would see in an unsharded multi-channel controller.
    #[test]
    fn channel_local_split_preserves_coordinates(line in 0u64..(8u64 << 30) / 64, channel_exp in 0u32..3) {
        let channels = 1usize << channel_exp;
        let geometry = geometry_with_channels(channels);
        let local_geometry = geometry.per_channel();
        for mapping in [AddressMapping::Mop { mop_lines: 4 }, AddressMapping::RoBaRaCoCh] {
            let phys = (line * 64) % geometry.capacity_bytes();
            let full = mapping.decode(&geometry, phys);
            let (channel, local_phys) = mapping.to_channel_local(&geometry, phys);
            prop_assert_eq!(channel, full.channel());
            prop_assert_eq!(channel, mapping.channel_of(&geometry, phys));
            let local = mapping.decode(&local_geometry, local_phys);
            prop_assert_eq!(local.channel(), 0);
            prop_assert_eq!(local.rank(), full.rank());
            prop_assert_eq!(local.bank_group(), full.bank_group());
            prop_assert_eq!(local.bank(), full.bank());
            prop_assert_eq!(local.row(), full.row());
            prop_assert_eq!(local.column(), full.column());
        }
    }
    /// A counting Bloom filter never under-estimates: for any insertion
    /// sequence, every row's estimate is at least its true insertion count
    /// (the "no false negatives" property the security argument relies on).
    #[test]
    fn dcbf_never_underestimates(rows in proptest::collection::vec(0u64..200, 1..2_000)) {
        let mut filter = DualCountingBloomFilter::new(1024, 4, u32::MAX - 1, u64::MAX / 2, 99);
        let mut true_counts: HashMap<u64, u32> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            filter.insert(i as u64, *row);
            *true_counts.entry(*row).or_insert(0) += 1;
        }
        for (row, count) in true_counts {
            prop_assert!(
                filter.estimate(row) >= count,
                "row {} estimated {} < true {}",
                row,
                filter.estimate(row),
                count
            );
        }
    }

    /// Any row inserted at least `N_BL` times within one epoch is
    /// blacklisted, no matter what other traffic is interleaved.
    #[test]
    fn dcbf_blacklists_every_aggressor(
        aggressor in 0u64..65_536,
        noise in proptest::collection::vec(0u64..65_536, 0..500),
        n_bl in 4u32..64,
    ) {
        let mut filter = DualCountingBloomFilter::new(1024, 4, n_bl, u64::MAX / 2, 7);
        let mut cycle = 0u64;
        for row in &noise {
            filter.insert(cycle, *row);
            cycle += 1;
        }
        for _ in 0..n_bl {
            filter.insert(cycle, aggressor);
            cycle += 1;
        }
        prop_assert!(filter.is_blacklisted(aggressor));
    }

    /// Every configuration produced by the paper's methodology (any
    /// RowHammer threshold, any reasonable refresh window) is safe according
    /// to the Section 5 analysis, and Eq. 1 is what makes it safe: halving
    /// the delay breaks the guarantee whenever the throttled phase matters.
    #[test]
    fn derived_configurations_are_always_safe(
        n_rh_exp in 7u32..16,           // N_RH from 128 to 32768
        window_scale in 1u64..256,
    ) {
        let n_rh = 1u64 << n_rh_exp;
        let geometry = DefenseGeometry {
            refresh_window_cycles: 204_800_000 / window_scale,
            ..DefenseGeometry::default()
        };
        let config = BlockHammerConfig::for_rowhammer_threshold(
            RowHammerThreshold::new(n_rh),
            &geometry,
        );
        prop_assert!(config.validate().is_ok());
        // Eq. 1's derivation assumes the N_BL unthrottled activations fit
        // within one epoch (true for every configuration the paper
        // considers); outside that regime the closed form is off by one
        // activation in rare corners, so restrict the property to the
        // derivation's stated operating region.
        prop_assume!(config.n_bl * config.t_rc_cycles <= config.epoch_cycles());
        let analysis = security::max_activations_in_refresh_window(&config);
        prop_assert!(
            analysis.safe,
            "N_RH {} with window scale {} admits {} activations (limit {})",
            n_rh, window_scale, analysis.max_activations, config.n_rh_star
        );
    }

    /// Eq. 1 output is monotonic: a smaller blacklisting threshold or a more
    /// vulnerable chip (smaller N_RH*) always yields a longer delay.
    #[test]
    fn t_delay_monotonicity(
        n_rh_star in 256u64..32_768,
        n_bl_divisor in 2u64..8,
    ) {
        let t_refw = 204_800_000u64;
        let n_bl = n_rh_star / n_bl_divisor;
        prop_assume!(n_bl > 0 && n_bl < n_rh_star);
        let base = compute_t_delay(t_refw, t_refw, 148, n_rh_star, n_bl);
        let more_vulnerable = compute_t_delay(t_refw, t_refw, 148, n_rh_star / 2, n_bl.min(n_rh_star / 2 - 1).max(1));
        prop_assert!(more_vulnerable >= base);
        let smaller_n_bl = compute_t_delay(t_refw, t_refw, 148, n_rh_star, (n_bl / 2).max(1));
        // A smaller N_BL leaves more allowed activations to spread over the
        // window, so the per-activation delay cannot increase.
        prop_assert!(smaller_n_bl <= base);
    }
}
