//! Trace-format fidelity properties: text and binary encodings round-trip
//! arbitrary `TraceRecord`s losslessly (encode → decode → encode is
//! byte-stable), and malformed input produces positioned errors instead
//! of panics.

use bh_types::TraceRecord;
use campaign::{TraceError, TraceFormat, TraceReader, TraceWriter};
use proptest::prelude::*;

/// Builds a record from raw sampled parts (the compat proptest has no
/// tuple/struct strategies).
fn record(non_memory: u32, address: u64, flags: u8) -> TraceRecord {
    TraceRecord {
        non_memory_instructions: non_memory,
        address,
        is_write: flags & 1 != 0,
        bypass_cache: flags & 2 != 0,
    }
}

fn encode(records: &[TraceRecord], format: TraceFormat) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), format).expect("writing to memory");
    for r in records {
        writer.write(r).expect("writing to memory");
    }
    writer.finish().expect("flushing memory")
}

fn decode(bytes: &[u8], format: TraceFormat) -> Vec<TraceRecord> {
    TraceReader::new(bytes, format)
        .collect::<Result<Vec<_>, _>>()
        .expect("decoding just-encoded records")
}

proptest! {
    #[test]
    fn text_encode_decode_encode_is_lossless(
        non_memory in proptest::collection::vec(0u32..u32::MAX, 0..40),
        addresses in proptest::collection::vec(0u64..u64::MAX, 40),
        flags in proptest::collection::vec(0u8..4, 40),
    ) {
        let records: Vec<TraceRecord> = non_memory
            .iter()
            .zip(&addresses)
            .zip(&flags)
            .map(|((&n, &a), &f)| record(n, a, f))
            .collect();
        let encoded = encode(&records, TraceFormat::Text);
        let decoded = decode(&encoded, TraceFormat::Text);
        prop_assert_eq!(&decoded, &records);
        // Second encode must be byte-identical: the writer is canonical.
        prop_assert_eq!(encode(&decoded, TraceFormat::Text), encoded);
    }

    #[test]
    fn binary_encode_decode_encode_is_lossless(
        non_memory in proptest::collection::vec(0u32..u32::MAX, 0..40),
        addresses in proptest::collection::vec(0u64..u64::MAX, 40),
        flags in proptest::collection::vec(0u8..4, 40),
    ) {
        let records: Vec<TraceRecord> = non_memory
            .iter()
            .zip(&addresses)
            .zip(&flags)
            .map(|((&n, &a), &f)| record(n, a, f))
            .collect();
        let encoded = encode(&records, TraceFormat::Binary);
        let decoded = decode(&encoded, TraceFormat::Binary);
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(encode(&decoded, TraceFormat::Binary), encoded);
    }

    #[test]
    fn corrupting_one_text_line_positions_the_error(
        non_memory in proptest::collection::vec(0u32..1_000, 12),
        addresses in proptest::collection::vec(0u64..u64::MAX, 12),
        corrupt_at in 0usize..12,
    ) {
        let records: Vec<TraceRecord> = non_memory
            .iter()
            .zip(&addresses)
            .map(|(&n, &a)| record(n, a, 0))
            .collect();
        let encoded = String::from_utf8(encode(&records, TraceFormat::Text)).unwrap();
        let mut lines: Vec<String> = encoded.lines().map(str::to_owned).collect();
        lines[corrupt_at] = format!("garbage {}", lines[corrupt_at]);
        let corrupted = lines.join("\n");
        let results: Vec<_> =
            TraceReader::new(corrupted.as_bytes(), TraceFormat::Text).collect();
        // Every record before the corruption decodes, then one
        // line-numbered parse error, then the reader stops.
        prop_assert_eq!(results.len(), corrupt_at + 1);
        for (i, result) in results.iter().take(corrupt_at).enumerate() {
            prop_assert_eq!(*result.as_ref().expect("prefix decodes"), records[i]);
        }
        match results.last().expect("at least the error") {
            Err(TraceError::Parse { line, .. }) => {
                prop_assert_eq!(*line, corrupt_at as u64 + 1)
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncating_a_binary_trace_positions_the_error(
        non_memory in proptest::collection::vec(0u32..1_000, 8),
        addresses in proptest::collection::vec(0u64..u64::MAX, 8),
        cut in 1usize..12,
    ) {
        let records: Vec<TraceRecord> = non_memory
            .iter()
            .zip(&addresses)
            .map(|(&n, &a)| record(n, a, 3))
            .collect();
        let mut encoded = encode(&records, TraceFormat::Binary);
        prop_assume!(cut < encoded.len() - 5);
        encoded.truncate(encoded.len() - cut);
        let results: Vec<_> =
            TraceReader::new(encoded.as_slice(), TraceFormat::Binary).collect();
        // The cut lands inside some record: everything before it decodes
        // and the damage surfaces as a record-numbered Corrupt error (or
        // a clean end if the cut removed whole records exactly).
        for (index, result) in results.iter().enumerate() {
            match result {
                Ok(r) => prop_assert_eq!(*r, records[index]),
                Err(e) => {
                    prop_assert!(matches!(e, TraceError::Corrupt { .. }), "got {:?}", e);
                    prop_assert_eq!(index, results.len() - 1, "reader stops after an error");
                }
            }
        }
    }
}

#[test]
fn ramulator_style_traces_ingest() {
    // Plain Ramulator CPU traces: `<non-mem-count> <decimal address>`.
    let text = "37 139993962206784\n1021 84213248\n0 0x7f00beef\n";
    let records: Vec<TraceRecord> = TraceReader::new(text.as_bytes(), TraceFormat::Text)
        .collect::<Result<Vec<_>, _>>()
        .expect("ramulator lines parse");
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].non_memory_instructions, 37);
    assert_eq!(records[0].address, 139_993_962_206_784);
    assert!(records.iter().all(|r| !r.is_write && !r.bypass_cache));
    // And our writer's pure-load output is itself Ramulator-shaped.
    let mut writer = TraceWriter::new(Vec::new(), TraceFormat::Text).unwrap();
    writer.write(&TraceRecord::load(5, 0x40)).unwrap();
    let line = String::from_utf8(writer.finish().unwrap()).unwrap();
    assert_eq!(line, "5 0x40\n");
}
