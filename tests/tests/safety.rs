//! End-to-end RowHammer safety verification.
//!
//! These tests drive the full stack (attack trace -> core -> memory
//! controller -> DRAM device) and check the property the paper proves in
//! Section 5: on a BlockHammer-protected system, no DRAM row is ever
//! activated at a RowHammer-unsafe rate, for the deterministic defenses —
//! while the unprotected baseline is demonstrably unsafe under the same
//! attack.

use integration_tests::{run_attack_with_log, TEST_REFRESH_WINDOW};
use sim::DefenseKind;

/// The unprotected baseline lets the double-sided attack hammer rows far
/// beyond the (scaled) RowHammer threshold — i.e. the attack itself works.
#[test]
fn baseline_allows_unsafe_activation_rates() {
    let result = run_attack_with_log(DefenseKind::Baseline);
    let worst = result
        .dram
        .max_row_activations_in_window(TEST_REFRESH_WINDOW)
        .expect("activation log enabled");
    assert!(
        worst > result.n_rh,
        "the attack only reached {worst} activations per window (N_RH = {}); \
         it would not flip bits even without protection",
        result.n_rh
    );
}

/// BlockHammer caps every row's activation count within any sliding refresh
/// window below the RowHammer threshold.
#[test]
fn blockhammer_prevents_unsafe_activation_rates() {
    let result = run_attack_with_log(DefenseKind::BlockHammer);
    let worst = result
        .dram
        .max_row_activations_in_window(TEST_REFRESH_WINDOW)
        .expect("activation log enabled");
    assert!(
        worst <= result.n_rh,
        "a row received {worst} activations within one refresh window, \
         above N_RH = {}",
        result.n_rh
    );
    // The defense actually intervened (this is not a vacuous pass).
    assert!(result.defense_stats.blocked_activations > 0);
}

/// Graphene (the strongest reactive-refresh baseline) refreshes victims of
/// the attack rather than throttling it: victim refreshes must reach DRAM.
#[test]
fn graphene_refreshes_victims_under_attack() {
    let result = run_attack_with_log(DefenseKind::Graphene);
    assert!(
        result.ctrl.victim_refreshes_performed > 0,
        "Graphene should have refreshed victim rows under a double-sided attack"
    );
    assert!(result.defense_stats.victim_refreshes > 0);
}

/// BlockHammer never injects victim-refresh traffic — prevention is done
/// purely by rate-limiting aggressors (Section 3).
#[test]
fn blockhammer_never_issues_victim_refreshes() {
    let result = run_attack_with_log(DefenseKind::BlockHammer);
    assert_eq!(result.ctrl.victim_refreshes_performed, 0);
    assert_eq!(result.defense_stats.victim_refreshes, 0);
}

/// The attacker's RowHammer likelihood index identifies it, and benign
/// threads stay at zero (99.98% accuracy claim of the paper, Section 1).
#[test]
fn rhli_identifies_the_attacker_and_only_the_attacker() {
    let result = run_attack_with_log(DefenseKind::BlockHammer);
    let attacker = result.attacker().expect("mix has an attacker");
    assert!(attacker.max_rhli > 0.0, "attacker RHLI must be non-zero");
    for benign in result.benign_threads() {
        assert_eq!(
            benign.max_rhli, 0.0,
            "benign thread {} was flagged with RHLI {}",
            benign.name, benign.max_rhli
        );
    }
}
