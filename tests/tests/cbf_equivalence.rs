//! Equivalence of the generation-stamped dual counting Bloom filter and
//! the eager-clear reference implementation.
//!
//! PR 3 made the production `DualCountingBloomFilter` lazy: epoch clears
//! bump a per-filter generation instead of zeroing the counter array, a
//! row's H3 index set is computed once per operation and shared, and
//! catching up over many missed epochs is done arithmetically instead of
//! once per boundary. None of that may change a single answer. This suite
//! drives the production filter and a straightforward eager-clear
//! reimplementation (the PR 2 semantics, rebuilt here from the public
//! `H3HashFamily`) through identical operation sequences — including epoch
//! rollovers, multi-epoch idle gaps and the reseeds they trigger — and
//! asserts that every `estimate` / `is_blacklisted` answer and the clear
//! count agree exactly.

use bh_types::Cycle;
use blockhammer::{DualCountingBloomFilter, H3HashFamily};
use proptest::prelude::*;

/// Rows are drawn from a small universe so hash aliasing (the interesting
/// part of Bloom-filter behaviour) happens often.
const ROW_UNIVERSE: u64 = 64;

/// An eager-clear counting Bloom filter: the PR 2 implementation, kept
/// verbatim as the reference semantics.
struct EagerCbf {
    counters: Vec<u32>,
    hashes: H3HashFamily,
    saturation: u32,
}

impl EagerCbf {
    fn new(size: usize, hash_count: usize, saturation: u32, seed: u64) -> Self {
        Self {
            counters: vec![0; size],
            hashes: H3HashFamily::new(hash_count, size, seed),
            saturation,
        }
    }

    fn insert(&mut self, row: u64) {
        let saturation = self.saturation;
        let indices: Vec<usize> = self.hashes.indices(row).collect();
        for idx in indices {
            let c = &mut self.counters[idx];
            if *c < saturation {
                *c += 1;
            }
        }
    }

    fn estimate(&self, row: u64) -> u32 {
        self.hashes
            .indices(row)
            .map(|idx| self.counters[idx])
            .min()
            .expect("at least one hash function")
    }

    fn clear(&mut self, reseed_value: u64) {
        self.counters.fill(0);
        self.hashes.reseed(reseed_value);
    }
}

/// The eager-clear dual filter: clears and swaps by stepping over every
/// epoch boundary individually, exactly as PR 2 did.
struct EagerDualCbf {
    filter_a: EagerCbf,
    filter_b: EagerCbf,
    active_is_a: bool,
    epoch_cycles: Cycle,
    next_swap: Cycle,
    blacklist_threshold: u32,
    clears: u64,
}

impl EagerDualCbf {
    fn new(
        size: usize,
        hash_count: usize,
        blacklist_threshold: u32,
        epoch_cycles: Cycle,
        seed: u64,
    ) -> Self {
        let saturation = blacklist_threshold.saturating_add(1);
        Self {
            filter_a: EagerCbf::new(size, hash_count, saturation, seed),
            filter_b: EagerCbf::new(size, hash_count, saturation, seed ^ 0x5555),
            active_is_a: true,
            epoch_cycles: epoch_cycles.max(1),
            next_swap: epoch_cycles.max(1),
            blacklist_threshold,
            clears: 0,
        }
    }

    fn advance_to(&mut self, now: Cycle) {
        while now >= self.next_swap {
            self.next_swap += self.epoch_cycles;
            self.clears += 1;
            let reseed = 0xB10C_4A3E_u64 ^ self.clears;
            if self.active_is_a {
                self.filter_a.clear(reseed);
            } else {
                self.filter_b.clear(reseed);
            }
            self.active_is_a = !self.active_is_a;
        }
    }

    fn insert(&mut self, now: Cycle, row: u64) {
        self.advance_to(now);
        self.filter_a.insert(row);
        self.filter_b.insert(row);
    }

    fn estimate(&self, row: u64) -> u32 {
        if self.active_is_a {
            self.filter_a.estimate(row)
        } else {
            self.filter_b.estimate(row)
        }
    }

    fn is_blacklisted(&self, row: u64) -> bool {
        self.estimate(row) >= self.blacklist_threshold
    }
}

/// One decoded operation of a generated sequence.
enum Op {
    /// Insert a row after a (possibly multi-epoch) time step.
    Insert { delta: Cycle, row: u64 },
    /// Advance time only (exercises the pure catch-up path).
    Advance { delta: Cycle },
}

/// Decodes raw words into an operation sequence. Time deltas mix dense
/// activity (a few hundred cycles) with idle gaps spanning many epochs so
/// that both the single-swap and the arithmetic catch-up path run.
fn decode_ops(words: &[u64], epoch: Cycle) -> Vec<Op> {
    words
        .iter()
        .map(|&word| {
            let row = word % ROW_UNIVERSE;
            let delta = match (word >> 8) & 7 {
                // Dense traffic within an epoch.
                0..=4 => (word >> 16) % 500,
                // A gap of a few epochs.
                5 | 6 => ((word >> 16) % 5) * epoch + (word >> 32) % epoch,
                // A long idle gap (hundreds of epochs).
                _ => ((word >> 16) % 1_000) * epoch,
            };
            if (word >> 3) & 3 == 0 {
                Op::Advance { delta }
            } else {
                Op::Insert { delta, row }
            }
        })
        .collect()
}

/// Runs one operation sequence through both implementations and asserts
/// full agreement after every step.
fn assert_equivalent(words: &[u64], size: usize, threshold: u32, epoch: Cycle, seed: u64) {
    let mut lazy = DualCountingBloomFilter::new(size, 4, threshold, epoch, seed);
    let mut eager = EagerDualCbf::new(size, 4, threshold, epoch, seed);
    let mut now: Cycle = 0;
    for op in decode_ops(words, epoch) {
        match op {
            Op::Insert { delta, row } => {
                now += delta;
                lazy.insert(now, row);
                eager.insert(now, row);
            }
            Op::Advance { delta } => {
                now += delta;
                lazy.advance_to(now);
                eager.advance_to(now);
            }
        }
        assert_eq!(
            lazy.clears(),
            eager.clears,
            "clear counts diverged at cycle {now}"
        );
        for row in 0..ROW_UNIVERSE {
            assert_eq!(
                lazy.estimate(row),
                eager.estimate(row),
                "estimates diverged for row {row} at cycle {now} \
                 (clears = {})",
                eager.clears
            );
            assert_eq!(lazy.is_blacklisted(row), eager.is_blacklisted(row));
        }
    }
}

/// A fixed dense-then-idle sequence crossing hundreds of epoch boundaries,
/// with aggressors that are blacklisted, forgotten after idle gaps, and
/// re-blacklisted under reseeded hash functions.
#[test]
fn lazy_and_eager_filters_agree_on_a_dense_mixed_sequence() {
    let words: Vec<u64> = (1..600u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23))
        .collect();
    assert_equivalent(&words, 256, 40, 10_000, 0xFEED);
}

/// A tiny threshold makes blacklisting (and the saturation plateau) easy
/// to reach, so the agreement covers saturated counters too.
#[test]
fn lazy_and_eager_filters_agree_under_heavy_saturation() {
    let words: Vec<u64> = (1..400u64)
        .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95).rotate_left(11))
        .collect();
    assert_equivalent(&words, 64, 5, 2_000, 42);
}

proptest! {
    /// Random operation sequences (inserts, small steps, multi-epoch idle
    /// gaps) produce identical estimates, blacklist answers and clear
    /// counts in the generation-stamped and the eager-clear filter.
    #[test]
    fn lazy_filter_answers_exactly_like_the_eager_filter(
        words in proptest::collection::vec(0u64..u64::MAX, 1..120),
        seed in 0u64..1_000,
    ) {
        assert_equivalent(&words, 128, 16, 5_000, seed);
    }
}
