//! Incremental aggregation of run outcomes into per-sweep-point
//! summaries, and their CSV / JSON serializations.
//!
//! A *sweep point* is one cell of the campaign matrix — (scenario,
//! defense, `N_RH`, channels) — aggregated over its workload mixes, the
//! way the paper averages each Figure 5/6 series over its 125 mixes. The
//! aggregator is incremental ([`CampaignAggregator::absorb`] one outcome
//! at a time, in run order) so campaign executors can reduce results as
//! they stream in instead of holding every run in memory.
//!
//! Emission is deliberately boring: a fixed-column CSV (with
//! [`parse_summary_csv`] as its inverse, used by CI to validate emitted
//! files) and a hand-rolled JSON document. [`CampaignSummary::
//! multiprogram_rows`] bridges to `sim::report::render_multiprogram`, so
//! campaign output renders in the same tables as the in-process
//! experiment drivers.

use crate::runner::{FailedRun, RunOutcome};
use sim::experiments::MultiProgramRow;
use sim::MultiProgramMetrics;

/// Identity of one sweep point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SweepKey {
    /// Scenario label (`no-attack`, `attack`, ...).
    pub scenario: String,
    /// Defense label.
    pub defense: String,
    /// Full-scale RowHammer threshold.
    pub n_rh: u64,
    /// Memory channels.
    pub channels: usize,
}

/// Running sums for one sweep point.
#[derive(Debug, Clone, Default)]
struct SweepAccumulator {
    runs: usize,
    failed: usize,
    metric_sums: Option<MultiProgramMetrics>,
    benign_ipc_sum: f64,
    cycles_sum: f64,
    energy_sum: f64,
    activations: u64,
    max_attacker_rhli: f64,
    max_benign_rhli: f64,
}

/// Aggregated results of one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointSummary {
    /// The point's identity.
    pub key: SweepKey,
    /// Runs (mixes) aggregated into this point.
    pub runs: usize,
    /// Runs of this point that were quarantined by the executor's
    /// failure policy instead of completing. A non-zero count marks the
    /// point *degraded*: its means cover fewer mixes than the campaign
    /// planned, and its row should be read accordingly.
    pub failed_runs: usize,
    /// Mean multiprogrammed metrics across the point's runs (present when
    /// the campaign ran with normalization).
    pub metrics: Option<MultiProgramMetrics>,
    /// `metrics` normalized to the Baseline defense's point at the same
    /// (scenario, `N_RH`, channels) — the y-axes of Figures 5 and 6.
    pub normalized: Option<MultiProgramMetrics>,
    /// Mean of the runs' mean benign IPCs.
    pub mean_benign_ipc: f64,
    /// Largest attacker RHLI observed in any run of the point.
    pub max_attacker_rhli: f64,
    /// Largest benign-thread RHLI observed in any run of the point.
    pub max_benign_rhli: f64,
    /// Mean simulated cycles per run.
    pub mean_cycles: f64,
    /// Mean DRAM energy per run, joules.
    pub mean_dram_energy_j: f64,
    /// Total DRAM activations across the point's runs.
    pub total_activations: u64,
}

/// The reduced form of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign name.
    pub name: String,
    /// Total runs aggregated.
    pub runs: usize,
    /// Total runs quarantined across every sweep point (0 for a fully
    /// healthy campaign).
    pub failed: usize,
    /// Sweep points, in first-absorbed order (= expansion order).
    pub points: Vec<SweepPointSummary>,
}

impl CampaignSummary {
    /// Whether any sweep point is degraded by quarantined runs.
    pub fn is_degraded(&self) -> bool {
        self.failed > 0
    }
}

/// Incrementally reduces [`RunOutcome`]s into a [`CampaignSummary`].
///
/// Absorb outcomes in run order: floating-point accumulation is
/// order-sensitive, and the deterministic-order guarantee of the campaign
/// executor exists precisely so sequential and pooled execution feed the
/// aggregator identically.
#[derive(Debug)]
pub struct CampaignAggregator {
    name: String,
    runs: usize,
    failed: usize,
    order: Vec<SweepKey>,
    accumulators: std::collections::HashMap<SweepKey, SweepAccumulator>,
}

impl CampaignAggregator {
    /// Creates an empty aggregator for a campaign.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            runs: 0,
            failed: 0,
            order: Vec::new(),
            accumulators: std::collections::HashMap::new(),
        }
    }

    /// Marks one quarantined run against its sweep point. The point's
    /// means are untouched (a failed run contributes no numbers) but its
    /// `failed_runs` count flags it as degraded in every serialization.
    pub fn absorb_failure(&mut self, failure: &FailedRun) {
        let key = SweepKey {
            scenario: failure.scenario.clone(),
            defense: failure.defense.clone(),
            n_rh: failure.n_rh,
            channels: failure.channels,
        };
        if !self.accumulators.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.accumulators.entry(key).or_default().failed += 1;
        self.failed += 1;
    }

    /// Folds one run outcome into its sweep point.
    pub fn absorb(&mut self, outcome: &RunOutcome) {
        let key = SweepKey {
            scenario: outcome.scenario.clone(),
            defense: outcome.defense.clone(),
            n_rh: outcome.n_rh,
            channels: outcome.channels,
        };
        if !self.accumulators.contains_key(&key) {
            self.order.push(key.clone());
        }
        let acc = self.accumulators.entry(key).or_default();
        acc.runs += 1;
        if let Some(metrics) = &outcome.metrics {
            let sums = acc.metric_sums.get_or_insert(MultiProgramMetrics {
                weighted_speedup: 0.0,
                harmonic_speedup: 0.0,
                max_slowdown: 0.0,
                dram_energy_joules: 0.0,
            });
            sums.weighted_speedup += metrics.weighted_speedup;
            sums.harmonic_speedup += metrics.harmonic_speedup;
            sums.max_slowdown += metrics.max_slowdown;
            sums.dram_energy_joules += metrics.dram_energy_joules;
        }
        acc.benign_ipc_sum += outcome.mean_benign_ipc();
        acc.cycles_sum += outcome.total_cycles as f64;
        acc.energy_sum += outcome.dram_energy_j;
        acc.activations += outcome.activations;
        acc.max_attacker_rhli = acc.max_attacker_rhli.max(outcome.max_attacker_rhli());
        acc.max_benign_rhli = acc.max_benign_rhli.max(outcome.max_benign_rhli());
        self.runs += 1;
    }

    /// Finalizes the summary: means per point, plus normalization of each
    /// point to the Baseline defense at the same (scenario, `N_RH`,
    /// channels) when such a point exists.
    pub fn finish(self) -> CampaignSummary {
        let mut points: Vec<SweepPointSummary> = self
            .order
            .iter()
            .map(|key| {
                let acc = &self.accumulators[key];
                let n = acc.runs.max(1) as f64;
                SweepPointSummary {
                    key: key.clone(),
                    runs: acc.runs,
                    failed_runs: acc.failed,
                    metrics: acc.metric_sums.as_ref().map(|sums| MultiProgramMetrics {
                        weighted_speedup: sums.weighted_speedup / n,
                        harmonic_speedup: sums.harmonic_speedup / n,
                        max_slowdown: sums.max_slowdown / n,
                        dram_energy_joules: sums.dram_energy_joules / n,
                    }),
                    normalized: None,
                    mean_benign_ipc: acc.benign_ipc_sum / n,
                    max_attacker_rhli: acc.max_attacker_rhli,
                    max_benign_rhli: acc.max_benign_rhli,
                    mean_cycles: acc.cycles_sum / n,
                    mean_dram_energy_j: acc.energy_sum / n,
                    total_activations: acc.activations,
                }
            })
            .collect();
        // Normalize to the Baseline point of each (scenario, n_rh,
        // channels) cell, as the paper normalizes Figures 5/6.
        let baselines: Vec<(SweepKey, MultiProgramMetrics)> = points
            .iter()
            .filter(|p| p.key.defense == "Baseline")
            .filter_map(|p| p.metrics.map(|m| (p.key.clone(), m)))
            .collect();
        for point in &mut points {
            let Some(metrics) = point.metrics else {
                continue;
            };
            let baseline = baselines.iter().find(|(key, _)| {
                key.scenario == point.key.scenario
                    && key.n_rh == point.key.n_rh
                    && key.channels == point.key.channels
            });
            if let Some((_, baseline)) = baseline {
                point.normalized = Some(metrics.normalized_to(baseline));
            }
        }
        CampaignSummary {
            name: self.name,
            runs: self.runs,
            failed: self.failed,
            points,
        }
    }
}

/// Column order of the summary CSV.
const CSV_HEADER: &str = "scenario,defense,n_rh,channels,runs,mean_benign_ipc,\
max_attacker_rhli,max_benign_rhli,mean_cycles,mean_dram_energy_j,total_acts,\
weighted_speedup,harmonic_speedup,max_slowdown,\
norm_weighted_speedup,norm_harmonic_speedup,norm_max_slowdown,norm_dram_energy,\
failed_runs";

/// Number of columns in the summary CSV.
const CSV_COLUMNS: usize = 19;

fn push_f64(out: &mut String, value: f64) {
    out.push_str(&format!(",{value:.6}"));
}

fn push_optional_metrics(out: &mut String, metrics: &Option<MultiProgramMetrics>, energy: bool) {
    match metrics {
        Some(m) => {
            push_f64(out, m.weighted_speedup);
            push_f64(out, m.harmonic_speedup);
            push_f64(out, m.max_slowdown);
            if energy {
                push_f64(out, m.dram_energy_joules);
            }
        }
        None => {
            // One comma per (empty) column: 3 metric columns, plus the
            // energy column in the normalized block.
            out.push_str(if energy { ",,,," } else { ",,," });
        }
    }
}

impl CampaignSummary {
    /// Serializes the summary as CSV (fixed column order, 6-decimal
    /// floats; metric columns are empty when the campaign did not
    /// normalize). The output is a pure function of the absorbed
    /// outcomes, so sequential and pooled executions of the same campaign
    /// emit byte-identical CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for point in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}",
                point.key.scenario,
                point.key.defense,
                point.key.n_rh,
                point.key.channels,
                point.runs
            ));
            push_f64(&mut out, point.mean_benign_ipc);
            push_f64(&mut out, point.max_attacker_rhli);
            push_f64(&mut out, point.max_benign_rhli);
            push_f64(&mut out, point.mean_cycles);
            push_f64(&mut out, point.mean_dram_energy_j);
            out.push_str(&format!(",{}", point.total_activations));
            // Raw metrics (energy is already a raw column above).
            push_optional_metrics(&mut out, &point.metrics, false);
            push_optional_metrics(&mut out, &point.normalized, true);
            out.push_str(&format!(",{}", point.failed_runs));
            out.push('\n');
        }
        out
    }

    /// Serializes the summary as a JSON document (hand-rolled: the
    /// workspace's serde is an offline no-op stand-in).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"campaign\": \"{}\",\n  \"runs\": {},\n  \"failed_runs\": {},\n  \"points\": [\n",
            escape_json(&self.name),
            self.runs,
            self.failed
        ));
        for (i, point) in self.points.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"scenario\": \"{}\", \"defense\": \"{}\", \"n_rh\": {}, \
                 \"channels\": {}, \"runs\": {}, \"failed_runs\": {}, \
                 \"mean_benign_ipc\": {:.6}, \
                 \"max_attacker_rhli\": {:.6}, \"max_benign_rhli\": {:.6}, \
                 \"mean_cycles\": {:.6}, \"mean_dram_energy_j\": {:.6}, \
                 \"total_acts\": {}",
                escape_json(&point.key.scenario),
                escape_json(&point.key.defense),
                point.key.n_rh,
                point.key.channels,
                point.runs,
                point.failed_runs,
                point.mean_benign_ipc,
                point.max_attacker_rhli,
                point.max_benign_rhli,
                point.mean_cycles,
                point.mean_dram_energy_j,
                point.total_activations,
            ));
            for (label, metrics) in [
                ("metrics", &point.metrics),
                ("normalized", &point.normalized),
            ] {
                match metrics {
                    Some(m) => out.push_str(&format!(
                        ", \"{label}\": {{\"weighted_speedup\": {:.6}, \
                         \"harmonic_speedup\": {:.6}, \"max_slowdown\": {:.6}, \
                         \"dram_energy_j\": {:.6}}}",
                        m.weighted_speedup,
                        m.harmonic_speedup,
                        m.max_slowdown,
                        m.dram_energy_joules
                    )),
                    None => out.push_str(&format!(", \"{label}\": null")),
                }
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The points that have normalized metrics, as
    /// `sim::experiments::MultiProgramRow`s — directly renderable with
    /// `sim::report::render_multiprogram`, so campaign results print in
    /// the same tables as the in-process Figure 5/6 drivers.
    pub fn multiprogram_rows(&self) -> Vec<MultiProgramRow> {
        self.points
            .iter()
            .filter_map(|point| {
                point.normalized.map(|normalized| MultiProgramRow {
                    defense: point.key.defense.clone(),
                    scenario: point.key.scenario.clone(),
                    n_rh: point.key.n_rh,
                    normalized,
                })
            })
            .collect()
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// One parsed row of a summary CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryCsvRow {
    /// The sweep point the row describes.
    pub key: SweepKey,
    /// Runs aggregated into the row.
    pub runs: usize,
    /// Quarantined runs of the point (non-zero marks it degraded).
    pub failed_runs: usize,
    /// Mean benign IPC of the point.
    pub mean_benign_ipc: f64,
    /// Normalized weighted speedup, when the campaign normalized.
    pub norm_weighted_speedup: Option<f64>,
}

/// Parses a summary CSV produced by [`CampaignSummary::to_csv`],
/// validating the header, the column count of every row and the numeric
/// columns. CI uses this to assert the emitted artifact is well-formed.
///
/// # Errors
///
/// Returns a line-positioned message for any malformed content.
pub fn parse_summary_csv(text: &str) -> Result<Vec<SummaryCsvRow>, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty CSV")?;
    if header != CSV_HEADER {
        return Err(format!("unexpected header: `{header}`"));
    }
    let mut rows = Vec::new();
    for (line_index, line) in lines {
        let line_number = line_index + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != CSV_COLUMNS {
            return Err(format!(
                "line {line_number}: {} columns, expected {CSV_COLUMNS}",
                fields.len()
            ));
        }
        let parse_u64 = |i: usize| -> Result<u64, String> {
            fields[i]
                .parse::<u64>()
                .map_err(|_| format!("line {line_number}: column {i} is not an integer"))
        };
        let parse_f64 = |i: usize| -> Result<f64, String> {
            fields[i]
                .parse::<f64>()
                .map_err(|_| format!("line {line_number}: column {i} is not a number"))
        };
        let parse_optional = |i: usize| -> Result<Option<f64>, String> {
            if fields[i].is_empty() {
                Ok(None)
            } else {
                parse_f64(i).map(Some)
            }
        };
        // Validate every numeric column, keep the interesting ones.
        for i in 5..=9 {
            parse_f64(i)?;
        }
        parse_u64(10)?;
        for i in 11..CSV_COLUMNS - 1 {
            parse_optional(i)?;
        }
        rows.push(SummaryCsvRow {
            key: SweepKey {
                scenario: fields[0].to_owned(),
                defense: fields[1].to_owned(),
                n_rh: parse_u64(2)?,
                channels: parse_u64(3)? as usize,
            },
            runs: parse_u64(4)? as usize,
            failed_runs: parse_u64(18)? as usize,
            mean_benign_ipc: parse_f64(5)?,
            norm_weighted_speedup: parse_optional(14)?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ThreadOutcome;

    fn outcome(
        index: usize,
        scenario: &str,
        defense: &str,
        ipc: f64,
        metrics: Option<MultiProgramMetrics>,
    ) -> RunOutcome {
        RunOutcome {
            index,
            name: format!("mix-{index:03}/{defense}"),
            scenario: scenario.to_owned(),
            defense: defense.to_owned(),
            n_rh: 32_768,
            channels: 1,
            total_cycles: 10_000,
            activations: 500,
            dram_energy_j: 0.25,
            threads: vec![
                ThreadOutcome {
                    name: "attacker.double_sided".into(),
                    is_attacker: true,
                    instructions: 100,
                    cycles: 10_000,
                    ipc: 0.01,
                    max_rhli: 3.0,
                    memory_requests: 100,
                },
                ThreadOutcome {
                    name: "b0".into(),
                    is_attacker: false,
                    instructions: 1_000,
                    cycles: 10_000,
                    ipc,
                    max_rhli: 0.0,
                    memory_requests: 10,
                },
            ],
            metrics,
            stepping: sim::SteppingStats::default(),
        }
    }

    fn metrics(w: f64) -> MultiProgramMetrics {
        MultiProgramMetrics {
            weighted_speedup: w,
            harmonic_speedup: w / 2.0,
            max_slowdown: 2.0 / w,
            dram_energy_joules: 0.25,
        }
    }

    #[test]
    fn aggregation_means_and_maxima() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.4, Some(metrics(1.0))));
        agg.absorb(&outcome(1, "attack", "Baseline", 0.6, Some(metrics(3.0))));
        agg.absorb(&outcome(
            2,
            "attack",
            "BlockHammer",
            0.8,
            Some(metrics(4.0)),
        ));
        let summary = agg.finish();
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.points.len(), 2);
        let baseline = &summary.points[0];
        assert_eq!(baseline.runs, 2);
        assert!((baseline.mean_benign_ipc - 0.5).abs() < 1e-12);
        let m = baseline.metrics.expect("metrics present");
        assert!((m.weighted_speedup - 2.0).abs() < 1e-12);
        assert!((baseline.max_attacker_rhli - 3.0).abs() < 1e-12);
        // Normalization: BlockHammer / Baseline = 4.0 / 2.0.
        let bh = &summary.points[1];
        let n = bh.normalized.expect("normalized present");
        assert!((n.weighted_speedup - 2.0).abs() < 1e-12);
        // Baseline normalizes to itself: all ones.
        let bn = baseline.normalized.expect("baseline normalized");
        assert!((bn.weighted_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trips_through_the_parser() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.5, Some(metrics(2.0))));
        agg.absorb(&outcome(
            1,
            "attack",
            "BlockHammer",
            0.7,
            Some(metrics(3.0)),
        ));
        let summary = agg.finish();
        let csv = summary.to_csv();
        let rows = parse_summary_csv(&csv).expect("emitted CSV parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key.defense, "Baseline");
        assert_eq!(rows[1].key.defense, "BlockHammer");
        assert!((rows[1].norm_weighted_speedup.unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn csv_without_metrics_has_empty_metric_columns() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "no-attack", "Baseline", 0.5, None));
        let summary = agg.finish();
        let rows = parse_summary_csv(&summary.to_csv()).expect("parses");
        assert_eq!(rows[0].norm_weighted_speedup, None);
    }

    #[test]
    fn malformed_csv_is_rejected_with_a_position() {
        assert!(parse_summary_csv("").is_err());
        assert!(parse_summary_csv("bad,header\n").is_err());
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.5, None));
        let mut csv = agg.finish().to_csv();
        csv.push_str("attack,Extra,1,1,notanumber\n");
        let err = parse_summary_csv(&csv).unwrap_err();
        assert!(err.contains("line 3"), "got: {err}");
    }

    #[test]
    fn quarantined_runs_mark_their_point_degraded() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.5, Some(metrics(2.0))));
        agg.absorb(&outcome(1, "attack", "Para", 0.7, Some(metrics(3.0))));
        agg.absorb_failure(&FailedRun {
            index: 2,
            name: "mix-002/Para".into(),
            scenario: "attack".into(),
            defense: "Para".into(),
            n_rh: 32_768,
            channels: 1,
            attempts: 2,
            cause: "panicked: injected".into(),
        });
        let summary = agg.finish();
        assert!(summary.is_degraded());
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.runs, 2, "failures do not count as runs");
        let para = summary
            .points
            .iter()
            .find(|p| p.key.defense == "Para")
            .expect("Para point");
        assert_eq!((para.runs, para.failed_runs), (1, 1));
        // The degraded flag survives both serializations and the parser.
        let rows = parse_summary_csv(&summary.to_csv()).expect("parses");
        let para_row = rows.iter().find(|r| r.key.defense == "Para").expect("row");
        assert_eq!(para_row.failed_runs, 1);
        assert_eq!(rows[0].failed_runs, 0);
        assert!(summary.to_json().contains("\"failed_runs\": 1"));
    }

    #[test]
    fn a_failure_alone_still_registers_its_sweep_point() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb_failure(&FailedRun {
            index: 0,
            name: "mix-000/Graphene".into(),
            scenario: "attack".into(),
            defense: "Graphene".into(),
            n_rh: 32_768,
            channels: 1,
            attempts: 1,
            cause: "panicked".into(),
        });
        let summary = agg.finish();
        assert_eq!(summary.points.len(), 1);
        assert_eq!(summary.points[0].runs, 0);
        assert_eq!(summary.points[0].failed_runs, 1);
        // Zero-run points serialize without dividing by zero.
        assert!(parse_summary_csv(&summary.to_csv()).is_ok());
    }

    #[test]
    fn multiprogram_rows_render_with_sim_report() {
        let mut agg = CampaignAggregator::new("t");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.5, Some(metrics(2.0))));
        agg.absorb(&outcome(
            1,
            "attack",
            "BlockHammer",
            0.7,
            Some(metrics(3.0)),
        ));
        let summary = agg.finish();
        let rows = summary.multiprogram_rows();
        assert_eq!(rows.len(), 2);
        let rendered = sim::report::render_multiprogram(&rows);
        assert!(rendered.contains("BlockHammer"));
        assert!(rendered.contains("attack"));
    }

    #[test]
    fn json_emission_is_structurally_sound() {
        let mut agg = CampaignAggregator::new("quote\"me");
        agg.absorb(&outcome(0, "attack", "Baseline", 0.5, Some(metrics(2.0))));
        let json = agg.finish().to_json();
        assert!(json.contains("\"campaign\": \"quote\\\"me\""));
        assert!(json.contains("\"points\": ["));
        assert!(json.contains("\"normalized\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
