//! Streaming trace file formats: Ramulator-style text and a compact
//! length-prefixed binary encoding of [`TraceRecord`]s.
//!
//! # Text format
//!
//! One record per line, in Ramulator's CPU trace shape extended with an
//! optional flags token:
//!
//! ```text
//! <non-memory-instructions> <address> [flags]
//! ```
//!
//! `address` is decimal or `0x`-prefixed hexadecimal. `flags` is one of
//! `R` (cacheable load, the default when omitted), `W` (cacheable store),
//! `B`/`RB` (cache-bypassing load) or `WB` (cache-bypassing store). Blank
//! lines and lines starting with `#` are ignored. A pure-load trace is
//! therefore exactly a Ramulator CPU trace, and Ramulator traces ingest
//! unchanged. Malformed lines produce a line-numbered
//! [`TraceError::Parse`] instead of a panic.
//!
//! # Binary format
//!
//! A 5-byte header (magic `BHTB`, version `1`) followed by
//! length-prefixed records: one length byte, then a payload of a flags
//! byte (bit 0 = write, bit 1 = bypass) and two LEB128 varints
//! (non-memory instruction count, address). Typical records are 4–11
//! bytes against the text format's ~12–25. Truncated or corrupt payloads
//! produce a record-numbered [`TraceError::Corrupt`].
//!
//! Both encodings round-trip every [`TraceRecord`] losslessly
//! (property-pinned in `tests/tests/trace_roundtrip.rs`). Readers stream
//! from any [`BufRead`], writers to any [`Write`]; [`open_trace_file`]
//! auto-detects the format from the magic bytes.

use bh_types::TraceRecord;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every binary trace file.
pub const BINARY_MAGIC: [u8; 4] = *b"BHTB";
/// Current binary format version.
pub const BINARY_VERSION: u8 = 1;
/// Largest legal binary record payload: flags byte + two maximal varints
/// (5 bytes for the u32, 10 for the u64).
const MAX_BINARY_PAYLOAD: usize = 16;

/// On-disk encoding of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Ramulator-style text, one record per line.
    Text,
    /// Compact length-prefixed binary records.
    Binary,
}

impl TraceFormat {
    /// Conventional file extension for the format.
    pub fn extension(&self) -> &'static str {
        match self {
            TraceFormat::Text => "trace",
            TraceFormat::Binary => "btrace",
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormat::Text => f.write_str("text"),
            TraceFormat::Binary => f.write_str("binary"),
        }
    }
}

/// Why a trace could not be read.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed text line; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// A malformed binary record; `record` is 0-based.
    Corrupt {
        /// 0-based index of the offending record.
        record: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::Corrupt { record, message } => {
                write!(f, "corrupt binary trace at record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Streams [`TraceRecord`]s to a sink in either format.
pub struct TraceWriter<W: Write> {
    sink: W,
    format: TraceFormat,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer; for [`TraceFormat::Binary`] the header is emitted
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates sink errors from writing the header.
    pub fn new(mut sink: W, format: TraceFormat) -> io::Result<Self> {
        if format == TraceFormat::Binary {
            sink.write_all(&BINARY_MAGIC)?;
            sink.write_all(&[BINARY_VERSION])?;
        }
        Ok(Self {
            sink,
            format,
            written: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn write(&mut self, record: &TraceRecord) -> io::Result<()> {
        match self.format {
            TraceFormat::Text => {
                let flags = match (record.is_write, record.bypass_cache) {
                    (false, false) => "",
                    (true, false) => " W",
                    (false, true) => " B",
                    (true, true) => " WB",
                };
                writeln!(
                    self.sink,
                    "{} 0x{:x}{}",
                    record.non_memory_instructions, record.address, flags
                )?;
            }
            TraceFormat::Binary => {
                let mut payload = [0u8; MAX_BINARY_PAYLOAD];
                payload[0] = u8::from(record.is_write) | (u8::from(record.bypass_cache) << 1);
                let mut len = 1;
                len += write_varint(
                    &mut payload[len..],
                    u64::from(record.non_memory_instructions),
                );
                len += write_varint(&mut payload[len..], record.address);
                self.sink.write_all(&[len as u8])?;
                self.sink.write_all(&payload[..len])?;
            }
        }
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink errors from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// LEB128-encodes `value` into `buf`, returning the number of bytes used.
/// Shared with the checkpoint journal (`campaign::checkpoint`), which
/// frames its records with the same varints as binary traces.
pub(crate) fn write_varint(buf: &mut [u8], mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf[n] = byte;
            return n + 1;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// LEB128-decodes a u64 from `buf[*cursor..]`, advancing the cursor.
pub(crate) fn read_varint(buf: &[u8], cursor: &mut usize) -> Result<u64, String> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*cursor) else {
            return Err("varint truncated".to_owned());
        };
        *cursor += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err("varint overflows 64 bits".to_owned());
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Streams [`TraceRecord`]s from a source, yielding
/// `Result<TraceRecord, TraceError>` so malformed input surfaces as a
/// positioned error instead of a panic.
pub struct TraceReader<R: BufRead> {
    source: R,
    format: TraceFormat,
    /// 1-based line number (text) of the next line to read.
    line: u64,
    /// 0-based index of the next binary record.
    record: u64,
    /// Whether the binary header has been consumed.
    header_done: bool,
    /// A reader that produced an error stops (errors are not recoverable
    /// mid-stream: byte positions are no longer trustworthy).
    poisoned: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Creates a reader for a source known to be in `format`. For binary
    /// sources the header is validated on the first read.
    pub fn new(source: R, format: TraceFormat) -> Self {
        Self {
            source,
            format,
            line: 0,
            record: 0,
            header_done: false,
            poisoned: false,
        }
    }

    fn next_text(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        let mut buf = String::new();
        loop {
            buf.clear();
            match self.source.read_line(&mut buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(TraceError::Io(e))),
            }
            self.line += 1;
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(parse_text_line(line, self.line));
        }
    }

    fn next_binary(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        let corrupt = |record: u64, message: String| TraceError::Corrupt { record, message };
        if !self.header_done {
            let mut header = [0u8; 5];
            if let Err(e) = self.source.read_exact(&mut header) {
                return Some(Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                    corrupt(0, "file shorter than the 5-byte header".to_owned())
                } else {
                    TraceError::Io(e)
                }));
            }
            if header[..4] != BINARY_MAGIC {
                return Some(Err(corrupt(0, "bad magic (not a BHTB trace)".to_owned())));
            }
            if header[4] != BINARY_VERSION {
                return Some(Err(corrupt(
                    0,
                    format!(
                        "unsupported version {} (expected {BINARY_VERSION})",
                        header[4]
                    ),
                )));
            }
            self.header_done = true;
        }
        let mut len_byte = [0u8; 1];
        match self.source.read_exact(&mut len_byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(TraceError::Io(e))),
        }
        let len = len_byte[0] as usize;
        if len == 0 || len > MAX_BINARY_PAYLOAD {
            return Some(Err(corrupt(
                self.record,
                format!("record length {len} outside 1..={MAX_BINARY_PAYLOAD}"),
            )));
        }
        let mut payload = [0u8; MAX_BINARY_PAYLOAD];
        if let Err(e) = self.source.read_exact(&mut payload[..len]) {
            return Some(Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(self.record, "record payload truncated".to_owned())
            } else {
                TraceError::Io(e)
            }));
        }
        let flags = payload[0];
        if flags & !0b11 != 0 {
            return Some(Err(corrupt(
                self.record,
                format!("unknown flag bits {flags:#04x}"),
            )));
        }
        let mut cursor = 1;
        let non_memory = match read_varint(&payload[..len], &mut cursor) {
            Ok(v) if v <= u64::from(u32::MAX) => v as u32,
            Ok(v) => {
                return Some(Err(corrupt(
                    self.record,
                    format!("non-memory instruction count {v} overflows u32"),
                )))
            }
            Err(message) => return Some(Err(corrupt(self.record, message))),
        };
        let address = match read_varint(&payload[..len], &mut cursor) {
            Ok(v) => v,
            Err(message) => return Some(Err(corrupt(self.record, message))),
        };
        if cursor != len {
            return Some(Err(corrupt(
                self.record,
                format!("{} trailing byte(s) in record payload", len - cursor),
            )));
        }
        self.record += 1;
        Some(Ok(TraceRecord {
            non_memory_instructions: non_memory,
            address,
            is_write: flags & 0b01 != 0,
            bypass_cache: flags & 0b10 != 0,
        }))
    }
}

fn parse_text_line(line: &str, line_number: u64) -> Result<TraceRecord, TraceError> {
    let err = |message: String| TraceError::Parse {
        line: line_number,
        message,
    };
    let mut tokens = line.split_whitespace();
    let non_memory_token = tokens
        .next()
        .ok_or_else(|| err("empty trace line".to_owned()))?;
    let non_memory = non_memory_token.parse::<u32>().map_err(|_| {
        err(format!(
            "expected a non-memory instruction count, got `{non_memory_token}`"
        ))
    })?;
    let address_token = tokens
        .next()
        .ok_or_else(|| err("missing address column".to_owned()))?;
    let address = parse_address(address_token)
        .ok_or_else(|| err(format!("expected an address, got `{address_token}`")))?;
    let (is_write, bypass_cache) = match tokens.next() {
        None | Some("R") => (false, false),
        Some("W") => (true, false),
        Some("B") | Some("RB") => (false, true),
        Some("WB") => (true, true),
        Some(other) => {
            return Err(err(format!(
                "unknown flags `{other}` (expected R, W, B, RB or WB)"
            )))
        }
    };
    if let Some(extra) = tokens.next() {
        return Err(err(format!("unexpected trailing token `{extra}`")));
    }
    Ok(TraceRecord {
        non_memory_instructions: non_memory,
        address,
        is_write,
        bypass_cache,
    })
}

fn parse_address(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse::<u64>().ok()
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        let item = match self.format {
            TraceFormat::Text => self.next_text(),
            TraceFormat::Binary => self.next_binary(),
        };
        if matches!(item, Some(Err(_))) {
            self.poisoned = true;
        }
        item
    }
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Opens a trace file, auto-detecting the format from the magic bytes
/// (binary traces start with `BHTB`; anything else is treated as text).
///
/// # Errors
///
/// Propagates file-open errors.
pub fn open_trace_file(path: &Path) -> Result<TraceReader<BufReader<File>>, TraceError> {
    if let Some(error) = crate::faults::before_trace_open(path) {
        return Err(TraceError::Io(error));
    }
    let mut source = BufReader::new(File::open(path)?);
    let format = match source.fill_buf() {
        Ok(head) if head.len() >= 4 && head[..4] == BINARY_MAGIC => TraceFormat::Binary,
        Ok(_) => TraceFormat::Text,
        Err(e) => return Err(TraceError::Io(e)),
    };
    Ok(TraceReader::new(source, format))
}

/// Reads a whole trace file into memory (format auto-detected), failing
/// on the first malformed record.
///
/// # Errors
///
/// Propagates open/read errors and positioned parse errors.
pub fn load_trace_file(path: &Path) -> Result<Vec<TraceRecord>, TraceError> {
    open_trace_file(path)?.collect()
}

/// Records up to `limit` records of `records` to `path` in `format`,
/// creating parent directories as needed. Returns the number of records
/// written. This is the recorder that makes campaigns replayable from
/// disk: point it at any `workloads` generator (synthetic or attack).
///
/// The file appears atomically (written to a temporary sibling, then
/// renamed into place), so a process killed mid-recording never leaves a
/// torn trace behind for the trace-reuse check to trust.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn record_trace_file(
    path: &Path,
    format: TraceFormat,
    records: impl IntoIterator<Item = TraceRecord>,
    limit: u64,
) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let staging = crate::artifacts::staging_path(path);
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&staging)?), format)?;
    for record in records.into_iter().take(limit as usize) {
        writer.write(&record)?;
    }
    let written = writer.written();
    writer.finish()?;
    std::fs::rename(&staging, path)?;
    Ok(written)
}

/// An in-memory trace replayed in an endless loop — the replay form of
/// periodic attacker traces: a file holding exactly one period (or any
/// whole multiple) looped forever reproduces the generator bit for bit.
#[derive(Debug, Clone)]
pub struct LoopedTrace {
    records: Vec<TraceRecord>,
    cursor: usize,
}

impl LoopedTrace {
    /// Wraps `records` for cyclic replay.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty (an empty loop has no meaningful
    /// iteration).
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "cannot loop an empty trace");
        Self { records, cursor: 0 }
    }
}

impl Iterator for LoopedTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let record = self.records[self.cursor];
        self.cursor = (self.cursor + 1) % self.records.len();
        Some(record)
    }
}

/// Where a replayed thread's records come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSource {
    /// Path of the trace file.
    pub path: PathBuf,
    /// Replay the file in an endless loop (attacker traces) instead of
    /// once through (benign traces).
    pub repeat: bool,
}

impl TraceSource {
    /// Loads the file and builds the thread's trace iterator.
    ///
    /// # Errors
    ///
    /// Propagates load errors (I/O or malformed records).
    pub fn build(&self) -> Result<sim::BoxedTrace, TraceError> {
        let records = load_trace_file(&self.path)?;
        Ok(if self.repeat {
            Box::new(LoopedTrace::new(records))
        } else {
            Box::new(records.into_iter())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::load(17, 0x1234_5678),
            TraceRecord::store(0, 64),
            TraceRecord::uncached_load(3, u64::MAX),
            TraceRecord::uncached_store(u32::MAX, 0),
        ]
    }

    #[test]
    fn empty_text_line_is_a_parse_error_not_a_panic() {
        let result = parse_text_line("", 7);
        match result {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 7),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    fn round_trip(format: TraceFormat) -> Vec<TraceRecord> {
        let mut writer = TraceWriter::new(Vec::new(), format).unwrap();
        for record in sample_records() {
            writer.write(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        TraceReader::new(bytes.as_slice(), format)
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    #[test]
    fn text_round_trips() {
        assert_eq!(round_trip(TraceFormat::Text), sample_records());
    }

    #[test]
    fn binary_round_trips() {
        assert_eq!(round_trip(TraceFormat::Binary), sample_records());
    }

    #[test]
    fn plain_ramulator_lines_parse() {
        let text = "12 8192\n# comment\n\n3 0x2000\n";
        let records: Vec<_> = TraceReader::new(text.as_bytes(), TraceFormat::Text)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(
            records,
            vec![TraceRecord::load(12, 8192), TraceRecord::load(3, 0x2000)]
        );
    }

    #[test]
    fn malformed_text_reports_the_line_number() {
        let text = "1 0x40\n\n# ok\nnot-a-count 0x40\n";
        let results: Vec<_> = TraceReader::new(text.as_bytes(), TraceFormat::Text).collect();
        assert!(results[0].is_ok());
        match &results[1] {
            Err(TraceError::Parse { line, .. }) => assert_eq!(*line, 4),
            other => panic!("expected a parse error, got {other:?}"),
        }
        // A reader that errored stops instead of resynchronizing.
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn bad_flags_and_trailing_tokens_are_rejected() {
        for bad in ["1 0x40 X", "1 0x40 W extra", "1", "1 zz"] {
            let results: Vec<_> = TraceReader::new(bad.as_bytes(), TraceFormat::Text).collect();
            assert!(
                matches!(results[0], Err(TraceError::Parse { line: 1, .. })),
                "`{bad}` should fail to parse"
            );
        }
    }

    #[test]
    fn binary_detects_corruption() {
        // Bad magic.
        let results: Vec<_> = TraceReader::new(&b"NOPE\x01"[..], TraceFormat::Binary).collect();
        assert!(matches!(results[0], Err(TraceError::Corrupt { .. })));
        // Truncated payload.
        let mut writer = TraceWriter::new(Vec::new(), TraceFormat::Binary).unwrap();
        writer.write(&TraceRecord::load(5, 0x40)).unwrap();
        let mut bytes = writer.finish().unwrap();
        bytes.truncate(bytes.len() - 1);
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), TraceFormat::Binary).collect();
        assert!(matches!(
            results[0],
            Err(TraceError::Corrupt { record: 0, .. })
        ));
        // Unknown flag bits.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        bytes.push(BINARY_VERSION);
        bytes.extend_from_slice(&[3, 0b100, 0, 0]);
        let results: Vec<_> = TraceReader::new(bytes.as_slice(), TraceFormat::Binary).collect();
        assert!(matches!(
            results[0],
            Err(TraceError::Corrupt { record: 0, .. })
        ));
    }

    #[test]
    fn binary_is_more_compact_than_text() {
        let records: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord::load(50, 0x4000 + i * 64))
            .collect();
        let encode = |format| {
            let mut writer = TraceWriter::new(Vec::new(), format).unwrap();
            for r in &records {
                writer.write(r).unwrap();
            }
            writer.finish().unwrap().len()
        };
        assert!(encode(TraceFormat::Binary) < encode(TraceFormat::Text));
    }

    #[test]
    fn looped_trace_cycles() {
        let records = vec![TraceRecord::load(0, 0x40), TraceRecord::load(0, 0x80)];
        let looped: Vec<_> = LoopedTrace::new(records.clone()).take(5).collect();
        assert_eq!(
            looped,
            vec![records[0], records[1], records[0], records[1], records[0]]
        );
    }

    #[test]
    fn varints_round_trip_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = [0u8; 10];
            let n = write_varint(&mut buf, value);
            let mut cursor = 0;
            assert_eq!(read_varint(&buf[..n], &mut cursor), Ok(value));
            assert_eq!(cursor, n);
        }
    }
}
