//! The campaign executor: fans whole runs out across the persistent
//! worker pool and streams results back in deterministic order.
//!
//! Execution has two phases:
//!
//! 1. **Normalization prelude** (when `CampaignSpec::normalize`): every
//!    distinct (benign workload, channel count) pair is run stand-alone
//!    under the no-mitigation baseline, producing the alone-IPC reference
//!    table the paper's multiprogrammed metrics divide by. The prelude
//!    jobs are independent of each other, so they fan out over the same
//!    worker pool as the run matrix; the finished table is keyed and
//!    stored *sorted*, so its contents are identical for every worker
//!    count. With a journal configured, the table is also cached on disk
//!    next to it (`<journal stem>.prelude`, keyed by a fingerprint over
//!    the workload names, channel counts, scale and seed), so resumed
//!    and re-submitted campaigns skip re-simulating the references
//!    entirely — observable as [`PreludeStats::from_cache`].
//! 2. **The run matrix**: every [`RunSpec`], either on the calling
//!    thread (`workers <= 1`) or fanned out over `workers` persistent
//!    threads under one of two [`SchedulerMode`]s. The default
//!    [`SchedulerMode::Stealing`] pushes runs into the shared injector
//!    queue of a [`StealingPool`](sim::pool::queue::StealingPool) —
//!    idle workers pull the next run the moment they finish, so no
//!    worker ever waits behind a long run — and completions, which
//!    arrive in *finish* order, pass through a reorder buffer that
//!    releases them strictly in run order. [`SchedulerMode::SlotPinned`]
//!    keeps the older discipline: round-robin dispatch to fixed
//!    [`sim::WorkerPool`](sim::pool::WorkerPool) slots, collection
//!    strictly in run order. Either way outcomes stream back — and fold
//!    into the [`CampaignAggregator`] — in exactly the sequential order
//!    no matter which worker finishes first, so sequential, slot-pinned
//!    and work-stealing execution of the same campaign emit
//!    byte-identical CSV/JSON/journal/NDJSON (pinned by
//!    `tests/tests/campaign_determinism.rs`).
//!
//! # Fault tolerance
//!
//! Every run executes behind an isolation boundary
//! (`catch_unwind`): a panicking run becomes a structured failure
//! instead of unwinding the campaign, and the configured
//! [`FailurePolicy`] decides what happens next — abort the campaign
//! with [`CampaignError::RunFailed`] (the default, today's behavior),
//! quarantine the run into the report's failure manifest (the
//! aggregator marks its sweep point degraded), or retry it up to a
//! bounded number of attempts before quarantining. In the pooled path
//! the executor keeps its own copy of every in-flight `RunSpec`, so
//! even a worker *thread* death (possible only for faults that bypass
//! the in-worker boundary) is survivable: the pool respawns the slot
//! ([`sim::pool::WorkerPool::collect_recovered`]) and the executor
//! resubmits the innocent jobs that died with it, preserving exact
//! delivery order.
//!
//! With [`ExecutionOptions::journal`] set, [`execute_resumable`] appends
//! each delivered result to an on-disk checkpoint journal
//! ([`crate::checkpoint`]) before moving on, and — when the journal
//! already holds finished runs for the *same* campaign — replays them
//! and re-runs only the tail. Because replayed outcomes feed the
//! aggregator in the same run order the original execution did, a
//! killed-and-resumed campaign emits byte-identical CSV/JSON to an
//! uninterrupted one (pinned by `tests/tests/kill_resume.rs`).

use crate::aggregate::{escape_json, CampaignAggregator, CampaignSummary};
use crate::checkpoint::{self, JournalEntry, JournalError, JournalWriter};
use crate::runner::{run_spec, CampaignError, FailedRun, RunOutcome};
use crate::spec::{CampaignSpec, RunSpec, ThreadGenerator};
use sim::pool::queue::{Outcome, StealingPool, WorkerTally};
use sim::pool::{Collected, WorkerPool};
use sim::{DefenseKind, SystemBuilder};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::SyntheticSpec;

pub use sim::pool::queue::WorkerSnapshot;

/// What the executor does with a run that fails (panics inside the
/// simulator or returns an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop the campaign at the first failing run, surfacing it as
    /// [`CampaignError::RunFailed`]. Results delivered before the
    /// failure stay journaled (when a journal is configured), so an
    /// aborted campaign resumes past them.
    #[default]
    Abort,
    /// Skip the failing run: record it in the failure manifest
    /// ([`CampaignReport::failures`]), mark its sweep point degraded,
    /// and continue with the rest of the campaign.
    Quarantine,
    /// Re-run a failing run up to `max_attempts` total attempts
    /// (retries execute on the collecting thread, preserving delivery
    /// order); a run still failing after the last attempt is
    /// quarantined.
    Retry {
        /// Total attempts per run, counting the first (values 0 and 1
        /// mean no retries — equivalent to `Quarantine`).
        max_attempts: u32,
    },
}

/// How pooled execution (`workers >= 2`) hands runs to its workers.
/// Both modes deliver results in strict run order and emit
/// byte-identical artifacts; they differ only in throughput under
/// skewed run durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Pull-based: runs queue in a shared injector, idle workers take
    /// the next one immediately, and a reorder buffer restores run
    /// order at delivery. The default — a long run blocks only the
    /// worker executing it.
    #[default]
    Stealing,
    /// Push-based: run `i` is pinned to slot `i % workers` and
    /// collected in run order. A long run head-of-line-blocks its slot
    /// and the collection loop; kept for comparison benchmarks and as
    /// the conservative fallback.
    SlotPinned,
}

impl SchedulerMode {
    /// Stable lowercase label (CLI argument values, CSV/JSON output).
    pub fn label(self) -> &'static str {
        match self {
            SchedulerMode::Stealing => "stealing",
            SchedulerMode::SlotPinned => "pinned",
        }
    }

    /// Parses a [`SchedulerMode::label`] back.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "stealing" => Some(SchedulerMode::Stealing),
            "pinned" | "slot-pinned" => Some(SchedulerMode::SlotPinned),
            _ => None,
        }
    }
}

/// Knobs of [`execute_resumable`] beyond the worker count.
#[derive(Debug, Clone, Default)]
pub struct ExecutionOptions {
    /// What to do with failing runs.
    pub policy: FailurePolicy,
    /// When set, every delivered result is appended to the checkpoint
    /// journal at this path (created on first use), and execution
    /// resumes after any runs the journal already holds. Also enables
    /// the on-disk prelude cache at `<path stem>.prelude`.
    pub journal: Option<PathBuf>,
    /// How pooled execution schedules runs onto workers.
    pub scheduler: SchedulerMode,
}

/// Normalization-prelude accounting for one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreludeStats {
    /// Distinct (benign workload, channel count) reference pairs the
    /// campaign needed.
    pub references: usize,
    /// References simulated by this invocation.
    pub computed: usize,
    /// References loaded from the on-disk prelude cache instead of
    /// simulated.
    pub from_cache: usize,
}

/// Scheduling telemetry for one invocation: who did the work and how
/// out-of-order it came back. Serialized as `scheduling.csv`
/// ([`CampaignReport::scheduling_csv`]) and into the server's status
/// document ([`crate::wire::scheduling_json`]). Deliberately *not* part
/// of the byte-identity contract — its contents are wall-clock- and
/// worker-dependent by construction, like `stepping.csv`'s are
/// advance-mode-dependent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// `"sequential"`, `"pinned"` or `"stealing"`.
    pub scheduler: &'static str,
    /// Per-worker tallies, in worker-index order (empty when
    /// sequential).
    pub workers: Vec<WorkerSnapshot>,
    /// Most completions the reorder buffer ever held at once. 0 when
    /// nothing was buffered (sequential or slot-pinned execution);
    /// 1 means completions arrived perfectly in run order; larger
    /// values measure how far ahead fast workers ran.
    pub reorder_high_water: usize,
    /// Normalization-prelude accounting.
    pub prelude: PreludeStats,
}

/// Everything a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-run outcomes of completed runs, in run order (quarantined
    /// runs are absent here and present in `failures`).
    pub outcomes: Vec<RunOutcome>,
    /// Quarantined runs, in run order — the failure manifest
    /// (serializable via [`CampaignReport::failures_csv`] /
    /// [`CampaignReport::failures_json`]).
    pub failures: Vec<FailedRun>,
    /// How many of the delivered results were replayed from the
    /// checkpoint journal instead of executed in this invocation.
    pub replayed: usize,
    /// The aggregated summary (CSV/JSON-serializable).
    pub summary: CampaignSummary,
    /// Wall-clock duration of the whole execution (prelude + runs).
    pub wall: Duration,
    /// Worker threads used (0 = sequential on the calling thread).
    pub workers: usize,
    /// Scheduling telemetry (worker tallies, reorder-buffer high-water
    /// mark, prelude cache accounting).
    pub scheduling: ExecutionStats,
}

impl CampaignReport {
    /// Freshly executed runs (completed or quarantined) per wall-clock
    /// second, or `None` when this invocation executed nothing — an
    /// empty campaign, or a resume that found every run already
    /// journaled. (Replayed results are excluded: reading a journal
    /// record is not executing a run, and counting it would report a
    /// fantasy rate.)
    pub fn runs_per_sec(&self) -> Option<f64> {
        let executed = (self.outcomes.len() + self.failures.len()).saturating_sub(self.replayed);
        if executed == 0 {
            return None;
        }
        Some(executed as f64 / self.wall.as_secs_f64().max(1e-9))
    }

    /// The failure manifest as CSV (one row per quarantined run, in run
    /// order; the cause field is quoted since panic messages contain
    /// commas).
    pub fn failures_csv(&self) -> String {
        let mut csv = String::from("index,name,scenario,defense,n_rh,channels,attempts,cause\n");
        for f in &self.failures {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},\"{}\"\n",
                f.index,
                f.name,
                f.scenario,
                f.defense,
                f.n_rh,
                f.channels,
                f.attempts,
                f.cause.replace('"', "\"\"").replace('\n', " "),
            ));
        }
        csv
    }

    /// The failure manifest as a JSON array document.
    pub fn failures_json(&self) -> String {
        let mut out = String::from("{\n  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\": {}, \"name\": \"{}\", \"scenario\": \"{}\", \
                 \"defense\": \"{}\", \"n_rh\": {}, \"channels\": {}, \
                 \"attempts\": {}, \"cause\": \"{}\"}}{}\n",
                f.index,
                escape_json(&f.name),
                escape_json(&f.scenario),
                escape_json(&f.defense),
                f.n_rh,
                f.channels,
                f.attempts,
                escape_json(&f.cause),
                if i + 1 < self.failures.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Per-run idle-skip accounting as CSV (one row per run, in run
    /// order): how much of each run's simulated time the event-driven
    /// advance loop skipped. Kept separate from
    /// [`CampaignSummary`](crate::CampaignSummary)'s CSV/JSON on purpose —
    /// those artifacts are pinned byte-identical across advance modes,
    /// while these counters are mode-dependent by construction.
    pub fn stepping_csv(&self) -> String {
        let mut csv = String::from(
            "index,name,defense,channels,total_cycles,cycles_simulated,\
             cycles_skipped,events_processed,largest_jump,skip_ratio\n",
        );
        for outcome in &self.outcomes {
            let s = &outcome.stepping;
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:.4}\n",
                outcome.index,
                outcome.name,
                outcome.defense,
                outcome.channels,
                outcome.total_cycles,
                s.cycles_simulated,
                s.cycles_skipped,
                s.events_processed,
                s.largest_jump,
                s.skip_ratio(),
            ));
        }
        csv
    }

    /// Scheduling telemetry as a `metric,value` CSV — `stepping.csv`'s
    /// sibling `scheduling.csv`. Like the stepping counters, this
    /// artifact is *not* byte-stable across worker counts or scheduler
    /// modes (busy times are wall-clock; steal counts depend on finish
    /// order); the stable artifacts are `campaign.csv`/`campaign.json`.
    pub fn scheduling_csv(&self) -> String {
        let s = &self.scheduling;
        let mut csv = String::from("metric,value\n");
        csv.push_str(&format!("scheduler,{}\n", s.scheduler));
        csv.push_str(&format!("workers,{}\n", self.workers));
        csv.push_str(&format!("reorder_high_water,{}\n", s.reorder_high_water));
        csv.push_str(&format!("prelude_references,{}\n", s.prelude.references));
        csv.push_str(&format!("prelude_computed,{}\n", s.prelude.computed));
        csv.push_str(&format!("prelude_from_cache,{}\n", s.prelude.from_cache));
        let wall = self.wall.as_secs_f64().max(1e-9);
        for (i, worker) in s.workers.iter().enumerate() {
            csv.push_str(&format!("worker_{i}_jobs,{}\n", worker.jobs));
            csv.push_str(&format!("worker_{i}_steals,{}\n", worker.steals));
            csv.push_str(&format!("worker_{i}_busy_us,{}\n", worker.busy.as_micros()));
            csv.push_str(&format!(
                "worker_{i}_utilization,{:.4}\n",
                (worker.busy.as_secs_f64() / wall).min(1.0)
            ));
        }
        csv
    }
}

/// A sensible default worker count for [`execute`] on this machine: all
/// available hardware threads minus one (keeping the calling/collecting
/// thread responsive), i.e. 0 — sequential — on a single-core machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
}

/// The stand-alone IPC reference table: one entry per distinct (benign
/// workload, channel count) pair, sorted by that pair so lookups run on
/// *borrowed* keys (a binary search over `(&str, usize)`) — attaching
/// references to the paper-scale 250-mix matrix allocates nothing per
/// run.
struct AloneIpcTable {
    /// `(workload name, channels, alone IPC)`, sorted by the key pair.
    entries: Vec<(String, usize, f64)>,
}

impl AloneIpcTable {
    fn get(&self, name: &str, channels: usize) -> Option<f64> {
        self.entries
            .binary_search_by(|(n, c, _)| (n.as_str(), *c).cmp(&(name, channels)))
            .ok()
            .map(|at| self.entries[at].2)
    }
}

/// One queued prelude measurement: a workload run stand-alone on the
/// unprotected baseline.
struct PreludeJob {
    name: String,
    channels: usize,
    spec: SyntheticSpec,
    /// Filled by the measurement.
    ipc: f64,
}

/// Runs one prelude job at the campaign's scale.
fn measure_alone_ipc(campaign: &CampaignSpec, job: &PreludeJob) -> f64 {
    let scale = campaign.scale;
    let result = SystemBuilder::new()
        .time_scale(scale.time_scale)
        .llc_capacity(scale.llc_bytes)
        .seed(campaign.seed)
        .max_cycles(scale.max_cycles)
        .min_cycles(scale.min_cycles)
        .channels(job.channels)
        .defense(DefenseKind::Baseline)
        .advance_mode(scale.advance)
        .add_workload(job.spec.clone(), scale.benign_instructions)
        .run();
    result.threads[0].ipc
}

/// Builds the stand-alone IPC reference table for `runs`, preferring the
/// on-disk prelude cache (when `cache` names one and its fingerprint
/// matches) and otherwise measuring every pair — fanned out over
/// `workers` pool threads when pooling is on, since the jobs are
/// mutually independent and the table is sorted regardless of
/// completion order. A freshly measured table is written back to the
/// cache (best-effort: a failed write costs only the next invocation's
/// prelude time).
fn alone_ipc_table(
    campaign: &CampaignSpec,
    runs: &[RunSpec],
    workers: usize,
    cache: Option<&Path>,
    stats: &mut PreludeStats,
) -> AloneIpcTable {
    // Deduplicate straight into sorted order: one owned key per
    // *distinct* pair, never one per run.
    let mut jobs: Vec<PreludeJob> = Vec::new();
    for run in runs {
        for thread in run.benign_threads() {
            let ThreadGenerator::Synthetic(spec) = &thread.generator else {
                continue;
            };
            let key = (thread.name.as_str(), run.channels);
            match jobs.binary_search_by(|job| (job.name.as_str(), job.channels).cmp(&key)) {
                Ok(_) => {}
                Err(at) => jobs.insert(
                    at,
                    PreludeJob {
                        name: thread.name.clone(),
                        channels: run.channels,
                        spec: spec.clone(),
                        ipc: 0.0,
                    },
                ),
            }
        }
    }
    stats.references = jobs.len();
    // One owned key pair per distinct reference (not per run) — these
    // outlive the jobs, which move into the pool below.
    let keys: Vec<(String, usize)> = jobs.iter().map(|j| (j.name.clone(), j.channels)).collect();
    let fingerprint = checkpoint::prelude_fingerprint(campaign, &keys);
    if let Some(path) = cache {
        if let Some(entries) = checkpoint::load_prelude_cache(path, fingerprint) {
            // The fingerprint covers the key list, so a match should
            // imply identical keys; verify anyway before trusting it.
            let matches = entries.len() == keys.len()
                && entries
                    .iter()
                    .zip(keys.iter())
                    .all(|((n, c, _), (name, channels))| n == name && c == channels);
            if matches {
                stats.from_cache = entries.len();
                return AloneIpcTable { entries };
            }
        }
    }
    stats.computed = jobs.len();
    if workers >= 2 && jobs.len() >= 2 {
        // Fan the measurements over a pull-based pool. Each completion
        // carries its job's position, so the sorted order is restored by
        // construction no matter which worker finishes first.
        let reference = Arc::new(campaign.clone());
        let measure = {
            let reference = Arc::clone(&reference);
            move |job: &mut PreludeJob| {
                job.ipc = measure_alone_ipc(&reference, job);
            }
        };
        let mut pool: StealingPool<PreludeJob, ()> = StealingPool::new(workers, measure);
        let mut slots: Vec<Option<PreludeJob>> = Vec::new();
        for job in jobs.drain(..) {
            pool.submit(slots.len() as u64, job);
            slots.push(None);
        }
        while let Some(done) = pool.next_completion() {
            match done.outcome {
                Outcome::Done(job, ()) => slots[done.seq as usize] = Some(job),
                // A panicking prelude job falls back to an in-line
                // measurement below, where the panic (a simulator bug,
                // not a per-run fault) propagates to the caller.
                Outcome::Panicked(_) => {}
            }
        }
        jobs = slots
            .into_iter()
            .enumerate()
            .map(|(at, slot)| match slot {
                Some(job) => job,
                None => {
                    let mut job = rebuild_prelude_job(runs, &keys[at]);
                    job.ipc = measure_alone_ipc(campaign, &job);
                    job
                }
            })
            .collect();
    } else {
        for job in &mut jobs {
            job.ipc = measure_alone_ipc(campaign, job);
        }
    }
    let entries: Vec<(String, usize, f64)> = jobs
        .into_iter()
        .map(|job| (job.name, job.channels, job.ipc))
        .collect();
    if let Some(path) = cache {
        let _ = checkpoint::store_prelude_cache(path, fingerprint, &entries);
    }
    AloneIpcTable { entries }
}

/// Re-derives a prelude job from its key pair (the original was
/// consumed by a panicked pool attempt — the rare path).
fn rebuild_prelude_job(runs: &[RunSpec], key: &(String, usize)) -> PreludeJob {
    let (name, channels) = key;
    for run in runs {
        if run.channels != *channels {
            continue;
        }
        for thread in run.benign_threads() {
            if thread.name != *name {
                continue;
            }
            if let ThreadGenerator::Synthetic(spec) = &thread.generator {
                return PreludeJob {
                    name: name.clone(),
                    channels: *channels,
                    spec: spec.clone(),
                    ipc: 0.0,
                };
            }
        }
    }
    // The key list was built from exactly these runs; reaching here
    // would mean the run list changed under us mid-call.
    // lint: allow(panic-freedom) -- keys are derived from `runs` in this same call; the pair must exist
    unreachable!("prelude key ({name}, {channels}) not found in the run list")
}

/// Fills every run's `alone_ipc` from the reference table. Lookups use
/// borrowed keys — no per-run allocation.
fn attach_alone_ipc(runs: &mut [RunSpec], table: &AloneIpcTable) -> Result<(), CampaignError> {
    for run in runs.iter_mut() {
        let mut alone = Vec::with_capacity(run.threads.len());
        for thread in run.threads.iter().filter(|t| !t.is_attacker) {
            let Some(ipc) = table.get(&thread.name, run.channels) else {
                return Err(CampaignError::Spec {
                    run: run.name.clone(),
                    message: format!("no stand-alone IPC reference for `{}`", thread.name),
                });
            };
            alone.push(ipc);
        }
        run.alone_ipc = alone;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Run isolation
// ---------------------------------------------------------------------------

/// How a single run attempt failed behind the isolation boundary.
enum RunError {
    /// The run returned a structured error.
    Campaign(CampaignError),
    /// The run panicked; the payload was converted to its message.
    Panic(String),
}

impl RunError {
    /// The failure as a one-line cause for manifests and journals.
    fn cause(&self) -> String {
        match self {
            RunError::Campaign(error) => error.to_string(),
            RunError::Panic(message) => format!("panicked: {message}"),
        }
    }
}

/// Best-effort rendering of a panic payload.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Executes one run behind the isolation boundary: a panic anywhere in
/// the simulator comes back as a [`RunError::Panic`] instead of
/// unwinding the executor (or a pool worker).
fn run_isolated(spec: &RunSpec) -> Result<RunOutcome, RunError> {
    match catch_unwind(AssertUnwindSafe(|| run_spec(spec))) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(error)) => Err(RunError::Campaign(error)),
        Err(payload) => Err(RunError::Panic(panic_cause(payload))),
    }
}

/// What one run ultimately delivered after the failure policy had its
/// say.
enum Delivery {
    /// The run completed (possibly after retries).
    Outcome(RunOutcome),
    /// The run was quarantined.
    Failure(FailedRun),
}

/// Applies the failure policy to a run's first-attempt result,
/// performing any retries synchronously on the calling thread (the
/// collector), so delivery order never depends on retry timing.
fn resolve(
    spec: &RunSpec,
    first: Result<RunOutcome, RunError>,
    policy: FailurePolicy,
) -> Result<Delivery, CampaignError> {
    let first_error = match first {
        Ok(outcome) => return Ok(Delivery::Outcome(outcome)),
        Err(error) => error,
    };
    match policy {
        FailurePolicy::Abort => Err(match first_error {
            RunError::Campaign(error) => error,
            RunError::Panic(message) => CampaignError::RunFailed {
                index: spec.index,
                run: spec.name.clone(),
                cause: format!("panicked: {message}"),
            },
        }),
        FailurePolicy::Quarantine => Ok(Delivery::Failure(FailedRun::new(
            spec,
            1,
            first_error.cause(),
        ))),
        FailurePolicy::Retry { max_attempts } => {
            let mut attempts = 1u32;
            let mut last_error = first_error;
            while attempts < max_attempts {
                attempts += 1;
                match run_isolated(spec) {
                    Ok(outcome) => return Ok(Delivery::Outcome(outcome)),
                    Err(error) => last_error = error,
                }
            }
            Ok(Delivery::Failure(FailedRun::new(
                spec,
                attempts,
                last_error.cause(),
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Delivery sink: aggregation + journaling in one place
// ---------------------------------------------------------------------------

/// Collects deliveries in run order, journaling each (fresh ones only)
/// before folding it into the aggregator — so anything the aggregator
/// saw is durable, and a crash between the two replays identically. The
/// observer fires on every absorbed entry (replayed and fresh alike),
/// *after* the journal append, so a subscriber never sees a result that
/// would vanish on a crash.
struct Sink<'a> {
    aggregator: CampaignAggregator,
    outcomes: Vec<RunOutcome>,
    failures: Vec<FailedRun>,
    writer: Option<JournalWriter>,
    observer: DeliveryObserver<'a>,
}

impl Sink<'_> {
    fn absorb(&mut self, entry: JournalEntry, replayed: bool) {
        (self.observer)(&entry, replayed);
        match entry {
            JournalEntry::Outcome(outcome) => {
                self.aggregator.absorb(&outcome);
                self.outcomes.push(outcome);
            }
            JournalEntry::Failure(failure) => {
                self.aggregator.absorb_failure(&failure);
                self.failures.push(failure);
            }
        }
    }

    fn deliver(&mut self, delivery: Delivery) -> Result<(), CampaignError> {
        let entry = match delivery {
            Delivery::Outcome(outcome) => JournalEntry::Outcome(outcome),
            Delivery::Failure(failure) => JournalEntry::Failure(failure),
        };
        if let Some(writer) = &mut self.writer {
            writer
                .append(&entry)
                .map_err(|e| CampaignError::Checkpoint {
                    error: JournalError::Io(e),
                })?;
        }
        self.absorb(entry, false);
        Ok(())
    }
}

/// Validates that journal entries actually describe the head of this
/// campaign's run list (belt to the fingerprint's braces: the journal
/// header already pinned the spec, this pins the expansion).
fn check_replay(entries: &[JournalEntry], runs: &[RunSpec]) -> Result<(), CampaignError> {
    let mismatch = |message: String| CampaignError::Checkpoint {
        error: JournalError::SpecMismatch { message },
    };
    if entries.len() > runs.len() {
        return Err(mismatch(format!(
            "journal holds {} finished runs for a {}-run campaign",
            entries.len(),
            runs.len()
        )));
    }
    for (position, entry) in entries.iter().enumerate() {
        let run = &runs[position];
        if entry.name() != run.name {
            return Err(mismatch(format!(
                "journaled run {position} is `{}`, campaign expects `{}`",
                entry.name(),
                run.name
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Executes a prepared run list (see [`CampaignSpec::expand`] and
/// `record_run_traces`) and reduces it to a [`CampaignReport`], with
/// default options: [`FailurePolicy::Abort`] and no checkpoint journal.
///
/// `workers <= 1` executes sequentially on the calling thread; larger
/// values fan runs out over that many persistent worker threads. The
/// report — outcomes, aggregation and serialized summaries — is
/// byte-identical for every worker count.
///
/// # Errors
///
/// Fails on the first run that cannot execute (unreadable trace file,
/// inconsistent spec, panic inside the simulator); queued work on other
/// workers is discarded.
pub fn execute(
    campaign: &CampaignSpec,
    runs: Vec<RunSpec>,
    workers: usize,
) -> Result<CampaignReport, CampaignError> {
    execute_resumable(campaign, runs, workers, &ExecutionOptions::default())
}

/// [`execute`] with explicit failure handling and checkpoint/resume.
///
/// When `options.journal` is set, each delivered result is appended to
/// the journal before the campaign moves on; re-invoking with the same
/// spec and journal path replays the finished prefix (skipping even the
/// normalization prelude when nothing is left to run) and executes only
/// the tail. Replayed results flow through the aggregator in their
/// original run order, so an interrupted-and-resumed campaign reports
/// byte-identical CSV/JSON to an uninterrupted one.
///
/// # Errors
///
/// * [`CampaignError::Checkpoint`] if the journal cannot be opened,
///   belongs to a different campaign, or cannot be appended to;
/// * under [`FailurePolicy::Abort`], the first failing run as
///   [`CampaignError::RunFailed`] (or its structured error);
/// * run-independent setup failures (e.g. a missing stand-alone IPC
///   reference) regardless of policy.
pub fn execute_resumable(
    campaign: &CampaignSpec,
    runs: Vec<RunSpec>,
    workers: usize,
    options: &ExecutionOptions,
) -> Result<CampaignReport, CampaignError> {
    execute_observed(campaign, runs, workers, options, &mut |_, _| {})
}

/// A result-delivery subscriber for [`execute_observed`]: called with
/// every delivered entry in campaign run order; the `bool` marks entries
/// replayed from the checkpoint journal (as opposed to executed by this
/// invocation).
pub type DeliveryObserver<'a> = &'a mut dyn FnMut(&JournalEntry, bool);

/// [`execute_resumable`] with a result-delivery subscriber: `observer`
/// fires once per delivered run result, in run order, for replayed and
/// freshly-executed results alike — which is how the campaign server
/// streams per-run NDJSON records to clients without buffering whole
/// reports. When a journal is configured the observer fires only *after*
/// the entry is durably appended, so a subscriber never observes a
/// result a crash could take back; on resume, the journal's replayed
/// prefix is observed first (flagged `replayed = true`), giving a
/// late-attaching subscriber the complete result history.
///
/// # Errors
///
/// Exactly [`execute_resumable`]'s.
pub fn execute_observed(
    campaign: &CampaignSpec,
    mut runs: Vec<RunSpec>,
    workers: usize,
    options: &ExecutionOptions,
    observer: DeliveryObserver<'_>,
) -> Result<CampaignReport, CampaignError> {
    // lint: allow(determinism) -- wall-clock duration is report metadata, never simulated state
    let started = Instant::now();
    let total = runs.len();
    let (replay, writer) = match &options.journal {
        Some(path) => {
            let resumed = checkpoint::resume_or_create(
                path,
                checkpoint::fingerprint(campaign),
                total as u64,
            )?;
            check_replay(&resumed.entries, &runs)?;
            (resumed.entries, Some(resumed.writer))
        }
        None => (Vec::new(), None),
    };
    let replayed = replay.len();
    let mut stats = ExecutionStats {
        scheduler: if workers <= 1 {
            "sequential"
        } else {
            options.scheduler.label()
        },
        ..ExecutionStats::default()
    };
    // The prelude feeds only runs that will actually execute; a resume
    // with nothing left to do (or an unnormalized campaign) skips it.
    if campaign.normalize && replayed < total {
        let cache = options.journal.as_deref().map(prelude_cache_path);
        let table = alone_ipc_table(
            campaign,
            &runs,
            workers,
            cache.as_deref(),
            &mut stats.prelude,
        );
        attach_alone_ipc(&mut runs, &table)?;
    }
    let mut sink = Sink {
        aggregator: CampaignAggregator::new(campaign.name.clone()),
        outcomes: Vec::with_capacity(total),
        failures: Vec::new(),
        writer,
        observer,
    };
    for entry in replay {
        sink.absorb(entry, true);
    }
    let tail: Vec<RunSpec> = runs.split_off(replayed);
    drop(runs);
    if workers <= 1 {
        for run in &tail {
            let delivery = resolve(run, run_isolated(run), options.policy)?;
            sink.deliver(delivery)?;
        }
    } else {
        match options.scheduler {
            SchedulerMode::Stealing => {
                execute_stealing(tail, workers, options.policy, &mut sink, &mut stats)?;
            }
            SchedulerMode::SlotPinned => {
                execute_pooled(tail, workers, options.policy, &mut sink, &mut stats)?;
            }
        }
    }
    Ok(CampaignReport {
        outcomes: sink.outcomes,
        failures: sink.failures,
        replayed,
        summary: sink.aggregator.finish(),
        wall: started.elapsed(),
        workers: if workers <= 1 { 0 } else { workers },
        scheduling: stats,
    })
}

/// Where the prelude cache lives for a given journal path: the journal's
/// sibling with the `prelude` extension (`campaign.journal` →
/// `campaign.prelude`).
pub fn prelude_cache_path(journal: &Path) -> PathBuf {
    journal.with_extension("prelude")
}

/// The slot-pinned run loop: round-robin dispatch, strict run-order
/// collection, and slot-level recovery when a worker thread dies.
fn execute_pooled(
    tail: Vec<RunSpec>,
    workers: usize,
    policy: FailurePolicy,
    sink: &mut Sink<'_>,
    stats: &mut ExecutionStats,
) -> Result<(), CampaignError> {
    let total = tail.len();
    // Shared per-slot tallies: the work closure records into them from
    // the worker threads, the executor snapshots them at the end.
    let tallies: Arc<Vec<WorkerTally>> =
        Arc::new((0..workers).map(|_| WorkerTally::new()).collect());
    let recorder = Arc::clone(&tallies);
    let mut pool: WorkerPool<usize, RunSpec, Result<RunOutcome, String>> =
        WorkerPool::new(workers, move |slot: usize, run: &mut RunSpec| {
            // The isolation boundary lives *inside* the worker: a
            // panicking run reports back as data and the worker thread
            // survives to take the next job. (Panic payloads are
            // flattened to strings here because `RunError` itself need
            // not cross threads.)
            // lint: allow(determinism) -- worker busy-time accounting; never read by simulated state
            let started = Instant::now();
            let result = run_isolated(run).map_err(|error| error.cause_raw());
            // Pinned dispatch never steals: run i is bound to slot i%N.
            recorder[slot].record(false, started.elapsed());
            result
        });
    // The executor's own copy of everything currently inside the pool,
    // per slot in dispatch order — what makes a dead worker's jobs
    // resubmittable.
    let mut inflight: Vec<VecDeque<RunSpec>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut queue: VecDeque<RunSpec> = tail.into();
    let mut dispatched = 0usize;
    let mut collected = 0usize;
    while collected < total {
        // Keep every worker fed, at most one queued job ahead each.
        while dispatched < total && dispatched - collected < 2 * workers {
            let Some(run) = queue.pop_front() else {
                break;
            };
            let slot = dispatched % workers;
            inflight[slot].push_back(run.clone());
            pool.dispatch(slot, slot, run);
            dispatched += 1;
        }
        // Collect strictly in run order: run i always comes back from
        // slot i % workers, and each slot answers in dispatch order.
        let slot = collected % workers;
        match pool.collect_recovered(slot) {
            Collected::Done(run, result) => {
                inflight[slot].pop_front();
                let first = result.map_err(RunError::from_raw_cause);
                let delivery = resolve(&run, first, policy)?;
                sink.deliver(delivery)?;
                collected += 1;
            }
            Collected::Lost {
                message,
                lost_jobs,
                parked,
            } => {
                // The slot's oldest outstanding job — exactly run
                // `collected` — died with the worker; everything else it
                // held (later lost jobs, then parked jobs) was innocent
                // and is resubmitted to the respawned slot in its
                // original dispatch order.
                let mut held: Vec<RunSpec> = inflight[slot].drain(..).collect();
                if held.len() != lost_jobs + parked.len() || held.is_empty() {
                    return Err(CampaignError::Spec {
                        run: format!("worker slot {slot}"),
                        message: format!(
                            "pool recovery bookkeeping diverged: {} in-flight copies for \
                             {lost_jobs} lost + {} parked jobs ({message})",
                            held.len(),
                            parked.len()
                        ),
                    });
                }
                let failed = held.remove(0);
                let delivery = resolve(&failed, Err(RunError::Panic(message)), policy)?;
                sink.deliver(delivery)?;
                collected += 1;
                for run in held {
                    inflight[slot].push_back(run.clone());
                    pool.dispatch(slot, slot, run);
                }
            }
        }
    }
    stats.workers = tallies.iter().map(WorkerTally::snapshot).collect();
    Ok(())
}

/// The work-stealing run loop: every run goes into the shared injector
/// queue tagged with its position, completions come back in *finish*
/// order, and a reorder buffer releases them to the sink strictly in
/// run order — so the journal, the aggregator and the delivery observer
/// see exactly the sequential sequence while no worker ever idles
/// behind a long run. The failure policy is applied at *release* time
/// (not completion time), which keeps even `Abort`'s journaled prefix
/// and `Retry`'s attempt ordering byte-identical to sequential
/// execution.
fn execute_stealing(
    tail: Vec<RunSpec>,
    workers: usize,
    policy: FailurePolicy,
    sink: &mut Sink<'_>,
    stats: &mut ExecutionStats,
) -> Result<(), CampaignError> {
    let total = tail.len();
    let mut pool: StealingPool<RunSpec, Result<RunOutcome, String>> =
        StealingPool::new(workers, |run: &mut RunSpec| {
            // Same in-worker isolation boundary as the pinned path: a
            // panicking run reports back as data. (The pool's own
            // catch_unwind behind this is the backstop for panics that
            // escape it — e.g. a poisoned payload drop.)
            run_isolated(run).map_err(|error| error.cause_raw())
        });
    // The executor's own copy of every submitted run: panicked attempts
    // drop the item they carried, and `resolve` needs the spec for
    // retries and failure identity.
    let mut pending: Vec<Option<RunSpec>> = tail.iter().map(|run| Some(run.clone())).collect();
    for (seq, run) in tail.into_iter().enumerate() {
        pool.submit(seq as u64, run);
    }
    let mut buffer: BTreeMap<usize, Result<RunOutcome, RunError>> = BTreeMap::new();
    let mut next = 0usize;
    let mut high_water = 0usize;
    let mut completed = 0usize;
    while completed < total {
        let Some(done) = pool.next_completion() else {
            return Err(CampaignError::Spec {
                run: "work-stealing pool".to_owned(),
                message: format!(
                    "worker pool shut down with {} of {total} runs outstanding",
                    total - completed
                ),
            });
        };
        completed += 1;
        let seq = done.seq as usize;
        let first = match done.outcome {
            Outcome::Done(_, result) => result.map_err(RunError::from_raw_cause),
            Outcome::Panicked(message) => Err(RunError::Panic(message)),
        };
        // Admit the completion out of order; release the contiguous
        // prefix in strict run order. The buffer bookkeeping itself
        // never allocates — delivery costs (retries, journaling,
        // aggregation) live behind `resolve` and `Sink::deliver`.
        // lint: alloc-free
        {
            buffer.insert(seq, first);
            if buffer.len() > high_water {
                high_water = buffer.len();
            }
            while let Some(first) = buffer.remove(&next) {
                let spec = take_pending(&mut pending, next)?;
                let delivery = resolve(&spec, first, policy)?;
                sink.deliver(delivery)?;
                next += 1;
            }
        }
    }
    stats.workers = pool.tallies();
    stats.reorder_high_water = high_water;
    Ok(())
}

/// Claims the executor-side copy of run `at` exactly once; a second
/// claim means the pool delivered a duplicate completion (impossible by
/// construction, surfaced as a structured error rather than trusted).
fn take_pending(pending: &mut [Option<RunSpec>], at: usize) -> Result<RunSpec, CampaignError> {
    pending[at].take().ok_or_else(|| CampaignError::Spec {
        run: "work-stealing pool".to_owned(),
        message: format!("run {at} completed twice"),
    })
}

impl RunError {
    /// The raw cause string a pool worker reported (see
    /// [`RunError::cause_raw`]), restored to a `RunError`.
    fn from_raw_cause(raw: String) -> Self {
        match raw.strip_prefix("panicked: ") {
            Some(message) => RunError::Panic(message.to_owned()),
            None => RunError::Campaign(CampaignError::RunFailed {
                index: 0,
                run: String::new(),
                cause: raw,
            }),
        }
    }

    /// Flattens the error to the string form that crosses the pool's
    /// result channel. Structured campaign errors under `Abort` are
    /// rebuilt by [`resolve`] with the run's identity, so only the
    /// cause text needs to survive the crossing.
    fn cause_raw(&self) -> String {
        match self {
            RunError::Campaign(error) => error.to_string(),
            RunError::Panic(message) => format!("panicked: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SteppingStats;

    fn tiny_campaign() -> CampaignSpec {
        let mut campaign = CampaignSpec::smoke();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 400;
        campaign.scale.min_cycles = 20_000;
        campaign
    }

    #[test]
    fn sequential_execution_produces_metrics_and_order() {
        let campaign = tiny_campaign();
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert_eq!(report.outcomes.len(), campaign.run_count());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert!(outcome.metrics.is_some(), "normalized campaign has metrics");
        }
        assert_eq!(report.summary.runs, campaign.run_count());
        assert!(report.failures.is_empty());
        assert_eq!(report.replayed, 0);
        assert!(report.runs_per_sec().is_some_and(|rate| rate > 0.0));
        // Every sweep point must have normalized metrics (Baseline is in
        // the defense axis).
        assert!(report.summary.points.iter().all(|p| p.normalized.is_some()));
    }

    #[test]
    fn zero_executed_runs_report_no_rate() {
        let report = CampaignReport {
            outcomes: Vec::new(),
            failures: Vec::new(),
            replayed: 0,
            summary: CampaignAggregator::new("empty").finish(),
            wall: Duration::ZERO,
            workers: 0,
            scheduling: ExecutionStats::default(),
        };
        assert_eq!(report.runs_per_sec(), None);
        // A fully-replayed resume also executed nothing.
        let replayed = CampaignReport {
            replayed: 1,
            outcomes: vec![RunOutcome {
                index: 0,
                name: "r".into(),
                scenario: "attack".into(),
                defense: "Baseline".into(),
                n_rh: 1,
                channels: 1,
                total_cycles: 1,
                activations: 0,
                dram_energy_j: 0.0,
                threads: Vec::new(),
                metrics: None,
                stepping: SteppingStats::default(),
            }],
            failures: Vec::new(),
            summary: CampaignAggregator::new("replayed").finish(),
            wall: Duration::from_millis(5),
            workers: 0,
            scheduling: ExecutionStats::default(),
        };
        assert_eq!(replayed.runs_per_sec(), None);
    }

    #[test]
    fn failure_manifest_serializations_quote_causes() {
        let report = CampaignReport {
            outcomes: Vec::new(),
            failures: vec![FailedRun {
                index: 3,
                name: "mix-003/Para/nrh32768/ch1".into(),
                scenario: "attack".into(),
                defense: "Para".into(),
                n_rh: 32_768,
                channels: 1,
                attempts: 2,
                cause: "panicked: index 4, len 4, with \"quotes\"".into(),
            }],
            replayed: 0,
            summary: CampaignAggregator::new("t").finish(),
            wall: Duration::ZERO,
            workers: 0,
            scheduling: ExecutionStats::default(),
        };
        let csv = report.failures_csv();
        assert!(csv.starts_with("index,name,scenario,defense,"));
        assert!(csv.contains("\"panicked: index 4, len 4, with \"\"quotes\"\"\""));
        let json = report.failures_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn normalization_can_be_disabled() {
        let mut campaign = tiny_campaign();
        campaign.normalize = false;
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert!(report.outcomes.iter().all(|o| o.metrics.is_none()));
        assert!(report.summary.points.iter().all(|p| p.metrics.is_none()));
    }

    #[test]
    fn missing_alone_reference_is_reported() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        // Give a benign thread a non-synthetic generator: the prelude
        // cannot measure a stand-alone IPC for it, which must surface as
        // an error, not a panic.
        let victim = runs
            .iter_mut()
            .flat_map(|r| r.threads.iter_mut())
            .find(|t| !t.is_attacker)
            .expect("a benign thread exists");
        victim.name = "not-a-workload".to_owned();
        victim.generator = ThreadGenerator::Attack(workloads::AttackKind::DoubleSided);
        match execute(&campaign, runs, 0) {
            Err(CampaignError::Spec { message, .. }) => {
                assert!(message.contains("not-a-workload"))
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn a_failing_run_aborts_by_default_with_its_identity() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        // A benign thread pointing at a missing trace file fails its run.
        runs[1].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        match execute(&campaign, runs, 0) {
            Err(CampaignError::Trace { run, .. }) => assert!(run.contains('/')),
            other => panic!("expected the structured trace error, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_completes_the_campaign_and_flags_the_point() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        let total = runs.len();
        runs[1].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        let victim_name = runs[1].name.clone();
        let options = ExecutionOptions {
            policy: FailurePolicy::Quarantine,
            journal: None,
            scheduler: SchedulerMode::default(),
        };
        let report = execute_resumable(&campaign, runs, 0, &options).expect("campaign completes");
        assert_eq!(report.outcomes.len(), total - 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].name, victim_name);
        assert_eq!(report.failures[0].attempts, 1);
        assert_eq!(report.summary.failed, 1);
        assert!(report.summary.is_degraded());
        assert_eq!(
            report
                .summary
                .points
                .iter()
                .map(|p| p.failed_runs)
                .sum::<usize>(),
            1
        );
        assert!(report.failures_csv().contains(&victim_name));
    }

    #[test]
    fn retry_exhaustion_quarantines_with_the_attempt_count() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        runs[0].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        let options = ExecutionOptions {
            policy: FailurePolicy::Retry { max_attempts: 3 },
            journal: None,
            scheduler: SchedulerMode::default(),
        };
        let report = execute_resumable(&campaign, runs, 0, &options).expect("campaign completes");
        assert_eq!(
            report.failures.len(),
            1,
            "a permanent fault exhausts retries"
        );
        assert_eq!(report.failures[0].attempts, 3);
    }

    #[test]
    fn observer_sees_every_delivery_in_run_order_with_replay_flags() {
        let campaign = tiny_campaign();
        let dir = std::env::temp_dir().join(format!("bh-observer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let journal = dir.join("observer.journal");
        let _ = std::fs::remove_file(&journal);
        let options = ExecutionOptions {
            policy: FailurePolicy::Abort,
            journal: Some(journal.clone()),
            scheduler: SchedulerMode::default(),
        };
        let total = campaign.run_count();
        // Fresh execution: every delivery observed in run order, none
        // flagged as replayed.
        let mut seen: Vec<(usize, bool)> = Vec::new();
        let report = execute_observed(&campaign, campaign.expand(), 0, &options, &mut |e, r| {
            seen.push((e.index(), r));
        })
        .expect("campaign runs");
        assert_eq!(
            seen,
            (0..total).map(|i| (i, false)).collect::<Vec<_>>(),
            "fresh deliveries arrive in run order, unflagged"
        );
        // Resume over the complete journal: the same history replays to a
        // late-attaching observer, now flagged.
        let mut replayed: Vec<(usize, bool)> = Vec::new();
        let resumed = execute_observed(&campaign, campaign.expand(), 0, &options, &mut |e, r| {
            replayed.push((e.index(), r));
        })
        .expect("resume runs");
        assert_eq!(
            replayed,
            (0..total).map(|i| (i, true)).collect::<Vec<_>>(),
            "replayed deliveries arrive in run order, flagged"
        );
        assert_eq!(resumed.replayed, total);
        assert_eq!(resumed.summary.to_csv(), report.summary.to_csv());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn raw_causes_round_trip_across_the_pool_channel() {
        let panic = RunError::Panic("worker went sideways".into());
        match RunError::from_raw_cause(panic.cause_raw()) {
            RunError::Panic(message) => assert_eq!(message, "worker went sideways"),
            RunError::Campaign(_) => panic!("panic cause must stay a panic"),
        }
        let structured = RunError::Campaign(CampaignError::Spec {
            run: "r".into(),
            message: "broken".into(),
        });
        match RunError::from_raw_cause(structured.cause_raw()) {
            RunError::Campaign(error) => assert!(error.to_string().contains("broken")),
            RunError::Panic(_) => panic!("structured cause must stay structured"),
        }
    }
}
