//! The campaign executor: fans whole runs out across the persistent
//! worker pool and streams results back in deterministic order.
//!
//! Execution has two phases:
//!
//! 1. **Normalization prelude** (when `CampaignSpec::normalize`): every
//!    distinct (benign workload, channel count) pair is run stand-alone
//!    under the no-mitigation baseline, producing the alone-IPC reference
//!    table the paper's multiprogrammed metrics divide by. The prelude
//!    runs sequentially — its values feed every run, so keeping it
//!    trivially order-independent keeps the whole campaign's output
//!    independent of the worker count.
//! 2. **The run matrix**: every [`RunSpec`], either on the calling
//!    thread (`workers <= 1`) or fanned out over a
//!    [`sim::WorkerPool`](sim::pool::WorkerPool) of `workers` persistent
//!    threads. Jobs are dispatched round-robin and collected strictly in
//!    run order, so outcomes stream back — and fold into the
//!    [`CampaignAggregator`] — in exactly the sequential order no matter
//!    which worker finishes first. Sequential and pooled execution of
//!    the same campaign therefore emit byte-identical CSV/JSON (pinned
//!    by `tests/tests/campaign_determinism.rs`).

use crate::aggregate::{CampaignAggregator, CampaignSummary};
use crate::runner::{run_spec, CampaignError, RunOutcome};
use crate::spec::{CampaignSpec, RunSpec, ThreadGenerator};
use sim::pool::WorkerPool;
use sim::{DefenseKind, SystemBuilder};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use workloads::SyntheticSpec;

/// Everything a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-run outcomes, in run order.
    pub outcomes: Vec<RunOutcome>,
    /// The aggregated summary (CSV/JSON-serializable).
    pub summary: CampaignSummary,
    /// Wall-clock duration of the whole execution (prelude + runs).
    pub wall: Duration,
    /// Worker threads used (0 = sequential on the calling thread).
    pub workers: usize,
}

impl CampaignReport {
    /// Executed runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        self.outcomes.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Per-run idle-skip accounting as CSV (one row per run, in run
    /// order): how much of each run's simulated time the event-driven
    /// advance loop skipped. Kept separate from
    /// [`CampaignSummary`](crate::CampaignSummary)'s CSV/JSON on purpose —
    /// those artifacts are pinned byte-identical across advance modes,
    /// while these counters are mode-dependent by construction.
    pub fn stepping_csv(&self) -> String {
        let mut csv = String::from(
            "index,name,defense,channels,total_cycles,cycles_simulated,\
             cycles_skipped,events_processed,largest_jump,skip_ratio\n",
        );
        for outcome in &self.outcomes {
            let s = &outcome.stepping;
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:.4}\n",
                outcome.index,
                outcome.name,
                outcome.defense,
                outcome.channels,
                outcome.total_cycles,
                s.cycles_simulated,
                s.cycles_skipped,
                s.events_processed,
                s.largest_jump,
                s.skip_ratio(),
            ));
        }
        csv
    }
}

/// A sensible default worker count for [`execute`] on this machine: all
/// available hardware threads minus one (keeping the calling/collecting
/// thread responsive), i.e. 0 — sequential — on a single-core machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
}

/// The stand-alone IPC reference of every distinct (benign workload,
/// channel count) pair appearing in `runs`, measured on the unprotected
/// baseline at the campaign's scale — the denominator of the paper's
/// weighted/harmonic speedups.
fn alone_ipc_table(campaign: &CampaignSpec, runs: &[RunSpec]) -> HashMap<(String, usize), f64> {
    // Deterministic job list: first-appearance order over the ordered
    // run list.
    let mut jobs: Vec<((String, usize), SyntheticSpec)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for run in runs {
        for thread in run.benign_threads() {
            let ThreadGenerator::Synthetic(spec) = &thread.generator else {
                continue;
            };
            let key = (thread.name.clone(), run.channels);
            if seen.insert(key.clone()) {
                jobs.push((key, spec.clone()));
            }
        }
    }
    let scale = campaign.scale;
    jobs.into_iter()
        .map(|((name, channels), spec)| {
            let result = SystemBuilder::new()
                .time_scale(scale.time_scale)
                .llc_capacity(scale.llc_bytes)
                .seed(campaign.seed)
                .max_cycles(scale.max_cycles)
                .min_cycles(scale.min_cycles)
                .channels(channels)
                .defense(DefenseKind::Baseline)
                .advance_mode(scale.advance)
                .add_workload(spec, scale.benign_instructions)
                .run();
            ((name, channels), result.threads[0].ipc)
        })
        .collect()
}

/// Fills every run's `alone_ipc` from the reference table.
fn attach_alone_ipc(
    runs: &mut [RunSpec],
    table: &HashMap<(String, usize), f64>,
) -> Result<(), CampaignError> {
    for run in runs.iter_mut() {
        let mut alone = Vec::with_capacity(run.threads.len());
        for thread in run.threads.iter().filter(|t| !t.is_attacker) {
            let key = (thread.name.clone(), run.channels);
            let Some(&ipc) = table.get(&key) else {
                return Err(CampaignError::Spec {
                    run: run.name.clone(),
                    message: format!("no stand-alone IPC reference for `{}`", thread.name),
                });
            };
            alone.push(ipc);
        }
        run.alone_ipc = alone;
    }
    Ok(())
}

/// Executes a prepared run list (see [`CampaignSpec::expand`] and
/// `record_run_traces`) and reduces it to a [`CampaignReport`].
///
/// `workers <= 1` executes sequentially on the calling thread; larger
/// values fan runs out over that many persistent worker threads. The
/// report — outcomes, aggregation and serialized summaries — is
/// byte-identical for every worker count.
///
/// # Errors
///
/// Fails on the first run that cannot execute (unreadable trace file,
/// inconsistent spec); queued work on other workers is discarded.
pub fn execute(
    campaign: &CampaignSpec,
    mut runs: Vec<RunSpec>,
    workers: usize,
) -> Result<CampaignReport, CampaignError> {
    // lint: allow(determinism) -- wall-clock duration is report metadata, never simulated state
    let started = Instant::now();
    if campaign.normalize {
        let table = alone_ipc_table(campaign, &runs);
        attach_alone_ipc(&mut runs, &table)?;
    }
    let total = runs.len();
    let mut aggregator = CampaignAggregator::new(campaign.name.clone());
    let mut outcomes = Vec::with_capacity(total);
    let mut deliver = |outcome: RunOutcome, outcomes: &mut Vec<RunOutcome>| {
        aggregator.absorb(&outcome);
        outcomes.push(outcome);
    };
    if workers <= 1 {
        for run in &runs {
            deliver(run_spec(run)?, &mut outcomes);
        }
    } else {
        let mut pool: WorkerPool<(), RunSpec, Result<RunOutcome, CampaignError>> =
            WorkerPool::new(workers, |(), run: &mut RunSpec| run_spec(run));
        let mut queue: std::collections::VecDeque<RunSpec> = runs.drain(..).collect();
        let mut dispatched = 0usize;
        let mut collected = 0usize;
        while collected < total {
            // Keep every worker fed, at most one queued job ahead each.
            while dispatched < total && dispatched - collected < 2 * workers {
                let Some(run) = queue.pop_front() else {
                    break;
                };
                pool.dispatch(dispatched % workers, (), run);
                dispatched += 1;
            }
            // Collect strictly in run order: run i always comes back from
            // slot i % workers, and each slot answers in dispatch order.
            let (_, result) = pool.collect(collected % workers);
            collected += 1;
            deliver(result?, &mut outcomes);
        }
    }
    Ok(CampaignReport {
        outcomes,
        summary: aggregator.finish(),
        wall: started.elapsed(),
        workers: if workers <= 1 { 0 } else { workers },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignSpec {
        let mut campaign = CampaignSpec::smoke();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 400;
        campaign.scale.min_cycles = 20_000;
        campaign
    }

    #[test]
    fn sequential_execution_produces_metrics_and_order() {
        let campaign = tiny_campaign();
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert_eq!(report.outcomes.len(), campaign.run_count());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert!(outcome.metrics.is_some(), "normalized campaign has metrics");
        }
        assert_eq!(report.summary.runs, campaign.run_count());
        assert!(report.runs_per_sec() > 0.0);
        // Every sweep point must have normalized metrics (Baseline is in
        // the defense axis).
        assert!(report.summary.points.iter().all(|p| p.normalized.is_some()));
    }

    #[test]
    fn normalization_can_be_disabled() {
        let mut campaign = tiny_campaign();
        campaign.normalize = false;
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert!(report.outcomes.iter().all(|o| o.metrics.is_none()));
        assert!(report.summary.points.iter().all(|p| p.metrics.is_none()));
    }

    #[test]
    fn missing_alone_reference_is_reported() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        // Give a benign thread a non-synthetic generator: the prelude
        // cannot measure a stand-alone IPC for it, which must surface as
        // an error, not a panic.
        let victim = runs
            .iter_mut()
            .flat_map(|r| r.threads.iter_mut())
            .find(|t| !t.is_attacker)
            .expect("a benign thread exists");
        victim.name = "not-a-workload".to_owned();
        victim.generator = ThreadGenerator::Attack(workloads::AttackKind::DoubleSided);
        match execute(&campaign, runs, 0) {
            Err(CampaignError::Spec { message, .. }) => {
                assert!(message.contains("not-a-workload"))
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }
}
