//! The campaign executor: fans whole runs out across the persistent
//! worker pool and streams results back in deterministic order.
//!
//! Execution has two phases:
//!
//! 1. **Normalization prelude** (when `CampaignSpec::normalize`): every
//!    distinct (benign workload, channel count) pair is run stand-alone
//!    under the no-mitigation baseline, producing the alone-IPC reference
//!    table the paper's multiprogrammed metrics divide by. The prelude
//!    runs sequentially — its values feed every run, so keeping it
//!    trivially order-independent keeps the whole campaign's output
//!    independent of the worker count.
//! 2. **The run matrix**: every [`RunSpec`], either on the calling
//!    thread (`workers <= 1`) or fanned out over a
//!    [`sim::WorkerPool`](sim::pool::WorkerPool) of `workers` persistent
//!    threads. Jobs are dispatched round-robin and collected strictly in
//!    run order, so outcomes stream back — and fold into the
//!    [`CampaignAggregator`] — in exactly the sequential order no matter
//!    which worker finishes first. Sequential and pooled execution of
//!    the same campaign therefore emit byte-identical CSV/JSON (pinned
//!    by `tests/tests/campaign_determinism.rs`).
//!
//! # Fault tolerance
//!
//! Every run executes behind an isolation boundary
//! (`catch_unwind`): a panicking run becomes a structured failure
//! instead of unwinding the campaign, and the configured
//! [`FailurePolicy`] decides what happens next — abort the campaign
//! with [`CampaignError::RunFailed`] (the default, today's behavior),
//! quarantine the run into the report's failure manifest (the
//! aggregator marks its sweep point degraded), or retry it up to a
//! bounded number of attempts before quarantining. In the pooled path
//! the executor keeps its own copy of every in-flight `RunSpec`, so
//! even a worker *thread* death (possible only for faults that bypass
//! the in-worker boundary) is survivable: the pool respawns the slot
//! ([`sim::pool::WorkerPool::collect_recovered`]) and the executor
//! resubmits the innocent jobs that died with it, preserving exact
//! delivery order.
//!
//! With [`ExecutionOptions::journal`] set, [`execute_resumable`] appends
//! each delivered result to an on-disk checkpoint journal
//! ([`crate::checkpoint`]) before moving on, and — when the journal
//! already holds finished runs for the *same* campaign — replays them
//! and re-runs only the tail. Because replayed outcomes feed the
//! aggregator in the same run order the original execution did, a
//! killed-and-resumed campaign emits byte-identical CSV/JSON to an
//! uninterrupted one (pinned by `tests/tests/kill_resume.rs`).

use crate::aggregate::{escape_json, CampaignAggregator, CampaignSummary};
use crate::checkpoint::{self, JournalEntry, JournalError, JournalWriter};
use crate::runner::{run_spec, CampaignError, FailedRun, RunOutcome};
use crate::spec::{CampaignSpec, RunSpec, ThreadGenerator};
use sim::pool::{Collected, WorkerPool};
use sim::{DefenseKind, SystemBuilder};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use workloads::SyntheticSpec;

/// What the executor does with a run that fails (panics inside the
/// simulator or returns an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop the campaign at the first failing run, surfacing it as
    /// [`CampaignError::RunFailed`]. Results delivered before the
    /// failure stay journaled (when a journal is configured), so an
    /// aborted campaign resumes past them.
    #[default]
    Abort,
    /// Skip the failing run: record it in the failure manifest
    /// ([`CampaignReport::failures`]), mark its sweep point degraded,
    /// and continue with the rest of the campaign.
    Quarantine,
    /// Re-run a failing run up to `max_attempts` total attempts
    /// (retries execute on the collecting thread, preserving delivery
    /// order); a run still failing after the last attempt is
    /// quarantined.
    Retry {
        /// Total attempts per run, counting the first (values 0 and 1
        /// mean no retries — equivalent to `Quarantine`).
        max_attempts: u32,
    },
}

/// Knobs of [`execute_resumable`] beyond the worker count.
#[derive(Debug, Clone, Default)]
pub struct ExecutionOptions {
    /// What to do with failing runs.
    pub policy: FailurePolicy,
    /// When set, every delivered result is appended to the checkpoint
    /// journal at this path (created on first use), and execution
    /// resumes after any runs the journal already holds.
    pub journal: Option<PathBuf>,
}

/// Everything a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-run outcomes of completed runs, in run order (quarantined
    /// runs are absent here and present in `failures`).
    pub outcomes: Vec<RunOutcome>,
    /// Quarantined runs, in run order — the failure manifest
    /// (serializable via [`CampaignReport::failures_csv`] /
    /// [`CampaignReport::failures_json`]).
    pub failures: Vec<FailedRun>,
    /// How many of the delivered results were replayed from the
    /// checkpoint journal instead of executed in this invocation.
    pub replayed: usize,
    /// The aggregated summary (CSV/JSON-serializable).
    pub summary: CampaignSummary,
    /// Wall-clock duration of the whole execution (prelude + runs).
    pub wall: Duration,
    /// Worker threads used (0 = sequential on the calling thread).
    pub workers: usize,
}

impl CampaignReport {
    /// Freshly executed runs (completed or quarantined) per wall-clock
    /// second, or `None` when this invocation executed nothing — an
    /// empty campaign, or a resume that found every run already
    /// journaled. (Replayed results are excluded: reading a journal
    /// record is not executing a run, and counting it would report a
    /// fantasy rate.)
    pub fn runs_per_sec(&self) -> Option<f64> {
        let executed = (self.outcomes.len() + self.failures.len()).saturating_sub(self.replayed);
        if executed == 0 {
            return None;
        }
        Some(executed as f64 / self.wall.as_secs_f64().max(1e-9))
    }

    /// The failure manifest as CSV (one row per quarantined run, in run
    /// order; the cause field is quoted since panic messages contain
    /// commas).
    pub fn failures_csv(&self) -> String {
        let mut csv = String::from("index,name,scenario,defense,n_rh,channels,attempts,cause\n");
        for f in &self.failures {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},\"{}\"\n",
                f.index,
                f.name,
                f.scenario,
                f.defense,
                f.n_rh,
                f.channels,
                f.attempts,
                f.cause.replace('"', "\"\"").replace('\n', " "),
            ));
        }
        csv
    }

    /// The failure manifest as a JSON array document.
    pub fn failures_json(&self) -> String {
        let mut out = String::from("{\n  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\": {}, \"name\": \"{}\", \"scenario\": \"{}\", \
                 \"defense\": \"{}\", \"n_rh\": {}, \"channels\": {}, \
                 \"attempts\": {}, \"cause\": \"{}\"}}{}\n",
                f.index,
                escape_json(&f.name),
                escape_json(&f.scenario),
                escape_json(&f.defense),
                f.n_rh,
                f.channels,
                f.attempts,
                escape_json(&f.cause),
                if i + 1 < self.failures.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Per-run idle-skip accounting as CSV (one row per run, in run
    /// order): how much of each run's simulated time the event-driven
    /// advance loop skipped. Kept separate from
    /// [`CampaignSummary`](crate::CampaignSummary)'s CSV/JSON on purpose —
    /// those artifacts are pinned byte-identical across advance modes,
    /// while these counters are mode-dependent by construction.
    pub fn stepping_csv(&self) -> String {
        let mut csv = String::from(
            "index,name,defense,channels,total_cycles,cycles_simulated,\
             cycles_skipped,events_processed,largest_jump,skip_ratio\n",
        );
        for outcome in &self.outcomes {
            let s = &outcome.stepping;
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:.4}\n",
                outcome.index,
                outcome.name,
                outcome.defense,
                outcome.channels,
                outcome.total_cycles,
                s.cycles_simulated,
                s.cycles_skipped,
                s.events_processed,
                s.largest_jump,
                s.skip_ratio(),
            ));
        }
        csv
    }
}

/// A sensible default worker count for [`execute`] on this machine: all
/// available hardware threads minus one (keeping the calling/collecting
/// thread responsive), i.e. 0 — sequential — on a single-core machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
}

/// The stand-alone IPC reference of every distinct (benign workload,
/// channel count) pair appearing in `runs`, measured on the unprotected
/// baseline at the campaign's scale — the denominator of the paper's
/// weighted/harmonic speedups.
fn alone_ipc_table(campaign: &CampaignSpec, runs: &[RunSpec]) -> HashMap<(String, usize), f64> {
    // Deterministic job list: first-appearance order over the ordered
    // run list.
    let mut jobs: Vec<((String, usize), SyntheticSpec)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for run in runs {
        for thread in run.benign_threads() {
            let ThreadGenerator::Synthetic(spec) = &thread.generator else {
                continue;
            };
            let key = (thread.name.clone(), run.channels);
            if seen.insert(key.clone()) {
                jobs.push((key, spec.clone()));
            }
        }
    }
    let scale = campaign.scale;
    jobs.into_iter()
        .map(|((name, channels), spec)| {
            let result = SystemBuilder::new()
                .time_scale(scale.time_scale)
                .llc_capacity(scale.llc_bytes)
                .seed(campaign.seed)
                .max_cycles(scale.max_cycles)
                .min_cycles(scale.min_cycles)
                .channels(channels)
                .defense(DefenseKind::Baseline)
                .advance_mode(scale.advance)
                .add_workload(spec, scale.benign_instructions)
                .run();
            ((name, channels), result.threads[0].ipc)
        })
        .collect()
}

/// Fills every run's `alone_ipc` from the reference table.
fn attach_alone_ipc(
    runs: &mut [RunSpec],
    table: &HashMap<(String, usize), f64>,
) -> Result<(), CampaignError> {
    for run in runs.iter_mut() {
        let mut alone = Vec::with_capacity(run.threads.len());
        for thread in run.threads.iter().filter(|t| !t.is_attacker) {
            let key = (thread.name.clone(), run.channels);
            let Some(&ipc) = table.get(&key) else {
                return Err(CampaignError::Spec {
                    run: run.name.clone(),
                    message: format!("no stand-alone IPC reference for `{}`", thread.name),
                });
            };
            alone.push(ipc);
        }
        run.alone_ipc = alone;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Run isolation
// ---------------------------------------------------------------------------

/// How a single run attempt failed behind the isolation boundary.
enum RunError {
    /// The run returned a structured error.
    Campaign(CampaignError),
    /// The run panicked; the payload was converted to its message.
    Panic(String),
}

impl RunError {
    /// The failure as a one-line cause for manifests and journals.
    fn cause(&self) -> String {
        match self {
            RunError::Campaign(error) => error.to_string(),
            RunError::Panic(message) => format!("panicked: {message}"),
        }
    }
}

/// Best-effort rendering of a panic payload.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Executes one run behind the isolation boundary: a panic anywhere in
/// the simulator comes back as a [`RunError::Panic`] instead of
/// unwinding the executor (or a pool worker).
fn run_isolated(spec: &RunSpec) -> Result<RunOutcome, RunError> {
    match catch_unwind(AssertUnwindSafe(|| run_spec(spec))) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(error)) => Err(RunError::Campaign(error)),
        Err(payload) => Err(RunError::Panic(panic_cause(payload))),
    }
}

/// What one run ultimately delivered after the failure policy had its
/// say.
enum Delivery {
    /// The run completed (possibly after retries).
    Outcome(RunOutcome),
    /// The run was quarantined.
    Failure(FailedRun),
}

/// Applies the failure policy to a run's first-attempt result,
/// performing any retries synchronously on the calling thread (the
/// collector), so delivery order never depends on retry timing.
fn resolve(
    spec: &RunSpec,
    first: Result<RunOutcome, RunError>,
    policy: FailurePolicy,
) -> Result<Delivery, CampaignError> {
    let first_error = match first {
        Ok(outcome) => return Ok(Delivery::Outcome(outcome)),
        Err(error) => error,
    };
    match policy {
        FailurePolicy::Abort => Err(match first_error {
            RunError::Campaign(error) => error,
            RunError::Panic(message) => CampaignError::RunFailed {
                index: spec.index,
                run: spec.name.clone(),
                cause: format!("panicked: {message}"),
            },
        }),
        FailurePolicy::Quarantine => Ok(Delivery::Failure(FailedRun::new(
            spec,
            1,
            first_error.cause(),
        ))),
        FailurePolicy::Retry { max_attempts } => {
            let mut attempts = 1u32;
            let mut last_error = first_error;
            while attempts < max_attempts {
                attempts += 1;
                match run_isolated(spec) {
                    Ok(outcome) => return Ok(Delivery::Outcome(outcome)),
                    Err(error) => last_error = error,
                }
            }
            Ok(Delivery::Failure(FailedRun::new(
                spec,
                attempts,
                last_error.cause(),
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Delivery sink: aggregation + journaling in one place
// ---------------------------------------------------------------------------

/// Collects deliveries in run order, journaling each (fresh ones only)
/// before folding it into the aggregator — so anything the aggregator
/// saw is durable, and a crash between the two replays identically. The
/// observer fires on every absorbed entry (replayed and fresh alike),
/// *after* the journal append, so a subscriber never sees a result that
/// would vanish on a crash.
struct Sink<'a> {
    aggregator: CampaignAggregator,
    outcomes: Vec<RunOutcome>,
    failures: Vec<FailedRun>,
    writer: Option<JournalWriter>,
    observer: DeliveryObserver<'a>,
}

impl Sink<'_> {
    fn absorb(&mut self, entry: JournalEntry, replayed: bool) {
        (self.observer)(&entry, replayed);
        match entry {
            JournalEntry::Outcome(outcome) => {
                self.aggregator.absorb(&outcome);
                self.outcomes.push(outcome);
            }
            JournalEntry::Failure(failure) => {
                self.aggregator.absorb_failure(&failure);
                self.failures.push(failure);
            }
        }
    }

    fn deliver(&mut self, delivery: Delivery) -> Result<(), CampaignError> {
        let entry = match delivery {
            Delivery::Outcome(outcome) => JournalEntry::Outcome(outcome),
            Delivery::Failure(failure) => JournalEntry::Failure(failure),
        };
        if let Some(writer) = &mut self.writer {
            writer
                .append(&entry)
                .map_err(|e| CampaignError::Checkpoint {
                    error: JournalError::Io(e),
                })?;
        }
        self.absorb(entry, false);
        Ok(())
    }
}

/// Validates that journal entries actually describe the head of this
/// campaign's run list (belt to the fingerprint's braces: the journal
/// header already pinned the spec, this pins the expansion).
fn check_replay(entries: &[JournalEntry], runs: &[RunSpec]) -> Result<(), CampaignError> {
    let mismatch = |message: String| CampaignError::Checkpoint {
        error: JournalError::SpecMismatch { message },
    };
    if entries.len() > runs.len() {
        return Err(mismatch(format!(
            "journal holds {} finished runs for a {}-run campaign",
            entries.len(),
            runs.len()
        )));
    }
    for (position, entry) in entries.iter().enumerate() {
        let run = &runs[position];
        if entry.name() != run.name {
            return Err(mismatch(format!(
                "journaled run {position} is `{}`, campaign expects `{}`",
                entry.name(),
                run.name
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Executes a prepared run list (see [`CampaignSpec::expand`] and
/// `record_run_traces`) and reduces it to a [`CampaignReport`], with
/// default options: [`FailurePolicy::Abort`] and no checkpoint journal.
///
/// `workers <= 1` executes sequentially on the calling thread; larger
/// values fan runs out over that many persistent worker threads. The
/// report — outcomes, aggregation and serialized summaries — is
/// byte-identical for every worker count.
///
/// # Errors
///
/// Fails on the first run that cannot execute (unreadable trace file,
/// inconsistent spec, panic inside the simulator); queued work on other
/// workers is discarded.
pub fn execute(
    campaign: &CampaignSpec,
    runs: Vec<RunSpec>,
    workers: usize,
) -> Result<CampaignReport, CampaignError> {
    execute_resumable(campaign, runs, workers, &ExecutionOptions::default())
}

/// [`execute`] with explicit failure handling and checkpoint/resume.
///
/// When `options.journal` is set, each delivered result is appended to
/// the journal before the campaign moves on; re-invoking with the same
/// spec and journal path replays the finished prefix (skipping even the
/// normalization prelude when nothing is left to run) and executes only
/// the tail. Replayed results flow through the aggregator in their
/// original run order, so an interrupted-and-resumed campaign reports
/// byte-identical CSV/JSON to an uninterrupted one.
///
/// # Errors
///
/// * [`CampaignError::Checkpoint`] if the journal cannot be opened,
///   belongs to a different campaign, or cannot be appended to;
/// * under [`FailurePolicy::Abort`], the first failing run as
///   [`CampaignError::RunFailed`] (or its structured error);
/// * run-independent setup failures (e.g. a missing stand-alone IPC
///   reference) regardless of policy.
pub fn execute_resumable(
    campaign: &CampaignSpec,
    runs: Vec<RunSpec>,
    workers: usize,
    options: &ExecutionOptions,
) -> Result<CampaignReport, CampaignError> {
    execute_observed(campaign, runs, workers, options, &mut |_, _| {})
}

/// A result-delivery subscriber for [`execute_observed`]: called with
/// every delivered entry in campaign run order; the `bool` marks entries
/// replayed from the checkpoint journal (as opposed to executed by this
/// invocation).
pub type DeliveryObserver<'a> = &'a mut dyn FnMut(&JournalEntry, bool);

/// [`execute_resumable`] with a result-delivery subscriber: `observer`
/// fires once per delivered run result, in run order, for replayed and
/// freshly-executed results alike — which is how the campaign server
/// streams per-run NDJSON records to clients without buffering whole
/// reports. When a journal is configured the observer fires only *after*
/// the entry is durably appended, so a subscriber never observes a
/// result a crash could take back; on resume, the journal's replayed
/// prefix is observed first (flagged `replayed = true`), giving a
/// late-attaching subscriber the complete result history.
///
/// # Errors
///
/// Exactly [`execute_resumable`]'s.
pub fn execute_observed(
    campaign: &CampaignSpec,
    mut runs: Vec<RunSpec>,
    workers: usize,
    options: &ExecutionOptions,
    observer: DeliveryObserver<'_>,
) -> Result<CampaignReport, CampaignError> {
    // lint: allow(determinism) -- wall-clock duration is report metadata, never simulated state
    let started = Instant::now();
    let total = runs.len();
    let (replay, writer) = match &options.journal {
        Some(path) => {
            let resumed = checkpoint::resume_or_create(
                path,
                checkpoint::fingerprint(campaign),
                total as u64,
            )?;
            check_replay(&resumed.entries, &runs)?;
            (resumed.entries, Some(resumed.writer))
        }
        None => (Vec::new(), None),
    };
    let replayed = replay.len();
    // The prelude feeds only runs that will actually execute; a resume
    // with nothing left to do (or an unnormalized campaign) skips it.
    if campaign.normalize && replayed < total {
        let table = alone_ipc_table(campaign, &runs);
        attach_alone_ipc(&mut runs, &table)?;
    }
    let mut sink = Sink {
        aggregator: CampaignAggregator::new(campaign.name.clone()),
        outcomes: Vec::with_capacity(total),
        failures: Vec::new(),
        writer,
        observer,
    };
    for entry in replay {
        sink.absorb(entry, true);
    }
    let tail: Vec<RunSpec> = runs.split_off(replayed);
    drop(runs);
    if workers <= 1 {
        for run in &tail {
            let delivery = resolve(run, run_isolated(run), options.policy)?;
            sink.deliver(delivery)?;
        }
    } else {
        execute_pooled(tail, workers, options.policy, &mut sink)?;
    }
    Ok(CampaignReport {
        outcomes: sink.outcomes,
        failures: sink.failures,
        replayed,
        summary: sink.aggregator.finish(),
        wall: started.elapsed(),
        workers: if workers <= 1 { 0 } else { workers },
    })
}

/// The pooled run loop: round-robin dispatch, strict run-order
/// collection, and slot-level recovery when a worker thread dies.
fn execute_pooled(
    tail: Vec<RunSpec>,
    workers: usize,
    policy: FailurePolicy,
    sink: &mut Sink<'_>,
) -> Result<(), CampaignError> {
    let total = tail.len();
    let mut pool: WorkerPool<(), RunSpec, Result<RunOutcome, String>> =
        WorkerPool::new(workers, |(), run: &mut RunSpec| {
            // The isolation boundary lives *inside* the worker: a
            // panicking run reports back as data and the worker thread
            // survives to take the next job. (Panic payloads are
            // flattened to strings here because `RunError` itself need
            // not cross threads.)
            run_isolated(run).map_err(|error| error.cause_raw())
        });
    // The executor's own copy of everything currently inside the pool,
    // per slot in dispatch order — what makes a dead worker's jobs
    // resubmittable.
    let mut inflight: Vec<VecDeque<RunSpec>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut queue: VecDeque<RunSpec> = tail.into();
    let mut dispatched = 0usize;
    let mut collected = 0usize;
    while collected < total {
        // Keep every worker fed, at most one queued job ahead each.
        while dispatched < total && dispatched - collected < 2 * workers {
            let Some(run) = queue.pop_front() else {
                break;
            };
            let slot = dispatched % workers;
            inflight[slot].push_back(run.clone());
            pool.dispatch(slot, (), run);
            dispatched += 1;
        }
        // Collect strictly in run order: run i always comes back from
        // slot i % workers, and each slot answers in dispatch order.
        let slot = collected % workers;
        match pool.collect_recovered(slot) {
            Collected::Done(run, result) => {
                inflight[slot].pop_front();
                let first = result.map_err(RunError::from_raw_cause);
                let delivery = resolve(&run, first, policy)?;
                sink.deliver(delivery)?;
                collected += 1;
            }
            Collected::Lost {
                message,
                lost_jobs,
                parked,
            } => {
                // The slot's oldest outstanding job — exactly run
                // `collected` — died with the worker; everything else it
                // held (later lost jobs, then parked jobs) was innocent
                // and is resubmitted to the respawned slot in its
                // original dispatch order.
                let mut held: Vec<RunSpec> = inflight[slot].drain(..).collect();
                if held.len() != lost_jobs + parked.len() || held.is_empty() {
                    return Err(CampaignError::Spec {
                        run: format!("worker slot {slot}"),
                        message: format!(
                            "pool recovery bookkeeping diverged: {} in-flight copies for \
                             {lost_jobs} lost + {} parked jobs ({message})",
                            held.len(),
                            parked.len()
                        ),
                    });
                }
                let failed = held.remove(0);
                let delivery = resolve(&failed, Err(RunError::Panic(message)), policy)?;
                sink.deliver(delivery)?;
                collected += 1;
                for run in held {
                    inflight[slot].push_back(run.clone());
                    pool.dispatch(slot, (), run);
                }
            }
        }
    }
    Ok(())
}

impl RunError {
    /// The raw cause string a pool worker reported (see
    /// [`RunError::cause_raw`]), restored to a `RunError`.
    fn from_raw_cause(raw: String) -> Self {
        match raw.strip_prefix("panicked: ") {
            Some(message) => RunError::Panic(message.to_owned()),
            None => RunError::Campaign(CampaignError::RunFailed {
                index: 0,
                run: String::new(),
                cause: raw,
            }),
        }
    }

    /// Flattens the error to the string form that crosses the pool's
    /// result channel. Structured campaign errors under `Abort` are
    /// rebuilt by [`resolve`] with the run's identity, so only the
    /// cause text needs to survive the crossing.
    fn cause_raw(&self) -> String {
        match self {
            RunError::Campaign(error) => error.to_string(),
            RunError::Panic(message) => format!("panicked: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SteppingStats;

    fn tiny_campaign() -> CampaignSpec {
        let mut campaign = CampaignSpec::smoke();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 400;
        campaign.scale.min_cycles = 20_000;
        campaign
    }

    #[test]
    fn sequential_execution_produces_metrics_and_order() {
        let campaign = tiny_campaign();
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert_eq!(report.outcomes.len(), campaign.run_count());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert!(outcome.metrics.is_some(), "normalized campaign has metrics");
        }
        assert_eq!(report.summary.runs, campaign.run_count());
        assert!(report.failures.is_empty());
        assert_eq!(report.replayed, 0);
        assert!(report.runs_per_sec().is_some_and(|rate| rate > 0.0));
        // Every sweep point must have normalized metrics (Baseline is in
        // the defense axis).
        assert!(report.summary.points.iter().all(|p| p.normalized.is_some()));
    }

    #[test]
    fn zero_executed_runs_report_no_rate() {
        let report = CampaignReport {
            outcomes: Vec::new(),
            failures: Vec::new(),
            replayed: 0,
            summary: CampaignAggregator::new("empty").finish(),
            wall: Duration::ZERO,
            workers: 0,
        };
        assert_eq!(report.runs_per_sec(), None);
        // A fully-replayed resume also executed nothing.
        let replayed = CampaignReport {
            replayed: 1,
            outcomes: vec![RunOutcome {
                index: 0,
                name: "r".into(),
                scenario: "attack".into(),
                defense: "Baseline".into(),
                n_rh: 1,
                channels: 1,
                total_cycles: 1,
                activations: 0,
                dram_energy_j: 0.0,
                threads: Vec::new(),
                metrics: None,
                stepping: SteppingStats::default(),
            }],
            failures: Vec::new(),
            summary: CampaignAggregator::new("replayed").finish(),
            wall: Duration::from_millis(5),
            workers: 0,
        };
        assert_eq!(replayed.runs_per_sec(), None);
    }

    #[test]
    fn failure_manifest_serializations_quote_causes() {
        let report = CampaignReport {
            outcomes: Vec::new(),
            failures: vec![FailedRun {
                index: 3,
                name: "mix-003/Para/nrh32768/ch1".into(),
                scenario: "attack".into(),
                defense: "Para".into(),
                n_rh: 32_768,
                channels: 1,
                attempts: 2,
                cause: "panicked: index 4, len 4, with \"quotes\"".into(),
            }],
            replayed: 0,
            summary: CampaignAggregator::new("t").finish(),
            wall: Duration::ZERO,
            workers: 0,
        };
        let csv = report.failures_csv();
        assert!(csv.starts_with("index,name,scenario,defense,"));
        assert!(csv.contains("\"panicked: index 4, len 4, with \"\"quotes\"\"\""));
        let json = report.failures_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn normalization_can_be_disabled() {
        let mut campaign = tiny_campaign();
        campaign.normalize = false;
        let report = execute(&campaign, campaign.expand(), 0).expect("campaign runs");
        assert!(report.outcomes.iter().all(|o| o.metrics.is_none()));
        assert!(report.summary.points.iter().all(|p| p.metrics.is_none()));
    }

    #[test]
    fn missing_alone_reference_is_reported() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        // Give a benign thread a non-synthetic generator: the prelude
        // cannot measure a stand-alone IPC for it, which must surface as
        // an error, not a panic.
        let victim = runs
            .iter_mut()
            .flat_map(|r| r.threads.iter_mut())
            .find(|t| !t.is_attacker)
            .expect("a benign thread exists");
        victim.name = "not-a-workload".to_owned();
        victim.generator = ThreadGenerator::Attack(workloads::AttackKind::DoubleSided);
        match execute(&campaign, runs, 0) {
            Err(CampaignError::Spec { message, .. }) => {
                assert!(message.contains("not-a-workload"))
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn a_failing_run_aborts_by_default_with_its_identity() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        // A benign thread pointing at a missing trace file fails its run.
        runs[1].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        match execute(&campaign, runs, 0) {
            Err(CampaignError::Trace { run, .. }) => assert!(run.contains('/')),
            other => panic!("expected the structured trace error, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_completes_the_campaign_and_flags_the_point() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        let total = runs.len();
        runs[1].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        let victim_name = runs[1].name.clone();
        let options = ExecutionOptions {
            policy: FailurePolicy::Quarantine,
            journal: None,
        };
        let report = execute_resumable(&campaign, runs, 0, &options).expect("campaign completes");
        assert_eq!(report.outcomes.len(), total - 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].name, victim_name);
        assert_eq!(report.failures[0].attempts, 1);
        assert_eq!(report.summary.failed, 1);
        assert!(report.summary.is_degraded());
        assert_eq!(
            report
                .summary
                .points
                .iter()
                .map(|p| p.failed_runs)
                .sum::<usize>(),
            1
        );
        assert!(report.failures_csv().contains(&victim_name));
    }

    #[test]
    fn retry_exhaustion_quarantines_with_the_attempt_count() {
        let campaign = tiny_campaign();
        let mut runs = campaign.expand();
        runs[0].threads[0].trace = Some(crate::trace::TraceSource {
            path: PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        let options = ExecutionOptions {
            policy: FailurePolicy::Retry { max_attempts: 3 },
            journal: None,
        };
        let report = execute_resumable(&campaign, runs, 0, &options).expect("campaign completes");
        assert_eq!(
            report.failures.len(),
            1,
            "a permanent fault exhausts retries"
        );
        assert_eq!(report.failures[0].attempts, 3);
    }

    #[test]
    fn observer_sees_every_delivery_in_run_order_with_replay_flags() {
        let campaign = tiny_campaign();
        let dir = std::env::temp_dir().join(format!("bh-observer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let journal = dir.join("observer.journal");
        let _ = std::fs::remove_file(&journal);
        let options = ExecutionOptions {
            policy: FailurePolicy::Abort,
            journal: Some(journal.clone()),
        };
        let total = campaign.run_count();
        // Fresh execution: every delivery observed in run order, none
        // flagged as replayed.
        let mut seen: Vec<(usize, bool)> = Vec::new();
        let report = execute_observed(&campaign, campaign.expand(), 0, &options, &mut |e, r| {
            seen.push((e.index(), r));
        })
        .expect("campaign runs");
        assert_eq!(
            seen,
            (0..total).map(|i| (i, false)).collect::<Vec<_>>(),
            "fresh deliveries arrive in run order, unflagged"
        );
        // Resume over the complete journal: the same history replays to a
        // late-attaching observer, now flagged.
        let mut replayed: Vec<(usize, bool)> = Vec::new();
        let resumed = execute_observed(&campaign, campaign.expand(), 0, &options, &mut |e, r| {
            replayed.push((e.index(), r));
        })
        .expect("resume runs");
        assert_eq!(
            replayed,
            (0..total).map(|i| (i, true)).collect::<Vec<_>>(),
            "replayed deliveries arrive in run order, flagged"
        );
        assert_eq!(resumed.replayed, total);
        assert_eq!(resumed.summary.to_csv(), report.summary.to_csv());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn raw_causes_round_trip_across_the_pool_channel() {
        let panic = RunError::Panic("worker went sideways".into());
        match RunError::from_raw_cause(panic.cause_raw()) {
            RunError::Panic(message) => assert_eq!(message, "worker went sideways"),
            RunError::Campaign(_) => panic!("panic cause must stay a panic"),
        }
        let structured = RunError::Campaign(CampaignError::Spec {
            run: "r".into(),
            message: "broken".into(),
        });
        match RunError::from_raw_cause(structured.cause_raw()) {
            RunError::Campaign(error) => assert!(error.to_string().contains("broken")),
            RunError::Panic(_) => panic!("structured cause must stay structured"),
        }
    }
}
