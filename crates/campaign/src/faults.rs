//! Deterministic fault injection for exercising campaign recovery paths.
//!
//! Real campaign failures — a panicking run, a trace file that stops
//! being readable, a process killed between journal appends — are rare
//! and timing-dependent, so the recovery machinery they exercise would
//! otherwise go untested. This module plants explicit, deterministic
//! hooks at the three fault boundaries:
//!
//! * [`before_run`]: panic on a chosen run index (optionally only for
//!   its first N attempts, so `FailurePolicy::Retry` paths can observe a
//!   *transient* fault);
//! * [`before_trace_open`]: fail the next N trace-file opens with an
//!   injected I/O error;
//! * [`after_journal_append`]: abort the process (or stall it, so a test
//!   can deliver a real kill signal) once the checkpoint journal holds a
//!   chosen number of records.
//!
//! Everything here is compiled only under the `fault-injection` cargo
//! feature; without it the hooks are empty inline functions, so release
//! hot paths carry no cost and no injectable state. With the feature on,
//! faults are armed per-process through a global plan ([`arm`] /
//! [`disarm`]) — tests that arm faults must serialize on a lock of
//! their own, since the plan is process-wide.

#[cfg(feature = "fault-injection")]
use std::sync::Mutex;

/// Which faults to inject, armed process-wide via [`arm`]. The default
/// plan injects nothing.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic inside the run with this campaign index, but only for its
    /// first `attempts` executions — `(index, u32::MAX)` makes the fault
    /// permanent, `(index, 1)` makes it transient (the first retry
    /// succeeds).
    pub panic_on_run: Option<(usize, u32)>,
    /// Fail this many trace-file opens (across all runs, in open order)
    /// with an injected I/O error before letting opens through again.
    pub trace_open_failures: u32,
    /// Abort the process (no unwinding, no destructors — as close to a
    /// kill as an in-process fault gets) once the journal has this many
    /// records.
    pub abort_after_journal_records: Option<u64>,
    /// Stall the campaign indefinitely once the journal has this many
    /// records, so an external test can deliver a *real* process kill at
    /// a deterministic journal state.
    pub stall_after_journal_records: Option<u64>,
}

#[cfg(feature = "fault-injection")]
#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    run_panics_injected: u32,
    trace_failures_injected: u32,
}

#[cfg(feature = "fault-injection")]
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

#[cfg(feature = "fault-injection")]
fn with_state<T>(f: impl FnOnce(&mut Option<FaultState>) -> T) -> T {
    // A panic while holding the lock (before_run injects one) poisons
    // it; later faults must keep working, so take the inner value.
    let mut guard = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(&mut guard)
}

/// Arms `plan` for the whole process, replacing any previous plan and
/// resetting injection counters.
#[cfg(feature = "fault-injection")]
pub fn arm(plan: FaultPlan) {
    with_state(|state| {
        *state = Some(FaultState {
            plan,
            run_panics_injected: 0,
            trace_failures_injected: 0,
        });
    });
}

/// Disarms all faults.
#[cfg(feature = "fault-injection")]
pub fn disarm() {
    with_state(|state| *state = None);
}

/// Hook: called at the top of every run execution (every attempt).
#[cfg(feature = "fault-injection")]
pub(crate) fn before_run(index: usize) {
    let fire = with_state(|state| {
        let Some(state) = state.as_mut() else {
            return false;
        };
        let Some((target, attempts)) = state.plan.panic_on_run else {
            return false;
        };
        if target == index && state.run_panics_injected < attempts {
            state.run_panics_injected += 1;
            return true;
        }
        false
    });
    if fire {
        // lint: allow(panic-freedom) -- the whole point: a deliberate injected fault for recovery tests
        panic!("injected fault: run {index} panicked on purpose");
    }
}

/// Hook: called before every trace-file open; `Some` is the injected
/// failure the open must return instead of touching the file.
#[cfg(feature = "fault-injection")]
pub(crate) fn before_trace_open(path: &std::path::Path) -> Option<std::io::Error> {
    with_state(|state| {
        let state = state.as_mut()?;
        if state.trace_failures_injected < state.plan.trace_open_failures {
            state.trace_failures_injected += 1;
            return Some(std::io::Error::other(format!(
                "injected trace I/O fault opening {}",
                path.display()
            )));
        }
        None
    })
}

/// Hook: called after every checkpoint journal append with the record
/// count now durable. May abort or stall the process per the plan.
#[cfg(feature = "fault-injection")]
pub(crate) fn after_journal_append(records: u64) {
    let (abort, stall) = with_state(|state| {
        let Some(state) = state.as_ref() else {
            return (false, false);
        };
        (
            state.plan.abort_after_journal_records == Some(records),
            state.plan.stall_after_journal_records == Some(records),
        )
    });
    if abort {
        // No unwinding, no Drop, no flushes beyond what already happened:
        // the closest in-process stand-in for `kill -9`.
        std::process::abort();
    }
    if stall {
        // Park forever so an external test can kill this process at a
        // deterministic journal state.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
pub(crate) fn before_run(_index: usize) {}

#[cfg(not(feature = "fault-injection"))]
pub(crate) fn before_trace_open(_path: &std::path::Path) -> Option<std::io::Error> {
    None
}

#[cfg(not(feature = "fault-injection"))]
pub(crate) fn after_journal_append(_records: u64) {}
