//! Atomic campaign artifact writes.
//!
//! Campaign outputs (summary CSV/JSON, stepping reports, failure
//! manifests, recorded traces) are the things an operator trusts after a
//! crash, so none of them may ever be observable half-written: a torn
//! `campaign.csv` parses as a *short but valid* campaign and silently
//! misreports the sweep. Every artifact therefore goes to a temporary
//! sibling first and is renamed into place — on POSIX systems the rename
//! is atomic, so any observer sees either the old file or the complete
//! new one, never a prefix.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The temporary sibling `path` is staged through before the atomic
/// rename. Kept in the destination directory (renames across mount
/// points are not atomic) and keyed by process id so concurrent writers
/// of *different* campaigns in a shared directory do not trample each
/// other's staging files.
pub(crate) fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling which is flushed and renamed over `path`, creating parent
/// directories as needed. A process killed at any point leaves either
/// the previous file intact or (at worst) a stray `*.tmp-<pid>` staging
/// file — never a torn artifact under the real name.
///
/// # Errors
///
/// Propagates file-system errors; the staging file is removed on failure.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let staging = staging_path(path);
    let staged = std::fs::File::create(&staging)
        .and_then(|mut file| {
            file.write_all(contents.as_ref())?;
            file.flush()
        })
        .and_then(|()| std::fs::rename(&staging, path));
    if staged.is_err() {
        let _ = std::fs::remove_file(&staging);
    }
    staged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bh-artifacts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn writes_and_overwrites_complete_contents() {
        let path = scratch("atomic.txt");
        write_atomic(&path, "first").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "first");
        write_atomic(&path, "second, longer contents").expect("second write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "second, longer contents"
        );
    }

    #[test]
    fn creates_missing_parent_directories() {
        let path = scratch("nested").join("deeper/atomic.txt");
        write_atomic(&path, "x").expect("nested write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "x");
    }

    #[test]
    fn leaves_no_staging_file_behind() {
        let path = scratch("clean.txt");
        write_atomic(&path, "y").expect("write");
        assert!(!staging_path(&path).exists());
    }

    #[test]
    fn staging_sibling_stays_in_the_destination_directory() {
        let staging = staging_path(Path::new("a/b/c.csv"));
        assert_eq!(staging.parent(), Some(Path::new("a/b")));
        let name = staging.file_name().and_then(|n| n.to_str()).expect("name");
        assert!(name.starts_with("c.csv.tmp-"), "got: {name}");
    }
}
