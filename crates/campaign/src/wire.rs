//! Wire formats for campaign-as-a-service: JSON campaign specs and
//! NDJSON result records.
//!
//! The campaign server (`crates/server`) accepts [`CampaignSpec`]s over
//! HTTP and streams per-run results back, so both directions need a
//! textual encoding whose round-trip is *exact*: a spec serialized with
//! [`spec_to_json`] and parsed back with [`spec_from_json`] must compare
//! equal and — the property resume correctness hangs on — produce the
//! same [`checkpoint::fingerprint`](crate::checkpoint::fingerprint), or
//! a submitted campaign could silently resume a different sweep's
//! journal. `tests/tests/spec_wire.rs` pins the round-trip by property.
//!
//! The parser ([`parse_json`]) is deliberately strict where general JSON
//! parsers are lenient: duplicate object keys, unknown spec fields,
//! numbers that overflow their target type, and trailing input are all
//! hard errors — a campaign spec is an experiment description, and the
//! server must refuse anything it would have to guess about. No external
//! dependencies: like the repo's trace and journal codecs, the format is
//! hand-rolled on `std`.

use crate::checkpoint::JournalEntry;
use crate::runner::{FailedRun, RunOutcome, ThreadOutcome};
use crate::spec::{CampaignSpec, RunScale, Scenario};
use sim::{AdvanceMode, DefenseKind};
use std::fmt;

pub(crate) use crate::aggregate::escape_json;

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters) — the same escaping every JSON
/// artifact in this crate uses, exported for the campaign server's
/// status documents.
pub fn escape(s: &str) -> String {
    escape_json(s)
}

/// Upper bound on a campaign name accepted over the wire (bytes).
pub const MAX_NAME_BYTES: usize = 256;
/// Upper bound on each sweep axis accepted over the wire (points).
pub const MAX_AXIS_POINTS: usize = 64;
/// Upper bound on `mix_count` accepted over the wire.
pub const MAX_MIX_COUNT: usize = 4096;
/// Upper bound on `threads_per_mix` accepted over the wire.
pub const MAX_THREADS_PER_MIX: usize = 64;
/// Upper bound on `channel` axis values accepted over the wire.
pub const MAX_CHANNELS: usize = 16;
/// Nesting depth bound of the JSON parser (a spec is three levels deep).
const MAX_DEPTH: usize = 16;

/// Why a wire payload was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with it.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// JSON values and the strict parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Integers that fit `u64` parse as [`Json::UInt`];
/// every other number (negative, fractional, exponent) parses as
/// [`Json::Float`] — so integer-typed spec fields reject `2.0` and `-2`
/// for free. Objects preserve key order and refuse duplicate keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, keys in source order (duplicates rejected at parse).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// What kind of value this is, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::UInt(_) => "an integer",
            Json::Float(_) => "a number",
            Json::Str(_) => "a string",
            Json::Array(_) => "an array",
            Json::Object(_) => "an object",
        }
    }
}

/// Parses a complete JSON document. Exactly one value, nothing trailing;
/// duplicate object keys and unescaped control characters are errors.
///
/// # Errors
///
/// [`WireError`] describing the first offence, with its byte offset.
pub fn parse_json(text: &str) -> Result<Json, WireError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(parser.fail("trailing content after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn fail(&self, message: impl fmt::Display) -> WireError {
        WireError::new(format!("at byte {}: {message}", self.at))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    /// Consumes `literal` or reports what was found instead.
    fn eat(&mut self, literal: &str) -> Result<(), WireError> {
        let end = self.at + literal.len();
        if self.bytes.get(self.at..end) == Some(literal.as_bytes()) {
            self.at = end;
            Ok(())
        } else {
            Err(self.fail(format!("expected `{literal}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting deeper than a campaign spec can be"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(other) => Err(self.fail(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.at += 1; // past '{'
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected a string key"));
            }
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.at += 1; // past '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.at += 1; // past opening '"'
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return String::from_utf8(out)
                        .map_err(|_| self.fail("string decodes to invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.at += 1;
                    self.escape(&mut out)?;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.fail("unescaped control character in string"));
                }
                Some(c) => {
                    // Multi-byte UTF-8 sequences pass through raw: the
                    // input is a `&str`, so they are already valid.
                    out.push(c);
                    self.at += 1;
                }
            }
        }
    }

    /// Decodes one escape sequence (cursor just past the backslash).
    fn escape(&mut self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let Some(code) = self.peek() else {
            return Err(self.fail("dangling escape at end of input"));
        };
        self.at += 1;
        match code {
            b'"' => out.push(b'"'),
            b'\\' => out.push(b'\\'),
            b'/' => out.push(b'/'),
            b'b' => out.push(0x08),
            b'f' => out.push(0x0c),
            b'n' => out.push(b'\n'),
            b'r' => out.push(b'\r'),
            b't' => out.push(b'\t'),
            b'u' => {
                let unit = self.hex4()?;
                let scalar = if (0xD800..=0xDBFF).contains(&unit) {
                    // A high surrogate must be chased by an escaped low
                    // surrogate; the pair combines into one scalar.
                    self.eat("\\u")
                        .map_err(|_| self.fail("high surrogate without a low surrogate"))?;
                    let low = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                } else if (0xDC00..=0xDFFF).contains(&unit) {
                    return Err(self.fail("unpaired low surrogate"));
                } else {
                    unit
                };
                let c = char::from_u32(scalar)
                    .ok_or_else(|| self.fail("escape is not a Unicode scalar"))?;
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
            other => return Err(self.fail(format!("unknown escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.fail("expected four hex digits after \\u"))?;
            value = value * 16 + digit;
            self.at += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        // Integer part: `0` alone, or a nonzero-leading digit run.
        match self.peek() {
            Some(b'0') => {
                self.at += 1;
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    return Err(self.fail("numbers must not have leading zeros"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.at += 1;
                }
            }
            _ => return Err(self.fail("expected a digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("expected digits after the decimal point"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("expected digits in the exponent"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let literal = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.fail("number literal is not UTF-8"))?;
        if integral && !literal.starts_with('-') {
            return literal
                .parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.fail(format!("integer `{literal}` overflows u64")));
        }
        literal
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.fail(format!("`{literal}` is not a number")))
    }
}

// ---------------------------------------------------------------------------
// CampaignSpec <-> JSON
// ---------------------------------------------------------------------------

/// Stable wire label of an [`AdvanceMode`].
fn advance_label(advance: AdvanceMode) -> &'static str {
    match advance {
        AdvanceMode::Lockstep => "lockstep",
        AdvanceMode::EventDriven => "event-driven",
    }
}

/// Inverse of [`advance_label`].
fn advance_from_label(label: &str) -> Option<AdvanceMode> {
    match label {
        "lockstep" => Some(AdvanceMode::Lockstep),
        "event-driven" => Some(AdvanceMode::EventDriven),
        _ => None,
    }
}

/// Serializes a campaign spec to its canonical one-line JSON encoding —
/// the exact inverse of [`spec_from_json`] for every spec the server
/// would accept.
pub fn spec_to_json(spec: &CampaignSpec) -> String {
    let quoted = |labels: Vec<String>| -> String {
        let mut out = String::new();
        for (i, label) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(label));
            out.push('"');
        }
        out
    };
    let joined = |values: &[u64]| -> String {
        values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        concat!(
            "{{\"name\":\"{name}\",\"mix_count\":{mixes},",
            "\"threads_per_mix\":{threads},\"scenarios\":[{scenarios}],",
            "\"defenses\":[{defenses}],\"n_rh_points\":[{nrh}],",
            "\"channel_counts\":[{channels}],\"scale\":{{",
            "\"time_scale\":{time_scale},",
            "\"benign_instructions\":{benign_instructions},",
            "\"llc_bytes\":{llc_bytes},\"min_cycles\":{min_cycles},",
            "\"max_cycles\":{max_cycles},\"advance\":\"{advance}\"}},",
            "\"seed\":{seed},\"normalize\":{normalize}}}"
        ),
        name = escape_json(&spec.name),
        mixes = spec.mix_count,
        threads = spec.threads_per_mix,
        scenarios = quoted(spec.scenarios.iter().map(Scenario::label).collect()),
        defenses = quoted(spec.defenses.iter().map(|d| d.label().to_owned()).collect()),
        nrh = joined(&spec.n_rh_points),
        channels = joined(
            &spec
                .channel_counts
                .iter()
                .map(|&c| c as u64)
                .collect::<Vec<_>>()
        ),
        time_scale = spec.scale.time_scale,
        benign_instructions = spec.scale.benign_instructions,
        llc_bytes = spec.scale.llc_bytes,
        min_cycles = spec.scale.min_cycles,
        max_cycles = spec.scale.max_cycles,
        advance = advance_label(spec.scale.advance),
        seed = spec.seed,
        normalize = spec.normalize,
    )
}

/// A field cursor over one JSON object that insists every member is
/// consumed exactly once: unknown and missing fields are both errors.
struct Fields<'a> {
    context: &'static str,
    members: &'a [(String, Json)],
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn over(value: &'a Json, context: &'static str) -> Result<Self, WireError> {
        let members = value
            .as_object()
            .ok_or_else(|| WireError::new(format!("{context} must be an object")))?;
        Ok(Self {
            context,
            members,
            taken: vec![false; members.len()],
        })
    }

    fn take(&mut self, key: &str) -> Result<&'a Json, WireError> {
        let members = self.members;
        if let Some(i) = members.iter().position(|(k, _)| k == key) {
            self.taken[i] = true;
            return Ok(&members[i].1);
        }
        Err(WireError::new(format!(
            "{} is missing required field `{key}`",
            self.context
        )))
    }

    /// Fails on any member no `take` consumed.
    fn finish(self) -> Result<(), WireError> {
        for (i, (key, _)) in self.members.iter().enumerate() {
            if !self.taken[i] {
                return Err(WireError::new(format!(
                    "{} has unknown field `{key}`",
                    self.context
                )));
            }
        }
        Ok(())
    }
}

/// `value` as a `u64` within `[min, max]`, named `what` in errors.
fn bounded_u64(value: &Json, what: &str, min: u64, max: u64) -> Result<u64, WireError> {
    let v = value.as_u64().ok_or_else(|| {
        WireError::new(format!("`{what}` must be an integer, got {}", value.kind()))
    })?;
    if v < min || v > max {
        return Err(WireError::new(format!(
            "`{what}` must be in {min}..={max}, got {v}"
        )));
    }
    Ok(v)
}

/// `value` as a non-empty label array of at most [`MAX_AXIS_POINTS`],
/// each element mapped through `parse` (which reports bad labels).
fn axis<T>(
    value: &Json,
    what: &str,
    parse: impl Fn(&str) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let items = value
        .as_array()
        .ok_or_else(|| WireError::new(format!("`{what}` must be an array")))?;
    if items.is_empty() || items.len() > MAX_AXIS_POINTS {
        return Err(WireError::new(format!(
            "`{what}` must have 1..={MAX_AXIS_POINTS} points, got {}",
            items.len()
        )));
    }
    items
        .iter()
        .map(|item| {
            let label = item.as_str().ok_or_else(|| {
                WireError::new(format!(
                    "`{what}` entries must be strings, got {}",
                    item.kind()
                ))
            })?;
            parse(label)
        })
        .collect()
}

/// `value` as a non-empty integer array of at most [`MAX_AXIS_POINTS`],
/// each element within `[min, max]`.
fn numeric_axis(value: &Json, what: &str, min: u64, max: u64) -> Result<Vec<u64>, WireError> {
    let items = value
        .as_array()
        .ok_or_else(|| WireError::new(format!("`{what}` must be an array")))?;
    if items.is_empty() || items.len() > MAX_AXIS_POINTS {
        return Err(WireError::new(format!(
            "`{what}` must have 1..={MAX_AXIS_POINTS} points, got {}",
            items.len()
        )));
    }
    items
        .iter()
        .map(|item| bounded_u64(item, what, min, max))
        .collect()
}

/// Parses and validates a campaign spec from its JSON encoding.
///
/// Beyond shape (exact field sets, correct types), this enforces the
/// server's admission bounds: name length, axis sizes, `mix_count`,
/// `threads_per_mix` (at least two when any scenario carries an
/// attacker — [`CampaignSpec::expand`] would panic otherwise), channel
/// counts, and a non-zero `time_scale`. A spec that parses here expands
/// without panicking.
///
/// # Errors
///
/// [`WireError`] naming the first offending field.
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, WireError> {
    let root = parse_json(text)?;
    let mut fields = Fields::over(&root, "the campaign spec")?;

    let name = fields
        .take("name")?
        .as_str()
        .ok_or_else(|| WireError::new("`name` must be a string"))?
        .to_owned();
    if name.is_empty() || name.len() > MAX_NAME_BYTES {
        return Err(WireError::new(format!(
            "`name` must be 1..={MAX_NAME_BYTES} bytes, got {}",
            name.len()
        )));
    }
    let mix_count = bounded_u64(
        fields.take("mix_count")?,
        "mix_count",
        1,
        MAX_MIX_COUNT as u64,
    )? as usize;
    let threads_per_mix = bounded_u64(
        fields.take("threads_per_mix")?,
        "threads_per_mix",
        1,
        MAX_THREADS_PER_MIX as u64,
    )? as usize;
    let scenarios = axis(fields.take("scenarios")?, "scenarios", |label| {
        Scenario::from_label(label)
            .ok_or_else(|| WireError::new(format!("unknown scenario label `{label}`")))
    })?;
    let defenses = axis(fields.take("defenses")?, "defenses", |label| {
        DefenseKind::from_label(label)
            .ok_or_else(|| WireError::new(format!("unknown defense label `{label}`")))
    })?;
    let n_rh_points = numeric_axis(fields.take("n_rh_points")?, "n_rh_points", 1, u64::MAX)?;
    let channel_counts: Vec<usize> = numeric_axis(
        fields.take("channel_counts")?,
        "channel_counts",
        1,
        MAX_CHANNELS as u64,
    )?
    .into_iter()
    .map(|c| c as usize)
    .collect();

    let mut scale_fields = Fields::over(fields.take("scale")?, "`scale`")?;
    let scale = RunScale {
        time_scale: bounded_u64(scale_fields.take("time_scale")?, "time_scale", 1, u64::MAX)?,
        benign_instructions: bounded_u64(
            scale_fields.take("benign_instructions")?,
            "benign_instructions",
            1,
            u64::MAX,
        )?,
        llc_bytes: bounded_u64(scale_fields.take("llc_bytes")?, "llc_bytes", 1, u64::MAX)?,
        min_cycles: bounded_u64(scale_fields.take("min_cycles")?, "min_cycles", 0, u64::MAX)?,
        max_cycles: bounded_u64(scale_fields.take("max_cycles")?, "max_cycles", 1, u64::MAX)?,
        advance: {
            let label = scale_fields
                .take("advance")?
                .as_str()
                .ok_or_else(|| WireError::new("`advance` must be a string"))?;
            advance_from_label(label).ok_or_else(|| {
                WireError::new(format!(
                    "`advance` must be `lockstep` or `event-driven`, got `{label}`"
                ))
            })?
        },
    };
    scale_fields.finish()?;
    if scale.max_cycles < scale.min_cycles {
        return Err(WireError::new(format!(
            "`max_cycles` ({}) must be at least `min_cycles` ({})",
            scale.max_cycles, scale.min_cycles
        )));
    }

    let seed = bounded_u64(fields.take("seed")?, "seed", 0, u64::MAX)?;
    let normalize = fields
        .take("normalize")?
        .as_bool()
        .ok_or_else(|| WireError::new("`normalize` must be a boolean"))?;
    fields.finish()?;

    let has_attack = scenarios.iter().any(|s| matches!(s, Scenario::Attack(_)));
    if has_attack && threads_per_mix < 2 {
        return Err(WireError::new(
            "attack scenarios need `threads_per_mix` >= 2 (one attacker plus victims)",
        ));
    }

    Ok(CampaignSpec {
        name,
        mix_count,
        threads_per_mix,
        scenarios,
        defenses,
        n_rh_points,
        channel_counts,
        scale,
        seed,
        normalize,
    })
}

// ---------------------------------------------------------------------------
// JournalEntry -> NDJSON
// ---------------------------------------------------------------------------

/// A finite float as a JSON number; NaN/infinity (which JSON cannot
/// carry) as `null`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        value.to_string()
    } else {
        "null".to_owned()
    }
}

fn thread_to_json(thread: &ThreadOutcome) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"is_attacker\":{},\"instructions\":{},",
            "\"cycles\":{},\"ipc\":{},\"max_rhli\":{},\"memory_requests\":{}}}"
        ),
        escape_json(&thread.name),
        thread.is_attacker,
        thread.instructions,
        thread.cycles,
        json_f64(thread.ipc),
        json_f64(thread.max_rhli),
        thread.memory_requests,
    )
}

fn outcome_to_json(o: &RunOutcome) -> String {
    let threads = o
        .threads
        .iter()
        .map(thread_to_json)
        .collect::<Vec<_>>()
        .join(",");
    let metrics = match &o.metrics {
        None => "null".to_owned(),
        Some(m) => format!(
            concat!(
                "{{\"weighted_speedup\":{},\"harmonic_speedup\":{},",
                "\"max_slowdown\":{},\"dram_energy_joules\":{}}}"
            ),
            json_f64(m.weighted_speedup),
            json_f64(m.harmonic_speedup),
            json_f64(m.max_slowdown),
            json_f64(m.dram_energy_joules),
        ),
    };
    format!(
        concat!(
            "{{\"type\":\"outcome\",\"index\":{},\"name\":\"{}\",",
            "\"scenario\":\"{}\",\"defense\":\"{}\",\"n_rh\":{},",
            "\"channels\":{},\"total_cycles\":{},\"activations\":{},",
            "\"dram_energy_j\":{},\"threads\":[{}],\"metrics\":{},",
            "\"stepping\":{{\"cycles_simulated\":{},\"cycles_skipped\":{},",
            "\"events_processed\":{},\"largest_jump\":{}}}}}"
        ),
        o.index,
        escape_json(&o.name),
        escape_json(&o.scenario),
        escape_json(&o.defense),
        o.n_rh,
        o.channels,
        o.total_cycles,
        o.activations,
        json_f64(o.dram_energy_j),
        threads,
        metrics,
        o.stepping.cycles_simulated,
        o.stepping.cycles_skipped,
        o.stepping.events_processed,
        o.stepping.largest_jump,
    )
}

fn failure_to_json(f: &FailedRun) -> String {
    format!(
        concat!(
            "{{\"type\":\"failure\",\"index\":{},\"name\":\"{}\",",
            "\"scenario\":\"{}\",\"defense\":\"{}\",\"n_rh\":{},",
            "\"channels\":{},\"attempts\":{},\"cause\":\"{}\"}}"
        ),
        f.index,
        escape_json(&f.name),
        escape_json(&f.scenario),
        escape_json(&f.defense),
        f.n_rh,
        f.channels,
        f.attempts,
        escape_json(&f.cause),
    )
}

/// One journal entry as a single NDJSON line (no trailing newline):
/// `{"type":"outcome",...}` for completed runs, `{"type":"failure",...}`
/// for quarantined ones, fields mirroring the binary journal's encode
/// order. This is the record format the campaign server streams to
/// clients, so its bytes are part of the service contract: identical
/// entries always render identical lines.
pub fn entry_to_ndjson(entry: &JournalEntry) -> String {
    match entry {
        JournalEntry::Outcome(outcome) => outcome_to_json(outcome),
        JournalEntry::Failure(failure) => failure_to_json(failure),
    }
}

/// One-line JSON rendering of [`ExecutionStats`] — the scheduling
/// fragment the server embeds in its status documents. The scheduler
/// label needs no escaping (it is one of three fixed identifiers), so
/// the whole document is assembled by formatting, like the NDJSON
/// records above.
pub fn scheduling_json(stats: &crate::ExecutionStats) -> String {
    let mut workers = String::new();
    for (i, worker) in stats.workers.iter().enumerate() {
        if i > 0 {
            workers.push(',');
        }
        workers.push_str(&format!(
            "{{\"jobs\":{},\"steals\":{},\"busy_us\":{}}}",
            worker.jobs,
            worker.steals,
            worker.busy.as_micros()
        ));
    }
    format!(
        "{{\"scheduler\":\"{}\",\"reorder_high_water\":{},\"prelude\":{{\"references\":{},\
         \"computed\":{},\"from_cache\":{}}},\"workers\":[{workers}]}}",
        stats.scheduler,
        stats.reorder_high_water,
        stats.prelude.references,
        stats.prelude.computed,
        stats.prelude.from_cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::fingerprint;
    use sim::{MultiProgramMetrics, SteppingStats};
    use workloads::AttackKind;

    #[test]
    fn canonical_specs_round_trip_with_equal_fingerprints() {
        for spec in [
            CampaignSpec::smoke(),
            CampaignSpec::quick(3),
            CampaignSpec::paper(),
        ] {
            let json = spec_to_json(&spec);
            let back = spec_from_json(&json).expect("canonical spec parses");
            assert_eq!(back, spec);
            assert_eq!(fingerprint(&back), fingerprint(&spec));
        }
    }

    #[test]
    fn spec_with_every_label_variant_round_trips() {
        let mut spec = CampaignSpec::smoke();
        spec.name = "wire \"quoted\\\" \n\t — campaign".to_owned();
        spec.scenarios = vec![
            Scenario::BenignOnly,
            Scenario::Attack(AttackKind::DoubleSided),
            Scenario::Attack(AttackKind::SingleSided),
            Scenario::Attack(AttackKind::ManySided { sides: 9 }),
        ];
        spec.defenses = vec![
            DefenseKind::Baseline,
            DefenseKind::Para,
            DefenseKind::ProHit,
            DefenseKind::MrLoc,
            DefenseKind::Cbt,
            DefenseKind::TwiCe,
            DefenseKind::Graphene,
            DefenseKind::BlockHammer,
            DefenseKind::BlockHammerObserve,
        ];
        spec.scale.advance = AdvanceMode::Lockstep;
        spec.normalize = false;
        let back = spec_from_json(&spec_to_json(&spec)).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(fingerprint(&back), fingerprint(&spec));
    }

    #[test]
    fn malformed_specs_are_refused_with_named_fields() {
        let base = spec_to_json(&CampaignSpec::smoke());
        let cases: Vec<(String, &str)> = vec![
            (
                base.replace("\"mix_count\":2", "\"mix_count\":0"),
                "mix_count",
            ),
            (
                base.replace("\"mix_count\":2", "\"mix_count\":2.0"),
                "mix_count",
            ),
            (base.replace("\"seed\":7", "\"seed\":-7"), "seed"),
            (
                base.replace(
                    "\"scenarios\":[\"no-attack\",\"attack\"]",
                    "\"scenarios\":[]",
                ),
                "scenarios",
            ),
            (
                base.replace("\"Baseline\"", "\"baseline\""),
                "defense label",
            ),
            (
                base.replace("\"no-attack\"", "\"benign\""),
                "scenario label",
            ),
            (
                base.replace("\"channel_counts\":[1]", "\"channel_counts\":[17]"),
                "channel_counts",
            ),
            (
                base.replace("\"normalize\":true", "\"normalize\":true,\"extra\":1"),
                "unknown field",
            ),
            (
                base.replace("\"normalize\":true", "\"normalize\":null"),
                "normalize",
            ),
            (
                base.replace("\"advance\":\"event-driven\"", "\"advance\":\"warp\""),
                "advance",
            ),
            (
                base.replace("\"time_scale\":8192", "\"time_scale\":0"),
                "time_scale",
            ),
            (format!("{base} trailing"), "trailing"),
        ];
        for (mutated, expect) in cases {
            assert_ne!(mutated, base, "the mutation must apply ({expect})");
            let error = spec_from_json(&mutated).expect_err(expect);
            assert!(
                error.message.contains(expect)
                    || error.message.contains("unknown")
                    || error.message.contains("trailing"),
                "error for `{expect}` says: {}",
                error.message
            );
        }
    }

    #[test]
    fn missing_and_duplicate_fields_are_refused() {
        let base = spec_to_json(&CampaignSpec::smoke());
        let missing = base.replace("\"seed\":7,", "");
        assert!(spec_from_json(&missing)
            .expect_err("missing field")
            .message
            .contains("seed"));
        let duplicate = base.replace("\"seed\":7", "\"seed\":7,\"seed\":8");
        assert!(spec_from_json(&duplicate)
            .expect_err("duplicate key")
            .message
            .contains("duplicate"));
    }

    #[test]
    fn attack_scenarios_require_two_threads() {
        let mut spec = CampaignSpec::smoke();
        spec.threads_per_mix = 1;
        let error = spec_from_json(&spec_to_json(&spec)).expect_err("refused");
        assert!(error.message.contains("threads_per_mix"));
        // Benign-only campaigns may run single-threaded.
        spec.scenarios = vec![Scenario::BenignOnly];
        assert!(spec_from_json(&spec_to_json(&spec)).is_ok());
    }

    #[test]
    fn parser_is_strict_json() {
        assert!(parse_json("{\"a\":1}").is_ok());
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse_json("{\"a\":01}").is_err(), "leading zeros");
        assert!(parse_json("[1,]").is_err(), "trailing comma");
        assert!(parse_json("\"\u{1}\"").is_err(), "raw control char");
        assert!(parse_json("123 456").is_err(), "trailing content");
        assert!(
            parse_json("99999999999999999999999999").is_err(),
            "u64 overflow"
        );
        assert_eq!(parse_json("-2"), Ok(Json::Float(-2.0)));
        assert_eq!(parse_json("2.5"), Ok(Json::Float(2.5)));
        assert_eq!(parse_json("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(
            parse_json("\"\\u00e9\\ud83d\\ude00\\\\\\\"\\n\""),
            Ok(Json::Str("é😀\\\"\n".to_owned()))
        );
        assert!(parse_json("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse_json("\"\\ude00\"").is_err(), "lone low surrogate");
        let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
        assert!(parse_json(&deep).is_err(), "depth bound");
    }

    fn sample_outcome() -> RunOutcome {
        RunOutcome {
            index: 3,
            name: "mix-001/BlockHammer/nrh32768/ch1".to_owned(),
            scenario: "attack".to_owned(),
            defense: "BlockHammer".to_owned(),
            n_rh: 32_768,
            channels: 1,
            total_cycles: 123_456,
            activations: 789,
            dram_energy_j: 0.25,
            threads: vec![ThreadOutcome {
                name: "attacker.double_sided".to_owned(),
                is_attacker: true,
                instructions: 10,
                cycles: 20,
                ipc: 0.5,
                max_rhli: 1.25,
                memory_requests: 30,
            }],
            metrics: Some(MultiProgramMetrics {
                weighted_speedup: 0.875,
                harmonic_speedup: 0.75,
                max_slowdown: 2.5,
                dram_energy_joules: 0.25,
            }),
            stepping: SteppingStats {
                cycles_simulated: 100,
                cycles_skipped: 50,
                events_processed: 7,
                largest_jump: 12,
            },
        }
    }

    #[test]
    fn ndjson_records_are_single_parseable_lines() {
        let outcome = JournalEntry::Outcome(sample_outcome());
        let line = entry_to_ndjson(&outcome);
        assert!(!line.contains('\n'), "one record, one line");
        let parsed = parse_json(&line).expect("outcome line is valid JSON");
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("outcome"));
        assert_eq!(parsed.get("index").and_then(Json::as_u64), Some(3));
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("max_slowdown").cloned()),
            Some(Json::Float(2.5))
        );
        assert_eq!(
            parsed
                .get("threads")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );

        let failure = JournalEntry::Failure(FailedRun {
            index: 4,
            name: "mix-002/Para/nrh32768/ch1".to_owned(),
            scenario: "attack".to_owned(),
            defense: "Para".to_owned(),
            n_rh: 32_768,
            channels: 1,
            attempts: 2,
            cause: "panicked: \"quoted\"\ncause".to_owned(),
        });
        let line = entry_to_ndjson(&failure);
        assert!(!line.contains('\n'));
        let parsed = parse_json(&line).expect("failure line is valid JSON");
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("failure"));
        assert_eq!(parsed.get("attempts").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("cause").and_then(Json::as_str),
            Some("panicked: \"quoted\"\ncause")
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut outcome = sample_outcome();
        outcome.threads[0].ipc = f64::NAN;
        outcome.metrics = None;
        let line = entry_to_ndjson(&JournalEntry::Outcome(outcome));
        let parsed = parse_json(&line).expect("line stays valid JSON");
        let thread = parsed
            .get("threads")
            .and_then(Json::as_array)
            .map(|t| &t[0]);
        assert_eq!(thread.and_then(|t| t.get("ipc").cloned()), Some(Json::Null));
        assert_eq!(parsed.get("metrics").cloned(), Some(Json::Null));
    }

    #[test]
    fn identical_entries_render_identical_bytes() {
        let entry = JournalEntry::Outcome(sample_outcome());
        assert_eq!(entry_to_ndjson(&entry), entry_to_ndjson(&entry.clone()));
    }

    #[test]
    fn scheduling_json_is_valid_and_carries_every_counter() {
        let mut stats = crate::ExecutionStats {
            scheduler: "stealing",
            reorder_high_water: 3,
            ..Default::default()
        };
        stats.prelude.references = 4;
        stats.prelude.from_cache = 4;
        stats.workers = vec![
            crate::WorkerSnapshot {
                jobs: 5,
                steals: 2,
                busy: std::time::Duration::from_micros(10_345),
            },
            crate::WorkerSnapshot::default(),
        ];
        let doc = scheduling_json(&stats);
        let parsed = parse_json(&doc).expect("scheduling document is valid JSON");
        assert_eq!(
            parsed.get("scheduler").and_then(Json::as_str),
            Some("stealing")
        );
        assert_eq!(
            parsed.get("reorder_high_water").and_then(Json::as_u64),
            Some(3)
        );
        let prelude = parsed.get("prelude").expect("prelude object");
        assert_eq!(prelude.get("references").and_then(Json::as_u64), Some(4));
        assert_eq!(prelude.get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(prelude.get("from_cache").and_then(Json::as_u64), Some(4));
        let workers = parsed
            .get("workers")
            .and_then(Json::as_array)
            .expect("workers array");
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].get("jobs").and_then(Json::as_u64), Some(5));
        assert_eq!(workers[0].get("steals").and_then(Json::as_u64), Some(2));
        assert_eq!(
            workers[0].get("busy_us").and_then(Json::as_u64),
            Some(10_345)
        );
    }
}
