//! # campaign
//!
//! The evaluation-sweep engine: trace ingestion plus parallel execution
//! of whole run matrices, turning the one-`System`-at-a-time simulator
//! into the machinery behind the paper's 280-workload evaluation
//! (Section 7: 30 stand-alone benign applications, 125 benign-only and
//! 125 attack-present eight-thread mixes, swept across defenses and
//! RowHammer thresholds).
//!
//! Six pieces:
//!
//! * [`trace`] — streaming readers/writers for Ramulator-style text
//!   traces and a compact length-prefixed binary format, plus the
//!   recorder that dumps any `workloads` generator to disk so campaigns
//!   replay from trace files (bit-identically: recorded threads consume
//!   the exact iterators the generator path feeds the simulator).
//! * [`spec`] — the deterministic, seedable run matrix:
//!   [`CampaignSpec`] expands {mixes × defenses × `N_RH` points ×
//!   channel counts} into an ordered [`RunSpec`] list.
//! * [`executor`] — sequential or pooled execution over persistent
//!   workers, under a work-stealing scheduler by default
//!   ([`sim::pool::queue::StealingPool`] feeding a reorder buffer) or
//!   the slot-pinned [`sim::pool::WorkerPool`]; either way results are
//!   *delivered* in strict run order, so every worker count and
//!   [`SchedulerMode`] emits byte-identical output. Every run executes
//!   behind an isolation boundary with a configurable [`FailurePolicy`]
//!   (abort / quarantine / retry), [`execute_resumable`] checkpoints
//!   each result so a killed campaign resumes where it stopped, and the
//!   normalization prelude fans out over the same pool with an on-disk
//!   cache next to the journal ([`ExecutionStats`] reports all of it).
//! * [`checkpoint`] — the append-only, checksummed journal behind
//!   resume: records completed runs in run order, keyed by a
//!   [`CampaignSpec`] fingerprint, dropping (never trusting) a torn
//!   trailing record.
//! * [`aggregate`] — incremental reduction into per-sweep-point
//!   [`MultiProgramMetrics`](sim::MultiProgramMetrics)/RHLI summaries
//!   with CSV/JSON emission (and a validating CSV parser), bridged to
//!   `sim::report` for table rendering. Quarantined runs mark their
//!   sweep points degraded instead of poisoning the campaign.
//! * [`faults`] — deterministic fault injection (panics, trace I/O
//!   errors, mid-journal aborts) behind the `fault-injection` cargo
//!   feature; release builds compile the hooks to nothing.
//! * [`wire`] — the campaign server's textual formats: strict JSON
//!   campaign specs whose round-trip preserves the resume fingerprint,
//!   and the NDJSON result records [`execute_observed`] streams to
//!   subscribers.
//!
//! ## Example
//!
//! ```
//! use campaign::{execute, CampaignSpec};
//!
//! // A tiny two-run campaign, executed sequentially.
//! let mut spec = CampaignSpec::smoke();
//! spec.mix_count = 1;
//! spec.threads_per_mix = 2;
//! spec.defenses.truncate(1);
//! spec.scenarios.truncate(1);
//! spec.scale.benign_instructions = 300;
//! spec.scale.min_cycles = 10_000;
//! let report = execute(&spec, spec.expand(), 0).unwrap();
//! assert_eq!(report.outcomes.len(), 1);
//! let csv = report.summary.to_csv();
//! assert!(campaign::parse_summary_csv(&csv).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod artifacts;
pub mod checkpoint;
pub mod executor;
pub mod faults;
pub mod runner;
pub mod spec;
pub mod trace;
pub mod wire;

pub use aggregate::{parse_summary_csv, CampaignAggregator, CampaignSummary, SweepKey};
pub use artifacts::write_atomic;
pub use checkpoint::{fingerprint, JournalEntry, JournalError};
pub use executor::{
    default_workers, execute, execute_observed, execute_resumable, prelude_cache_path,
    CampaignReport, DeliveryObserver, ExecutionOptions, ExecutionStats, FailurePolicy,
    PreludeStats, SchedulerMode, WorkerSnapshot,
};
pub use runner::{
    record_run_traces, run_spec, CampaignError, FailedRun, RunOutcome, ThreadOutcome,
};
pub use spec::{CampaignSpec, RunScale, RunSpec, Scenario, ThreadGenerator, ThreadSpec};
pub use trace::{
    load_trace_file, open_trace_file, record_trace_file, LoopedTrace, TraceError, TraceFormat,
    TraceReader, TraceSource, TraceWriter,
};
