//! Campaign specifications: the deterministic run matrix.
//!
//! A [`CampaignSpec`] names a sweep — {workload mixes × defense kinds ×
//! RowHammer-threshold points × channel counts} — and
//! [`CampaignSpec::expand`] turns it into an ordered list of
//! [`RunSpec`]s. Expansion is pure: the same spec and seed always produce
//! the same list (pinned by `tests/tests/campaign_determinism.rs`), which
//! is what makes campaign results reproducible and resumable.
//!
//! The paper's full 280-workload evaluation (Section 7) is
//! [`CampaignSpec::paper`]: 30 benign applications characterized
//! stand-alone plus 125 benign-only and 125 attack-present eight-thread
//! mixes, swept over the evaluated defenses. Scaled-down variants
//! ([`CampaignSpec::quick`], [`CampaignSpec::smoke`]) keep the identical
//! structure at laptop/CI cost.

use crate::trace::TraceSource;
use sim::{AdvanceMode, DefenseKind};
use workloads::{AttackKind, SyntheticSpec, WorkloadMix};

/// Golden-ratio multiplier used to decorrelate per-run seeds.
const SEED_PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Simulation-size knobs shared by every run of a campaign (the campaign
/// analogue of `sim::experiments::ExperimentScale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Time-scaling factor applied to refresh window and thresholds.
    pub time_scale: u64,
    /// Instructions each benign thread executes.
    pub benign_instructions: u64,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Minimum simulated cycles (so slow defense dynamics are observed).
    pub min_cycles: u64,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// How the simulated clock advances. Event-driven (the default for
    /// new campaigns) skips provably idle cycles and is bit-identical to
    /// lockstep, so it never changes campaign results — only wall-clock.
    pub advance: AdvanceMode,
}

impl RunScale {
    /// Smoke-test scale: seconds per campaign, suitable for tests and CI.
    pub fn quick() -> Self {
        Self {
            time_scale: 8192,
            benign_instructions: 2_000,
            llc_bytes: 1 << 20,
            // Two scaled refresh windows.
            min_cycles: 2 * (204_800_000 / 8192),
            max_cycles: 3_000_000,
            advance: AdvanceMode::EventDriven,
        }
    }

    /// The default larger scale (minutes per campaign).
    pub fn standard() -> Self {
        Self {
            time_scale: 1024,
            benign_instructions: 100_000,
            llc_bytes: 4 << 20,
            min_cycles: 2 * (204_800_000 / 1024),
            max_cycles: 200_000_000,
            advance: AdvanceMode::EventDriven,
        }
    }
}

/// One scenario axis of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// All threads benign (the paper's "no attack" suites).
    BenignOnly,
    /// Thread 0 runs the given RowHammer attack pattern.
    Attack(AttackKind),
}

impl Scenario {
    /// Stable label used in run names, CSV rows and reports. Matches the
    /// labels of `sim::experiments` for the paper's two scenarios:
    /// `no-attack` and `attack` (non-default attack kinds are suffixed,
    /// e.g. `attack-many_sided_4`).
    pub fn label(&self) -> String {
        match self {
            Scenario::BenignOnly => "no-attack".to_owned(),
            Scenario::Attack(AttackKind::DoubleSided) => "attack".to_owned(),
            Scenario::Attack(kind) => format!("attack-{}", kind.label()),
        }
    }

    /// Parses a [`Scenario::label`] back into its scenario — the inverse
    /// used when campaign specs arrive over the wire. The explicit
    /// spelling `attack-double_sided` parses to the same scenario as the
    /// canonical `attack`; unknown labels return `None`.
    pub fn from_label(label: &str) -> Option<Scenario> {
        match label {
            "no-attack" => Some(Scenario::BenignOnly),
            "attack" => Some(Scenario::Attack(AttackKind::DoubleSided)),
            other => AttackKind::from_label(other.strip_prefix("attack-")?).map(Scenario::Attack),
        }
    }
}

/// What a thread runs when no trace file is attached — and, for benign
/// threads, the generator its stand-alone IPC reference is measured on.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadGenerator {
    /// A synthetic benign workload.
    Synthetic(SyntheticSpec),
    /// A RowHammer attack pattern.
    Attack(AttackKind),
}

/// One thread of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSpec {
    /// Thread name (workload catalog name, or `attacker.<kind>`).
    pub name: String,
    /// Whether the thread is excluded from the run-completion criterion.
    pub is_attacker: bool,
    /// Instructions the thread executes (`u64::MAX` for attackers).
    pub instruction_limit: u64,
    /// The thread's generator (always present, even when a trace file is
    /// attached: it identifies the stand-alone IPC reference).
    pub generator: ThreadGenerator,
    /// When set, the thread replays this trace file instead of its
    /// generator.
    pub trace: Option<TraceSource>,
}

/// One fully-specified simulation run of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in the campaign's deterministic run order.
    pub index: usize,
    /// Human-readable identity, e.g.
    /// `mix-007-attack/BlockHammer/nrh32768/ch1`.
    pub name: String,
    /// The mix this run executes.
    pub mix_name: String,
    /// Scenario label (see [`Scenario::label`]).
    pub scenario: String,
    /// Defense under test.
    pub defense: DefenseKind,
    /// Full-scale (paper) RowHammer threshold of this sweep point.
    pub paper_n_rh: u64,
    /// Memory channels of this sweep point.
    pub channels: usize,
    /// Run seed (workload placement and probabilistic defenses).
    pub seed: u64,
    /// Simulation-size knobs.
    pub scale: RunScale,
    /// The threads, in thread order (attacker first when present).
    pub threads: Vec<ThreadSpec>,
    /// Stand-alone IPC reference per *benign* thread, in thread order.
    /// Empty until the executor's normalization prelude fills it; empty
    /// means multiprogrammed metrics are not computed for this run.
    pub alone_ipc: Vec<f64>,
}

impl RunSpec {
    /// The benign threads of the run, in thread order.
    pub fn benign_threads(&self) -> impl Iterator<Item = &ThreadSpec> {
        self.threads.iter().filter(|t| !t.is_attacker)
    }

    /// Stable file-name stem for this run's recorded traces. The stem
    /// encodes everything the recorded records depend on — mix, scenario
    /// (which carries the attack kind), channel count, thread count,
    /// instruction budget and run seed — but *not* the defense or
    /// threshold, so every sweep point over the same mix shares one set
    /// of trace files while campaigns with different shapes (or
    /// different attack patterns) never collide in a shared trace
    /// directory.
    pub fn trace_stem(&self) -> String {
        format!(
            "{}-{}-ch{}-t{}-i{}-s{:016x}",
            self.mix_name,
            self.scenario,
            self.channels,
            self.threads.len(),
            self.scale.benign_instructions,
            self.seed
        )
    }
}

/// A declarative sweep: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in reports and file names).
    pub name: String,
    /// Mixes *per scenario* (the paper: 125).
    pub mix_count: usize,
    /// Threads per mix (the paper: 8).
    pub threads_per_mix: usize,
    /// Scenario axis (the paper: benign-only and double-sided attack).
    pub scenarios: Vec<Scenario>,
    /// Defense axis. Include [`DefenseKind::Baseline`] to get
    /// normalized metrics (every other defense at the same sweep point is
    /// normalized to it).
    pub defenses: Vec<DefenseKind>,
    /// Full-scale RowHammer-threshold axis.
    pub n_rh_points: Vec<u64>,
    /// Channel-count axis.
    pub channel_counts: Vec<usize>,
    /// Simulation-size knobs shared by every run.
    pub scale: RunScale,
    /// Campaign seed: the single source of all run seeds and mix
    /// selections.
    pub seed: u64,
    /// Whether the executor measures stand-alone IPCs first and computes
    /// the paper's multiprogrammed metrics (weighted/harmonic speedup,
    /// maximum slowdown) for every run.
    pub normalize: bool,
}

impl CampaignSpec {
    /// The paper's full evaluation campaign: 125 benign-only plus 125
    /// attack-present eight-thread mixes under the seven Figure 4/5
    /// defenses and the no-mitigation baseline (2000 runs at standard
    /// scale — hours of simulation).
    pub fn paper() -> Self {
        let mut defenses = vec![DefenseKind::Baseline];
        defenses.extend(DefenseKind::figure_4_and_5_set());
        Self {
            name: "paper-280".to_owned(),
            mix_count: 125,
            threads_per_mix: 8,
            scenarios: vec![
                Scenario::BenignOnly,
                Scenario::Attack(AttackKind::DoubleSided),
            ],
            defenses,
            n_rh_points: vec![32_768],
            channel_counts: vec![1],
            scale: RunScale::standard(),
            seed: 7,
            normalize: true,
        }
    }

    /// A scaled-down paper campaign that still exercises every moving
    /// part — `mixes` mixes per scenario, three defenses, two threshold
    /// points — at quick scale (seconds to a few minutes).
    pub fn quick(mixes: usize) -> Self {
        Self {
            name: format!("paper-mini-{mixes}x"),
            mix_count: mixes,
            threads_per_mix: 4,
            scenarios: vec![
                Scenario::BenignOnly,
                Scenario::Attack(AttackKind::DoubleSided),
            ],
            defenses: vec![
                DefenseKind::Baseline,
                DefenseKind::Para,
                DefenseKind::BlockHammer,
            ],
            // At quick time-scale (8192) the effective threshold is
            // `paper_n_rh / 8192`, floored at 16 — paper-range values
            // (32K..1K) all collapse to the floor, so the quick sweep
            // uses points that stay distinct after scaling (effective 64
            // and 16, preserving the Figure 6 harder-threshold
            // direction).
            n_rh_points: vec![524_288, 131_072],
            channel_counts: vec![1],
            scale: RunScale::quick(),
            seed: 7,
            normalize: true,
        }
    }

    /// The CI smoke campaign: 8 runs (2 mixes × 2 scenarios × 2
    /// defenses) at quick scale.
    pub fn smoke() -> Self {
        Self {
            name: "smoke".to_owned(),
            mix_count: 2,
            threads_per_mix: 4,
            scenarios: vec![
                Scenario::BenignOnly,
                Scenario::Attack(AttackKind::DoubleSided),
            ],
            defenses: vec![DefenseKind::Baseline, DefenseKind::BlockHammer],
            n_rh_points: vec![32_768],
            channel_counts: vec![1],
            scale: RunScale::quick(),
            seed: 7,
            normalize: true,
        }
    }

    /// Total number of runs [`CampaignSpec::expand`] will produce.
    pub fn run_count(&self) -> usize {
        self.channel_counts.len()
            * self.n_rh_points.len()
            * self.defenses.len()
            * self.scenarios.len()
            * self.mix_count
    }

    /// Expands the sweep into its ordered run list. Iteration order is
    /// channels (outermost) → threshold → defense → scenario → mix
    /// (innermost), so runs over the same mix and channel count — which
    /// share recorded trace files — cluster predictably.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty, `mix_count` is zero, or an
    /// attack-present scenario is requested with fewer than two threads
    /// per mix.
    pub fn expand(&self) -> Vec<RunSpec> {
        assert!(self.mix_count > 0, "a campaign needs at least one mix");
        assert!(
            !(self.scenarios.is_empty()
                || self.defenses.is_empty()
                || self.n_rh_points.is_empty()
                || self.channel_counts.is_empty()),
            "every campaign axis needs at least one point"
        );
        let mut runs = Vec::with_capacity(self.run_count());
        for &channels in &self.channel_counts {
            for &n_rh in &self.n_rh_points {
                for &defense in &self.defenses {
                    for scenario in &self.scenarios {
                        for mix_index in 0..self.mix_count {
                            runs.push(self.run_for(
                                runs.len(),
                                channels,
                                n_rh,
                                defense,
                                *scenario,
                                mix_index,
                            ));
                        }
                    }
                }
            }
        }
        runs
    }

    fn run_for(
        &self,
        index: usize,
        channels: usize,
        n_rh: u64,
        defense: DefenseKind,
        scenario: Scenario,
        mix_index: usize,
    ) -> RunSpec {
        let mix = match scenario {
            Scenario::BenignOnly => WorkloadMix::benign(mix_index, self.threads_per_mix, self.seed),
            Scenario::Attack(kind) => {
                WorkloadMix::with_attacker_kind(mix_index, self.threads_per_mix, self.seed, kind)
            }
        };
        let mut threads = Vec::with_capacity(mix.thread_count());
        if let Scenario::Attack(kind) = scenario {
            threads.push(ThreadSpec {
                name: format!("attacker.{}", kind.label()),
                is_attacker: true,
                instruction_limit: u64::MAX,
                generator: ThreadGenerator::Attack(kind),
                trace: None,
            });
        }
        for workload in &mix.benign {
            threads.push(ThreadSpec {
                name: workload.name().to_owned(),
                is_attacker: false,
                instruction_limit: self.scale.benign_instructions,
                generator: ThreadGenerator::Synthetic(workload.synthetic.clone()),
                trace: None,
            });
        }
        // Decorrelate the defense's random stream per mix (the mix's own
        // `seed` field is the campaign seed, identical for every mix).
        let seed = self.seed ^ (mix_index as u64).wrapping_mul(SEED_PHI);
        RunSpec {
            index,
            name: format!(
                "{}/{}/nrh{}/ch{}",
                mix.name,
                defense.label(),
                n_rh,
                channels
            ),
            mix_name: mix.name.clone(),
            scenario: scenario.label(),
            defense,
            paper_n_rh: n_rh,
            channels,
            seed,
            scale: self.scale,
            threads,
            alone_ipc: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let spec = CampaignSpec::smoke();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.run_count());
        for (i, run) in a.iter().enumerate() {
            assert_eq!(run.index, i);
        }
    }

    #[test]
    fn paper_campaign_covers_the_250_mix_construction() {
        let spec = CampaignSpec::paper();
        assert_eq!(spec.mix_count, 125);
        assert_eq!(spec.threads_per_mix, 8);
        assert_eq!(spec.scenarios.len(), 2);
        // 125 benign + 125 attack mixes, 8 defenses.
        assert_eq!(spec.run_count(), 250 * 8);
    }

    #[test]
    fn attack_runs_lead_with_the_attacker_thread() {
        let spec = CampaignSpec::smoke();
        let runs = spec.expand();
        for run in runs.iter().filter(|r| r.scenario == "attack") {
            assert!(run.threads[0].is_attacker);
            assert_eq!(run.threads[0].name, "attacker.double_sided");
            assert_eq!(run.threads.len(), spec.threads_per_mix);
            assert_eq!(run.benign_threads().count(), spec.threads_per_mix - 1);
        }
        for run in runs.iter().filter(|r| r.scenario == "no-attack") {
            assert!(run.threads.iter().all(|t| !t.is_attacker));
            assert_eq!(run.threads.len(), spec.threads_per_mix);
        }
    }

    #[test]
    fn trace_stems_ignore_defense_and_threshold() {
        let spec = CampaignSpec::quick(2);
        let runs = spec.expand();
        let stems: std::collections::HashSet<String> =
            runs.iter().map(|r| r.trace_stem()).collect();
        // 2 scenarios x 2 mixes x 1 channel count = 4 distinct stems,
        // shared across 3 defenses and 2 thresholds.
        assert_eq!(stems.len(), 4);
        assert!(runs.len() > stems.len());
    }

    #[test]
    fn trace_stems_distinguish_attack_kinds() {
        // Two campaigns differing only in attack pattern must never
        // share attacker trace files.
        let mut many = CampaignSpec::smoke();
        many.scenarios = vec![Scenario::Attack(AttackKind::ManySided { sides: 4 })];
        let mut double = CampaignSpec::smoke();
        double.scenarios = vec![Scenario::Attack(AttackKind::DoubleSided)];
        let stem = |c: &CampaignSpec| c.expand()[0].trace_stem();
        assert_ne!(stem(&many), stem(&double));
    }

    #[test]
    fn scenario_labels_match_the_experiment_drivers() {
        assert_eq!(Scenario::BenignOnly.label(), "no-attack");
        assert_eq!(Scenario::Attack(AttackKind::DoubleSided).label(), "attack");
        assert_eq!(
            Scenario::Attack(AttackKind::ManySided { sides: 4 }).label(),
            "attack-many_sided_4"
        );
    }

    #[test]
    fn scenario_labels_round_trip_through_from_label() {
        for scenario in [
            Scenario::BenignOnly,
            Scenario::Attack(AttackKind::DoubleSided),
            Scenario::Attack(AttackKind::SingleSided),
            Scenario::Attack(AttackKind::ManySided { sides: 4 }),
        ] {
            assert_eq!(Scenario::from_label(&scenario.label()), Some(scenario));
        }
        // The explicit attack spelling normalizes to the canonical form.
        assert_eq!(
            Scenario::from_label("attack-double_sided"),
            Some(Scenario::Attack(AttackKind::DoubleSided))
        );
        assert_eq!(Scenario::from_label("benign"), None);
        assert_eq!(Scenario::from_label("attack-unknown"), None);
    }
}
