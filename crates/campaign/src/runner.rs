//! Materializing and executing one [`RunSpec`].
//!
//! A run can execute straight from its generators (synthetic workloads
//! and attack patterns) or from recorded trace files
//! ([`record_run_traces`] + [`TraceSource`]); both paths produce
//! bit-identical results because the recorder consumes the *exact*
//! thread iterators the generator path feeds the simulator
//! (`SystemBuilder::into_thread_traces`).

use crate::spec::{RunSpec, ThreadGenerator};
use crate::trace::{record_trace_file, TraceError, TraceFormat, TraceSource};
use bh_types::TraceRecord;
use memctrl::MemCtrlConfig;
use sim::{BoxedTrace, MultiProgramMetrics, SteppingStats, SystemBuilder};
use std::fmt;
use std::path::Path;
use workloads::AttackSpec;

/// Why a campaign could not complete.
#[derive(Debug)]
pub enum CampaignError {
    /// A trace file could not be read or written for a run.
    Trace {
        /// The run's name.
        run: String,
        /// The underlying trace failure.
        error: TraceError,
    },
    /// A run's specification was internally inconsistent.
    Spec {
        /// The run's name.
        run: String,
        /// What was wrong.
        message: String,
    },
    /// A run failed (panicked or errored) under
    /// `FailurePolicy::Abort` — the isolation boundary turned the
    /// failure into this structured error instead of unwinding the
    /// whole process.
    RunFailed {
        /// Position of the failed run in the campaign's run order.
        index: usize,
        /// The run's name.
        run: String,
        /// The panic message or underlying error.
        cause: String,
    },
    /// The checkpoint journal could not be opened, resumed from, or
    /// appended to.
    Checkpoint {
        /// The underlying journal failure.
        error: crate::checkpoint::JournalError,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Trace { run, error } => write!(f, "run `{run}`: {error}"),
            CampaignError::Spec { run, message } => write!(f, "run `{run}`: {message}"),
            CampaignError::RunFailed { index, run, cause } => {
                write!(f, "run {index} `{run}` failed: {cause}")
            }
            CampaignError::Checkpoint { error } => write!(f, "campaign checkpoint: {error}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<crate::checkpoint::JournalError> for CampaignError {
    fn from(error: crate::checkpoint::JournalError) -> Self {
        CampaignError::Checkpoint { error }
    }
}

/// A run quarantined by the executor's failure policy: identity,
/// attempt count and cause, as it lands in the failure manifest and the
/// checkpoint journal.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRun {
    /// Position of the run in the campaign's run order.
    pub index: usize,
    /// Run name (`<mix>/<defense>/nrh<n>/ch<c>`).
    pub name: String,
    /// Scenario label.
    pub scenario: String,
    /// Defense label.
    pub defense: String,
    /// Full-scale RowHammer threshold of the sweep point.
    pub n_rh: u64,
    /// Channel count of the sweep point.
    pub channels: usize,
    /// How many times the run was attempted before being quarantined.
    pub attempts: u32,
    /// The final attempt's panic message or error.
    pub cause: String,
}

impl FailedRun {
    /// Builds the manifest entry for `spec` after `attempts` failed
    /// attempts, the last with `cause`.
    pub fn new(spec: &RunSpec, attempts: u32, cause: String) -> Self {
        Self {
            index: spec.index,
            name: spec.name.clone(),
            scenario: spec.scenario.clone(),
            defense: spec.defense.label().to_owned(),
            n_rh: spec.paper_n_rh,
            channels: spec.channels,
            attempts,
            cause,
        }
    }
}

/// Per-thread outcome of one campaign run (a compact projection of
/// `sim::ThreadResult`).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadOutcome {
    /// Workload name.
    pub name: String,
    /// Whether the thread was the attacker.
    pub is_attacker: bool,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles until the thread finished (or the run ended).
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Largest RowHammer likelihood index the defense reported for the
    /// thread.
    pub max_rhli: f64,
    /// Memory requests issued.
    pub memory_requests: u64,
}

/// Outcome of one campaign run: everything the aggregator and reports
/// need, without the bulky per-channel statistics of a full `RunResult`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Position in the campaign's run order.
    pub index: usize,
    /// Run name (`<mix>/<defense>/nrh<n>/ch<c>`).
    pub name: String,
    /// Scenario label.
    pub scenario: String,
    /// Defense label.
    pub defense: String,
    /// Full-scale RowHammer threshold of the sweep point.
    pub n_rh: u64,
    /// Channel count of the sweep point.
    pub channels: usize,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Total DRAM activations.
    pub activations: u64,
    /// Total DRAM energy in joules.
    pub dram_energy_j: f64,
    /// Per-thread outcomes, in thread order.
    pub threads: Vec<ThreadOutcome>,
    /// The paper's multiprogrammed metrics, when the run had stand-alone
    /// IPC references (`RunSpec::alone_ipc`).
    pub metrics: Option<MultiProgramMetrics>,
    /// Idle-skip accounting of the run's advance loop (how much of the
    /// run event-driven stepping skipped). Deliberately excluded from the
    /// summary CSV/JSON so those artifacts stay bit-identical across
    /// advance modes; reported via `CampaignReport::stepping_csv`.
    pub stepping: SteppingStats,
}

impl RunOutcome {
    /// Mean IPC of the benign threads.
    pub fn mean_benign_ipc(&self) -> f64 {
        let benign: Vec<f64> = self
            .threads
            .iter()
            .filter(|t| !t.is_attacker)
            .map(|t| t.ipc)
            .collect();
        if benign.is_empty() {
            0.0
        } else {
            benign.iter().sum::<f64>() / benign.len() as f64
        }
    }

    /// Largest attacker RHLI of the run (0 for benign-only runs).
    pub fn max_attacker_rhli(&self) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.is_attacker)
            .map(|t| t.max_rhli)
            .fold(0.0, f64::max)
    }

    /// Largest benign-thread RHLI of the run.
    pub fn max_benign_rhli(&self) -> f64 {
        self.threads
            .iter()
            .filter(|t| !t.is_attacker)
            .map(|t| t.max_rhli)
            .fold(0.0, f64::max)
    }
}

/// The system configuration shared by both materialization paths.
fn base_builder(spec: &RunSpec) -> SystemBuilder {
    SystemBuilder::new()
        .time_scale(spec.scale.time_scale)
        .llc_capacity(spec.scale.llc_bytes)
        .seed(spec.seed)
        .max_cycles(spec.scale.max_cycles)
        .min_cycles(spec.scale.min_cycles)
        .channels(spec.channels)
        .defense(spec.defense)
        .rowhammer_threshold(spec.paper_n_rh)
        .advance_mode(spec.scale.advance)
}

/// The generator-driven builder: attacker and synthetic workloads in
/// thread order. This is the single definition of how a `RunSpec` maps
/// onto threads — the recorder consumes its materialized iterators, so
/// recorded traces replay bit-identically.
fn generator_builder(spec: &RunSpec) -> SystemBuilder {
    let mut builder = base_builder(spec);
    for thread in &spec.threads {
        builder = match &thread.generator {
            ThreadGenerator::Attack(kind) => builder.add_attacker_kind(*kind),
            ThreadGenerator::Synthetic(synthetic) => {
                builder.add_workload(synthetic.clone(), thread.instruction_limit)
            }
        };
    }
    builder
}

/// Materializes the spec's generator threads and validates that they
/// line up slot-for-slot with `spec.threads` — `SystemBuilder` forces
/// the attacker to thread 0, so a hand-built `RunSpec` that lists its
/// attacker elsewhere would otherwise silently pair threads with the
/// wrong generators (and the wrong trace files).
fn materialize_threads(
    spec: &RunSpec,
) -> Result<Vec<(String, BoxedTrace, bool, u64)>, CampaignError> {
    let threads = generator_builder(spec).into_thread_traces();
    if threads.len() != spec.threads.len() {
        return Err(CampaignError::Spec {
            run: spec.name.clone(),
            message: format!(
                "materialized {} threads for {} thread specs",
                threads.len(),
                spec.threads.len()
            ),
        });
    }
    for (slot, ((name, _, is_attacker, _), thread)) in threads.iter().zip(&spec.threads).enumerate()
    {
        if *name != thread.name || *is_attacker != thread.is_attacker {
            return Err(CampaignError::Spec {
                run: spec.name.clone(),
                message: format!(
                    "thread slot {slot} is `{}` (attacker: {}) in the spec but materializes \
                     as `{name}` (attacker: {is_attacker}); list the attacker first — the \
                     system builder forces it to thread 0",
                    thread.name, thread.is_attacker
                ),
            });
        }
    }
    Ok(threads)
}

/// Executes one run and reduces it to its [`RunOutcome`].
///
/// # Errors
///
/// Fails if a thread's trace file cannot be loaded, the stand-alone
/// IPC references do not match the benign thread count, or the spec's
/// thread order diverges from the builder's (attacker first).
pub fn run_spec(spec: &RunSpec) -> Result<RunOutcome, CampaignError> {
    crate::faults::before_run(spec.index);
    if !spec.alone_ipc.is_empty() && spec.alone_ipc.len() != spec.benign_threads().count() {
        return Err(CampaignError::Spec {
            run: spec.name.clone(),
            message: format!(
                "{} stand-alone IPC references for {} benign threads",
                spec.alone_ipc.len(),
                spec.benign_threads().count()
            ),
        });
    }
    let any_traces = spec.threads.iter().any(|t| t.trace.is_some());
    let system = if any_traces {
        // Every thread goes through `add_trace` so thread order matches
        // the generator path exactly; threads without a trace file get
        // their generator materialized (with the generator path's address
        // slicing and seeding) via `into_thread_traces`.
        let mut materialized: Vec<Option<BoxedTrace>> = materialize_threads(spec)?
            .into_iter()
            .map(|(_, trace, _, _)| Some(trace))
            .collect();
        let mut builder = base_builder(spec);
        for (slot, thread) in spec.threads.iter().enumerate() {
            let trace: BoxedTrace = match &thread.trace {
                Some(source) => source.build().map_err(|error| CampaignError::Trace {
                    run: spec.name.clone(),
                    error,
                })?,
                None => materialized[slot]
                    .take()
                    .ok_or_else(|| CampaignError::Spec {
                        run: spec.name.clone(),
                        message: format!("thread slot {slot} has no materialized generator"),
                    })?,
            };
            builder = builder.add_trace(
                thread.name.clone(),
                trace,
                thread.is_attacker,
                thread.instruction_limit,
            );
        }
        builder.build()
    } else {
        generator_builder(spec).build()
    };
    let result = system.run();
    let metrics = if spec.alone_ipc.is_empty() {
        None
    } else {
        Some(MultiProgramMetrics::compute(&result, &spec.alone_ipc))
    };
    Ok(RunOutcome {
        index: spec.index,
        name: spec.name.clone(),
        scenario: spec.scenario.clone(),
        defense: spec.defense.label().to_owned(),
        n_rh: spec.paper_n_rh,
        channels: spec.channels,
        total_cycles: result.total_cycles,
        activations: result.dram.totals().activates,
        dram_energy_j: result.dram_energy_joules(),
        threads: result
            .threads
            .iter()
            .map(|t| ThreadOutcome {
                name: t.name.clone(),
                is_attacker: t.is_attacker,
                instructions: t.instructions,
                cycles: t.cycles,
                ipc: t.ipc,
                max_rhli: t.max_rhli,
                memory_requests: t.memory_requests,
            })
            .collect(),
        metrics,
        stepping: result.stepping,
    })
}

/// Yields records until their cumulative instruction count reaches
/// `bound`, then stops — how benign generators are cut to trace files
/// that cover a thread's instruction budget.
struct InstructionBounded<I> {
    inner: I,
    remaining: u64,
}

impl<I: Iterator<Item = TraceRecord>> Iterator for InstructionBounded<I> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        let record = self.inner.next()?;
        self.remaining = self.remaining.saturating_sub(record.instructions());
        Some(record)
    }
}

/// Extra instructions recorded beyond a benign thread's budget, so the
/// replayed trace never runs dry at the finish line.
const RECORD_SLACK_INSTRUCTIONS: u64 = 256;

/// Records every thread of `spec` to trace files under `dir` and returns
/// a copy of the spec whose threads replay those files.
///
/// Benign threads are recorded until they cover their instruction budget
/// (plus slack); attacker threads are recorded for exactly one period of
/// their cyclic pattern and replayed in a loop. Files are named
/// `<trace_stem>-t<slot>.<ext>` (see [`RunSpec::trace_stem`]: the stem
/// encodes mix, scenario, channels, thread count, instruction budget
/// and seed); an existing file is reused without rewriting, so every
/// sweep point over the same mix shares its traces.
///
/// # Errors
///
/// Propagates file-system errors as [`CampaignError::Trace`] and
/// spec/builder thread-order divergence as [`CampaignError::Spec`].
pub fn record_run_traces(
    spec: &RunSpec,
    dir: &Path,
    format: TraceFormat,
) -> Result<RunSpec, CampaignError> {
    let traced = |error: TraceError| CampaignError::Trace {
        run: spec.name.clone(),
        error,
    };
    let threads = materialize_threads(spec)?;
    let mut replayable = spec.clone();
    for (slot, ((_, trace, is_attacker, limit), thread)) in
        threads.into_iter().zip(&mut replayable.threads).enumerate()
    {
        let path = dir.join(format!(
            "{}-t{slot}.{}",
            spec.trace_stem(),
            format.extension()
        ));
        if !path.exists() {
            if is_attacker {
                let period = attack_period(spec, slot).ok_or_else(|| CampaignError::Spec {
                    run: spec.name.clone(),
                    message: format!(
                        "thread slot {slot} is traced as an attacker but has no attack generator"
                    ),
                })?;
                record_trace_file(&path, format, trace, period as u64)
                    .map_err(|e| traced(TraceError::Io(e)))?;
            } else {
                let bounded = InstructionBounded {
                    inner: trace,
                    remaining: limit.saturating_add(RECORD_SLACK_INSTRUCTIONS),
                };
                record_trace_file(&path, format, bounded, u64::MAX)
                    .map_err(|e| traced(TraceError::Io(e)))?;
            }
        }
        thread.trace = Some(TraceSource {
            path,
            repeat: is_attacker,
        });
    }
    Ok(replayable)
}

/// The cyclic period of the attacker in thread slot `slot` of `spec`,
/// derived from the same geometry the generator path uses; `None` if the
/// slot's generator is not an attack.
fn attack_period(spec: &RunSpec, slot: usize) -> Option<usize> {
    let ThreadGenerator::Attack(kind) = &spec.threads[slot].generator else {
        return None;
    };
    let mut config = MemCtrlConfig::default();
    config.organization.channels = spec.channels;
    let generator = kind.build(AttackSpec::default_for(
        config.mapping,
        config.organization.geometry(),
    ));
    Some(generator.period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn tiny_spec() -> RunSpec {
        let mut campaign = CampaignSpec::smoke();
        campaign.mix_count = 1;
        campaign.threads_per_mix = 2;
        campaign.scale.benign_instructions = 500;
        campaign.scale.min_cycles = 20_000;
        campaign.expand().remove(campaign.run_count() - 1)
    }

    #[test]
    fn attack_period_is_none_for_benign_slots() {
        let spec = tiny_spec();
        let benign = spec
            .threads
            .iter()
            .position(|t| !t.is_attacker)
            .expect("smoke specs mix attackers with benign threads");
        assert_eq!(attack_period(&spec, benign), None);
        if let Some(attacker) = spec.threads.iter().position(|t| t.is_attacker) {
            assert!(attack_period(&spec, attacker).is_some());
        }
    }

    #[test]
    fn runs_produce_thread_outcomes_in_order() {
        let spec = tiny_spec();
        let outcome = run_spec(&spec).expect("run succeeds");
        assert_eq!(outcome.threads.len(), spec.threads.len());
        for (thread, spec_thread) in outcome.threads.iter().zip(&spec.threads) {
            assert_eq!(thread.name, spec_thread.name);
            assert_eq!(thread.is_attacker, spec_thread.is_attacker);
        }
        assert!(outcome.total_cycles > 0);
        assert!(outcome.activations > 0);
        assert!(outcome.metrics.is_none(), "no alone-IPC references given");
    }

    #[test]
    fn mismatched_alone_references_error_instead_of_panicking() {
        let mut spec = tiny_spec();
        spec.alone_ipc = vec![1.0, 1.0, 1.0];
        assert!(matches!(run_spec(&spec), Err(CampaignError::Spec { .. })));
    }

    #[test]
    fn misordered_attacker_thread_is_rejected() {
        // The builder forces the attacker to thread 0; a hand-built spec
        // listing it elsewhere must error instead of silently pairing
        // threads with the wrong generators.
        let mut spec = tiny_spec();
        assert!(
            spec.threads[0].is_attacker,
            "attack run leads with attacker"
        );
        spec.threads.swap(0, 1);
        spec.threads[0].trace = Some(TraceSource {
            path: std::path::PathBuf::from("unused.trace"),
            repeat: false,
        });
        match run_spec(&spec) {
            Err(CampaignError::Spec { message, .. }) => {
                assert!(message.contains("attacker"), "got: {message}")
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
        spec.threads[0].trace = None;
        match record_run_traces(&spec, std::path::Path::new("unused"), TraceFormat::Binary) {
            Err(CampaignError::Spec { .. }) => {}
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn missing_trace_file_is_a_positioned_error() {
        let mut spec = tiny_spec();
        spec.threads[0].trace = Some(TraceSource {
            path: std::path::PathBuf::from("does/not/exist.trace"),
            repeat: false,
        });
        match run_spec(&spec) {
            Err(CampaignError::Trace { run, .. }) => assert_eq!(run, spec.name),
            other => panic!("expected a trace error, got {other:?}"),
        }
    }
}
