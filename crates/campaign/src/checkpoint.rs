//! Append-only campaign checkpoint journal: crash-safe resume state.
//!
//! A campaign is a deterministic, ordered run list (PR 4), so the only
//! state needed to resume one is *how far it got*. The journal records
//! exactly that: each delivered run result — completed outcome or
//! quarantined failure — is appended, in run order, the moment it is
//! known, and flushed before the campaign moves on. A killed process
//! therefore leaves a journal holding every finished run plus at most
//! one torn trailing record, and [`resume_or_create`] turns that back
//! into a campaign that re-runs only the tail.
//!
//! # On-disk format
//!
//! The format follows the binary trace conventions of
//! [`crate::trace`] (magic + version byte, length-prefixed records,
//! LEB128 varints), hardened for its job as recovery state:
//!
//! ```text
//! header:  "BHCJ" | version (1 byte) | spec fingerprint (u64 LE)
//!          | total runs (u64 LE)
//! record:  payload length (varint) | payload | FNV-1a 64 checksum of
//!          the payload (u64 LE)
//! payload: tag (0 = outcome, 1 = failure) | tag-specific fields
//!          (varints, length-prefixed UTF-8 strings, f64 bit patterns LE)
//! ```
//!
//! The header pins *which* campaign the journal belongs to: the
//! fingerprint hashes every field of the [`CampaignSpec`], so resuming
//! with a different spec (different seed, axes, scale…) is refused with
//! [`JournalError::SpecMismatch`] instead of silently splicing results
//! from two different sweeps. The per-record checksum makes torn or
//! bit-flipped trailing records detectable: [`parse_journal`] stops at
//! the first record that fails its checksum (or frame), reports the
//! clean prefix, and [`resume_or_create`] truncates the file back to
//! that prefix before appending — a corrupt record is *dropped*, never
//! trusted (property-pinned in `tests/tests/checkpoint_robustness.rs`).

use crate::runner::{FailedRun, RunOutcome, ThreadOutcome};
use crate::spec::{CampaignSpec, Scenario};
use crate::trace::{read_varint, write_varint};
use sim::{AdvanceMode, MultiProgramMetrics, SteppingStats};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every checkpoint journal ("BlockHammer Campaign
/// Journal", sibling of the trace format's `BHTB`).
pub const JOURNAL_MAGIC: [u8; 4] = *b"BHCJ";
/// Current journal format version.
pub const JOURNAL_VERSION: u8 = 1;
/// Fixed header size: magic, version, spec fingerprint, total runs.
const HEADER_LEN: usize = 4 + 1 + 8 + 8;
/// Sanity bound on a single record payload. Real payloads are a few
/// hundred bytes (one `RunOutcome` with its threads); anything claiming
/// to be larger is a corrupt length prefix, not a record worth reading.
const MAX_PAYLOAD: u64 = 1 << 22;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Why a journal could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file is not a journal (bad magic/version) or its fixed header
    /// is torn.
    Header {
        /// What was wrong with it.
        message: String,
    },
    /// The journal belongs to a different campaign (fingerprint or run
    /// count mismatch) — resuming would splice unrelated results.
    SpecMismatch {
        /// What diverged.
        message: String,
    },
    /// A record in the *interior* of the journal is structurally invalid
    /// even though its checksum passes, or replayed entries contradict
    /// the campaign's run list. (Trailing torn/corrupt records are not
    /// errors: they are detected by checksum and dropped.)
    Corrupt {
        /// 0-based index of the offending record.
        record: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Header { message } => write!(f, "bad journal header: {message}"),
            JournalError::SpecMismatch { message } => {
                write!(f, "journal belongs to a different campaign: {message}")
            }
            JournalError::Corrupt { record, message } => {
                write!(f, "corrupt journal record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One journaled run result, in campaign run order.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// The run completed and produced an outcome.
    Outcome(RunOutcome),
    /// The run was quarantined after failing (see
    /// `campaign::FailurePolicy`).
    Failure(FailedRun),
}

impl JournalEntry {
    /// The run's position in the campaign run order.
    pub fn index(&self) -> usize {
        match self {
            JournalEntry::Outcome(outcome) => outcome.index,
            JournalEntry::Failure(failure) => failure.index,
        }
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        match self {
            JournalEntry::Outcome(outcome) => &outcome.name,
            JournalEntry::Failure(failure) => &failure.name,
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

/// FNV-1a over `bytes`, continuing from `hash`.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes one length-delimited field (length first, so `["ab","c"]` and
/// `["a","bc"]` fingerprint differently).
fn mix_bytes(hash: u64, bytes: &[u8]) -> u64 {
    fnv1a(bytes, fnv1a(&(bytes.len() as u64).to_le_bytes(), hash))
}

fn mix_u64(hash: u64, value: u64) -> u64 {
    fnv1a(&value.to_le_bytes(), hash)
}

/// Content fingerprint of a campaign spec: every field that influences
/// the expanded run list or the per-run results participates, so two
/// specs fingerprint equal exactly when their campaigns are
/// interchangeable for resume purposes.
pub fn fingerprint(spec: &CampaignSpec) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = mix_bytes(hash, spec.name.as_bytes());
    hash = mix_u64(hash, spec.mix_count as u64);
    hash = mix_u64(hash, spec.threads_per_mix as u64);
    hash = mix_u64(hash, spec.scenarios.len() as u64);
    for scenario in &spec.scenarios {
        hash = mix_bytes(hash, Scenario::label(scenario).as_bytes());
    }
    hash = mix_u64(hash, spec.defenses.len() as u64);
    for defense in &spec.defenses {
        hash = mix_bytes(hash, defense.label().as_bytes());
    }
    hash = mix_u64(hash, spec.n_rh_points.len() as u64);
    for &n_rh in &spec.n_rh_points {
        hash = mix_u64(hash, n_rh);
    }
    hash = mix_u64(hash, spec.channel_counts.len() as u64);
    for &channels in &spec.channel_counts {
        hash = mix_u64(hash, channels as u64);
    }
    hash = mix_u64(hash, spec.scale.time_scale);
    hash = mix_u64(hash, spec.scale.benign_instructions);
    hash = mix_u64(hash, spec.scale.llc_bytes);
    hash = mix_u64(hash, spec.scale.min_cycles);
    hash = mix_u64(hash, spec.scale.max_cycles);
    hash = mix_u64(
        hash,
        match spec.scale.advance {
            AdvanceMode::Lockstep => 0,
            AdvanceMode::EventDriven => 1,
        },
    );
    hash = mix_u64(hash, spec.seed);
    mix_u64(hash, u64::from(spec.normalize))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, value: u64) {
    let mut buf = [0u8; 10];
    let n = write_varint(&mut buf, value);
    out.extend_from_slice(&buf[..n]);
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn push_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

/// Serializes one entry to its record payload (checksummed and
/// length-framed by the writer).
fn encode_entry(entry: &JournalEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    match entry {
        JournalEntry::Outcome(o) => {
            out.push(0);
            push_varint(&mut out, o.index as u64);
            push_str(&mut out, &o.name);
            push_str(&mut out, &o.scenario);
            push_str(&mut out, &o.defense);
            push_varint(&mut out, o.n_rh);
            push_varint(&mut out, o.channels as u64);
            push_varint(&mut out, o.total_cycles);
            push_varint(&mut out, o.activations);
            push_f64(&mut out, o.dram_energy_j);
            push_varint(&mut out, o.threads.len() as u64);
            for thread in &o.threads {
                push_str(&mut out, &thread.name);
                out.push(u8::from(thread.is_attacker));
                push_varint(&mut out, thread.instructions);
                push_varint(&mut out, thread.cycles);
                push_f64(&mut out, thread.ipc);
                push_f64(&mut out, thread.max_rhli);
                push_varint(&mut out, thread.memory_requests);
            }
            match &o.metrics {
                None => out.push(0),
                Some(m) => {
                    out.push(1);
                    push_f64(&mut out, m.weighted_speedup);
                    push_f64(&mut out, m.harmonic_speedup);
                    push_f64(&mut out, m.max_slowdown);
                    push_f64(&mut out, m.dram_energy_joules);
                }
            }
            push_varint(&mut out, o.stepping.cycles_simulated);
            push_varint(&mut out, o.stepping.cycles_skipped);
            push_varint(&mut out, o.stepping.events_processed);
            push_varint(&mut out, o.stepping.largest_jump);
        }
        JournalEntry::Failure(f) => {
            out.push(1);
            push_varint(&mut out, f.index as u64);
            push_str(&mut out, &f.name);
            push_str(&mut out, &f.scenario);
            push_str(&mut out, &f.defense);
            push_varint(&mut out, f.n_rh);
            push_varint(&mut out, f.channels as u64);
            push_varint(&mut out, u64::from(f.attempts));
            push_str(&mut out, &f.cause);
        }
    }
    out
}

struct PayloadCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadCursor<'a> {
    fn u64(&mut self) -> Result<u64, String> {
        read_varint(self.bytes, &mut self.at)
    }

    fn usize(&mut self) -> Result<usize, String> {
        let value = self.u64()?;
        usize::try_from(value).map_err(|_| format!("value {value} overflows usize"))
    }

    fn byte(&mut self) -> Result<u8, String> {
        let byte = *self
            .bytes
            .get(self.at)
            .ok_or_else(|| "payload truncated".to_owned())?;
        self.at += 1;
        Ok(byte)
    }

    fn f64(&mut self) -> Result<f64, String> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| "payload truncated in f64".to_owned())?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.usize()?;
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| "payload truncated in string".to_owned())?;
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| "string is not valid UTF-8".to_owned())?
            .to_owned();
        self.at = end;
        Ok(s)
    }
}

/// Deserializes one record payload. Called only after the checksum
/// passed, so a failure here means a writer bug or a crafted file — it
/// surfaces as [`JournalError::Corrupt`], never a panic.
fn decode_entry(payload: &[u8]) -> Result<JournalEntry, String> {
    let mut cursor = PayloadCursor {
        bytes: payload,
        at: 0,
    };
    let entry = match cursor.byte()? {
        0 => {
            let index = cursor.usize()?;
            let name = cursor.string()?;
            let scenario = cursor.string()?;
            let defense = cursor.string()?;
            let n_rh = cursor.u64()?;
            let channels = cursor.usize()?;
            let total_cycles = cursor.u64()?;
            let activations = cursor.u64()?;
            let dram_energy_j = cursor.f64()?;
            let thread_count = cursor.usize()?;
            if thread_count > payload.len() {
                // Each thread needs several payload bytes; a count beyond
                // the payload length is corrupt, not a huge allocation.
                return Err(format!("thread count {thread_count} exceeds payload size"));
            }
            let mut threads = Vec::with_capacity(thread_count);
            for _ in 0..thread_count {
                threads.push(ThreadOutcome {
                    name: cursor.string()?,
                    is_attacker: cursor.byte()? != 0,
                    instructions: cursor.u64()?,
                    cycles: cursor.u64()?,
                    ipc: cursor.f64()?,
                    max_rhli: cursor.f64()?,
                    memory_requests: cursor.u64()?,
                });
            }
            let metrics = match cursor.byte()? {
                0 => None,
                1 => Some(MultiProgramMetrics {
                    weighted_speedup: cursor.f64()?,
                    harmonic_speedup: cursor.f64()?,
                    max_slowdown: cursor.f64()?,
                    dram_energy_joules: cursor.f64()?,
                }),
                other => return Err(format!("unknown metrics tag {other}")),
            };
            let stepping = SteppingStats {
                cycles_simulated: cursor.u64()?,
                cycles_skipped: cursor.u64()?,
                events_processed: cursor.u64()?,
                largest_jump: cursor.u64()?,
            };
            JournalEntry::Outcome(RunOutcome {
                index,
                name,
                scenario,
                defense,
                n_rh,
                channels,
                total_cycles,
                activations,
                dram_energy_j,
                threads,
                metrics,
                stepping,
            })
        }
        1 => {
            let index = cursor.usize()?;
            let name = cursor.string()?;
            let scenario = cursor.string()?;
            let defense = cursor.string()?;
            let n_rh = cursor.u64()?;
            let channels = cursor.usize()?;
            let attempts_raw = cursor.u64()?;
            let attempts = u32::try_from(attempts_raw)
                .map_err(|_| format!("attempt count {attempts_raw} overflows u32"))?;
            let cause = cursor.string()?;
            JournalEntry::Failure(FailedRun {
                index,
                name,
                scenario,
                defense,
                n_rh,
                channels,
                attempts,
                cause,
            })
        }
        other => return Err(format!("unknown entry tag {other}")),
    };
    if cursor.at != payload.len() {
        return Err(format!(
            "{} trailing byte(s) in record payload",
            payload.len() - cursor.at
        ));
    }
    Ok(entry)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Result of scanning journal bytes: the clean prefix and where it ends.
#[derive(Debug)]
pub struct JournalScan {
    /// The decoded entries of the clean prefix, in run order.
    pub entries: Vec<JournalEntry>,
    /// Byte length of the clean prefix (header + intact records) — the
    /// offset resume truncates the file to before appending.
    pub good_len: u64,
    /// Whether trailing bytes after the clean prefix were dropped
    /// (a torn or corrupt final record from an interrupted writer).
    pub dropped_trailing: bool,
}

/// Parses journal `bytes`, validating the header against the expected
/// campaign identity and decoding records until the first torn or
/// checksum-failing one (which, together with everything after it, is
/// dropped rather than trusted).
///
/// # Errors
///
/// * [`JournalError::Header`] if the fixed header is torn or not a
///   journal;
/// * [`JournalError::SpecMismatch`] if the journal was written for a
///   different campaign;
/// * [`JournalError::Corrupt`] if a checksum-valid record fails to
///   decode or its run index is out of order — states an append-only
///   writer cannot produce, so nothing after them is trustworthy.
pub fn parse_journal(
    bytes: &[u8],
    expect_fingerprint: u64,
    expect_total_runs: u64,
) -> Result<JournalScan, JournalError> {
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::Header {
            message: format!(
                "file is {} byte(s), shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            ),
        });
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err(JournalError::Header {
            message: "bad magic (not a BHCJ journal)".to_owned(),
        });
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(JournalError::Header {
            message: format!(
                "unsupported version {} (expected {JOURNAL_VERSION})",
                bytes[4]
            ),
        });
    }
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[5..13]);
    let fingerprint = u64::from_le_bytes(word);
    word.copy_from_slice(&bytes[13..21]);
    let total_runs = u64::from_le_bytes(word);
    if fingerprint != expect_fingerprint {
        return Err(JournalError::SpecMismatch {
            message: format!(
                "spec fingerprint {fingerprint:#018x} != expected {expect_fingerprint:#018x}"
            ),
        });
    }
    if total_runs != expect_total_runs {
        return Err(JournalError::SpecMismatch {
            message: format!("journal covers {total_runs} runs, campaign has {expect_total_runs}"),
        });
    }

    let mut entries = Vec::new();
    let mut good_len = HEADER_LEN;
    let mut cursor = HEADER_LEN;
    let mut dropped_trailing = false;
    while cursor < bytes.len() {
        let record_ok = (|| {
            let mut at = cursor;
            let payload_len = read_varint(bytes, &mut at).ok()?;
            if payload_len == 0 || payload_len > MAX_PAYLOAD {
                return None;
            }
            let payload_len = payload_len as usize;
            let payload_end = at.checked_add(payload_len)?;
            let frame_end = payload_end.checked_add(8)?;
            if frame_end > bytes.len() {
                return None;
            }
            let payload = &bytes[at..payload_end];
            let mut checksum = [0u8; 8];
            checksum.copy_from_slice(&bytes[payload_end..frame_end]);
            if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(checksum) {
                return None;
            }
            Some((payload, frame_end))
        })();
        let Some((payload, frame_end)) = record_ok else {
            // Torn or bit-flipped trailing record: drop it and everything
            // after it. The clean prefix is still a valid resume point.
            dropped_trailing = true;
            break;
        };
        let record = entries.len() as u64;
        let entry =
            decode_entry(payload).map_err(|message| JournalError::Corrupt { record, message })?;
        if entry.index() != entries.len() {
            return Err(JournalError::Corrupt {
                record,
                message: format!(
                    "record holds run index {} at journal position {}",
                    entry.index(),
                    entries.len()
                ),
            });
        }
        if entries.len() as u64 >= total_runs {
            return Err(JournalError::Corrupt {
                record,
                message: format!("more records than the campaign's {total_runs} runs"),
            });
        }
        entries.push(entry);
        cursor = frame_end;
        good_len = frame_end;
    }
    Ok(JournalScan {
        entries,
        good_len: good_len as u64,
        dropped_trailing,
    })
}

/// Reads and parses the journal at `path` (see [`parse_journal`]).
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn read_journal(
    path: &Path,
    expect_fingerprint: u64,
    expect_total_runs: u64,
) -> Result<JournalScan, JournalError> {
    let bytes = std::fs::read(path)?;
    parse_journal(&bytes, expect_fingerprint, expect_total_runs)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Appends run results to an open journal, flushing each record before
/// returning so a completed run is durable before the next one starts.
pub struct JournalWriter {
    sink: File,
    records: u64,
}

impl JournalWriter {
    /// Appends one entry (length frame + payload + checksum) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let payload = encode_entry(entry);
        let mut frame = Vec::with_capacity(payload.len() + 18);
        push_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload, FNV_OFFSET).to_le_bytes());
        self.sink.write_all(&frame)?;
        self.sink.flush()?;
        self.records += 1;
        crate::faults::after_journal_append(self.records);
        Ok(())
    }

    /// Records appended across the journal's lifetime (including the
    /// replayed prefix this writer resumed from).
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// An opened (or freshly created) journal, ready to resume from.
pub struct ResumedJournal {
    /// The clean prefix of already-finished runs, in run order; empty
    /// for a fresh journal.
    pub entries: Vec<JournalEntry>,
    /// Whether a torn/corrupt trailing record was dropped (and truncated
    /// away) while opening.
    pub dropped_trailing: bool,
    /// The writer positioned after the clean prefix.
    pub writer: JournalWriter,
}

/// Opens the journal at `path` for the campaign identified by
/// `fingerprint`/`total_runs`, creating it (with its header) if absent
/// or empty. An existing journal is scanned, any torn trailing record
/// truncated away, and the writer positioned to append after the clean
/// prefix.
///
/// # Errors
///
/// Propagates I/O errors and every [`parse_journal`] failure — notably
/// [`JournalError::SpecMismatch`] when the journal on disk belongs to a
/// different campaign.
pub fn resume_or_create(
    path: &Path,
    fingerprint: u64,
    total_runs: u64,
) -> Result<ResumedJournal, JournalError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let existing_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if existing_len == 0 {
        // Fresh journal (or a file created but killed before the header
        // flush, which holds no information): write the header.
        let mut sink = File::create(path)?;
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&JOURNAL_MAGIC);
        header[4] = JOURNAL_VERSION;
        header[5..13].copy_from_slice(&fingerprint.to_le_bytes());
        header[13..21].copy_from_slice(&total_runs.to_le_bytes());
        sink.write_all(&header)?;
        sink.flush()?;
        return Ok(ResumedJournal {
            entries: Vec::new(),
            dropped_trailing: false,
            writer: JournalWriter { sink, records: 0 },
        });
    }
    let mut sink = OpenOptions::new().read(true).write(true).open(path)?;
    let mut bytes = Vec::with_capacity(existing_len as usize);
    sink.read_to_end(&mut bytes)?;
    let scan = parse_journal(&bytes, fingerprint, total_runs)?;
    if scan.good_len < bytes.len() as u64 {
        sink.set_len(scan.good_len)?;
    }
    sink.seek(SeekFrom::Start(scan.good_len))?;
    let records = scan.entries.len() as u64;
    Ok(ResumedJournal {
        entries: scan.entries,
        dropped_trailing: scan.dropped_trailing,
        writer: JournalWriter { sink, records },
    })
}

// ---------------------------------------------------------------------------
// Prelude cache
// ---------------------------------------------------------------------------

/// Magic prefix of the prelude cache (`"BHPC"`, BlockHammer Prelude
/// Cache).
const PRELUDE_MAGIC: [u8; 4] = *b"BHPC";
/// Prelude cache format version.
const PRELUDE_VERSION: u8 = 1;

/// Fingerprint of a normalization prelude: the campaign fields that
/// influence a stand-alone IPC measurement (scale, advance mode, seed)
/// plus the sorted (workload name, channel count) key list. Defense and
/// attack axes deliberately do *not* participate — the references are
/// measured on the unprotected baseline with the benign workload alone,
/// so two campaigns differing only in those axes share a cache.
pub fn prelude_fingerprint(spec: &CampaignSpec, keys: &[(String, usize)]) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = mix_u64(hash, spec.scale.time_scale);
    hash = mix_u64(hash, spec.scale.benign_instructions);
    hash = mix_u64(hash, spec.scale.llc_bytes);
    hash = mix_u64(hash, spec.scale.min_cycles);
    hash = mix_u64(hash, spec.scale.max_cycles);
    hash = mix_u64(
        hash,
        match spec.scale.advance {
            AdvanceMode::Lockstep => 0,
            AdvanceMode::EventDriven => 1,
        },
    );
    hash = mix_u64(hash, spec.seed);
    hash = mix_u64(hash, keys.len() as u64);
    for (name, channels) in keys {
        hash = mix_bytes(hash, name.as_bytes());
        hash = mix_u64(hash, *channels as u64);
    }
    hash
}

/// Reads the prelude cache at `path`, returning its sorted
/// `(workload, channels, alone IPC)` entries only when the whole file
/// is intact *and* its stored fingerprint equals `fingerprint`. Any
/// mismatch, truncation or corruption returns `None`: the cache is an
/// optimization, so the worst a bad file can cost is one recomputed
/// prelude, never a wrong table.
pub fn load_prelude_cache(path: &Path, fingerprint: u64) -> Option<Vec<(String, usize, f64)>> {
    let bytes = std::fs::read(path).ok()?;
    // magic + version + fingerprint + entry count + trailing checksum.
    let header_len = 4 + 1 + 8 + 8;
    if bytes.len() < header_len + 8 || bytes[..4] != PRELUDE_MAGIC || bytes[4] != PRELUDE_VERSION {
        return None;
    }
    let body = &bytes[..bytes.len() - 8];
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(&bytes[bytes.len() - 8..]);
    if fnv1a(body, FNV_OFFSET) != u64::from_le_bytes(checksum) {
        return None;
    }
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[5..13]);
    if u64::from_le_bytes(stored) != fingerprint {
        return None;
    }
    let mut count = [0u8; 8];
    count.copy_from_slice(&bytes[13..21]);
    let count = usize::try_from(u64::from_le_bytes(count)).ok()?;
    if count > body.len() {
        // Each entry needs several payload bytes; a count beyond the
        // body length is corrupt, not a huge allocation.
        return None;
    }
    let mut cursor = PayloadCursor {
        bytes: &body[header_len..],
        at: 0,
    };
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name = cursor.string().ok()?;
        let channels = cursor.usize().ok()?;
        let ipc = cursor.f64().ok()?;
        if let Some(&(ref last_name, last_channels, _)) = entries.last() {
            // The executor binary-searches this table: refuse an
            // unsorted (or duplicated) file rather than missing lookups.
            if (last_name, last_channels) >= (&name, channels) {
                return None;
            }
        }
        entries.push((name, channels, ipc));
    }
    if cursor.at != body.len() - header_len {
        return None;
    }
    Some(entries)
}

/// Writes the prelude cache (atomically, via the same staging-rename as
/// every artifact): header, length-delimited entries, FNV-1a trailer.
/// `entries` must be sorted by (name, channels) — the order
/// [`load_prelude_cache`] enforces.
///
/// # Errors
///
/// Propagates I/O errors (callers treat them as "no cache this time").
pub fn store_prelude_cache(
    path: &Path,
    fingerprint: u64,
    entries: &[(String, usize, f64)],
) -> io::Result<()> {
    let mut out = Vec::with_capacity(64 + entries.len() * 32);
    out.extend_from_slice(&PRELUDE_MAGIC);
    out.push(PRELUDE_VERSION);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (name, channels, ipc) in entries {
        push_str(&mut out, name);
        push_varint(&mut out, *channels as u64);
        push_f64(&mut out, *ipc);
    }
    let checksum = fnv1a(&out, FNV_OFFSET);
    out.extend_from_slice(&checksum.to_le_bytes());
    crate::artifacts::write_atomic(path, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bh-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_outcome(index: usize) -> RunOutcome {
        RunOutcome {
            index,
            name: format!("mix-{index:03}/Baseline/nrh32768/ch1"),
            scenario: if index % 2 == 0 {
                "attack"
            } else {
                "no-attack"
            }
            .to_owned(),
            defense: "Baseline".to_owned(),
            n_rh: 32_768,
            channels: 1,
            total_cycles: 100_000 + index as u64,
            activations: 4_200 * (index as u64 + 1),
            dram_energy_j: 0.125 * (index as f64 + 1.0),
            threads: vec![
                ThreadOutcome {
                    name: "attacker.double_sided".to_owned(),
                    is_attacker: true,
                    instructions: 0,
                    cycles: 100_000,
                    ipc: 0.0,
                    max_rhli: 0.93,
                    memory_requests: 50_000,
                },
                ThreadOutcome {
                    name: "streaming.a".to_owned(),
                    is_attacker: false,
                    instructions: 2_000,
                    cycles: 90_000 + index as u64,
                    ipc: 0.022,
                    max_rhli: 0.01,
                    memory_requests: 512,
                },
            ],
            metrics: (index % 2 == 0).then_some(MultiProgramMetrics {
                weighted_speedup: 0.87,
                harmonic_speedup: 0.85,
                max_slowdown: 1.31,
                dram_energy_joules: 0.125,
            }),
            stepping: SteppingStats {
                cycles_simulated: 40_000,
                cycles_skipped: 60_000,
                events_processed: 39_000,
                largest_jump: 1_600,
            },
        }
    }

    fn sample_failure(index: usize) -> FailedRun {
        FailedRun {
            index,
            name: format!("mix-{index:03}/Para/nrh32768/ch1"),
            scenario: "attack".to_owned(),
            defense: "Para".to_owned(),
            n_rh: 32_768,
            channels: 1,
            attempts: 3,
            cause: "panicked: injected fault, with \"quotes\" and a\nnewline".to_owned(),
        }
    }

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Outcome(sample_outcome(0)),
            JournalEntry::Failure(sample_failure(1)),
            JournalEntry::Outcome(sample_outcome(2)),
        ]
    }

    fn write_sample_journal(path: &Path, fingerprint: u64, total: u64) -> Vec<JournalEntry> {
        let entries = sample_entries();
        let mut resumed = resume_or_create(path, fingerprint, total).expect("create");
        for entry in &entries {
            resumed.writer.append(entry).expect("append");
        }
        entries
    }

    #[test]
    fn entries_round_trip_through_the_payload_encoding() {
        for entry in sample_entries() {
            let payload = encode_entry(&entry);
            assert_eq!(decode_entry(&payload).expect("decode"), entry);
        }
    }

    #[test]
    fn a_journal_round_trips_through_disk() {
        let path = scratch("roundtrip.journal");
        let entries = write_sample_journal(&path, 0xfeed, 8);
        let scan = read_journal(&path, 0xfeed, 8).expect("read");
        assert_eq!(scan.entries, entries);
        assert!(!scan.dropped_trailing);
    }

    #[test]
    fn resume_continues_after_the_existing_prefix() {
        let path = scratch("resume.journal");
        let entries = write_sample_journal(&path, 0xfeed, 8);
        let mut resumed = resume_or_create(&path, 0xfeed, 8).expect("resume");
        assert_eq!(resumed.entries, entries);
        assert_eq!(resumed.writer.records(), 3);
        resumed
            .writer
            .append(&JournalEntry::Outcome(sample_outcome(3)))
            .expect("append");
        let scan = read_journal(&path, 0xfeed, 8).expect("read");
        assert_eq!(scan.entries.len(), 4);
        assert_eq!(scan.entries[3].index(), 3);
    }

    #[test]
    fn a_torn_trailing_record_is_dropped_and_truncated() {
        let path = scratch("torn.journal");
        write_sample_journal(&path, 0xfeed, 8);
        let full = std::fs::read(&path).expect("read bytes");
        // Chop mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 5]).expect("truncate");
        let resumed = resume_or_create(&path, 0xfeed, 8).expect("resume");
        assert_eq!(resumed.entries.len(), 2, "last record dropped");
        assert!(resumed.dropped_trailing);
        // The file was truncated back to the clean prefix and appending
        // after it yields a clean three-record journal again.
        drop(resumed);
        let mut resumed = resume_or_create(&path, 0xfeed, 8).expect("reopen");
        assert!(!resumed.dropped_trailing, "truncation was persisted");
        resumed
            .writer
            .append(&JournalEntry::Outcome(sample_outcome(2)))
            .expect("append");
        let scan = read_journal(&path, 0xfeed, 8).expect("read");
        assert_eq!(scan.entries.len(), 3);
        assert!(!scan.dropped_trailing);
    }

    #[test]
    fn a_flipped_byte_in_the_last_record_fails_its_checksum() {
        let path = scratch("flipped.journal");
        let entries = write_sample_journal(&path, 0xfeed, 8);
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let last = bytes.len() - 12; // inside the final record's payload
        bytes[last] ^= 0x40;
        let scan = parse_journal(&bytes, 0xfeed, 8).expect("scan");
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.entries, entries[..2]);
        assert!(scan.dropped_trailing);
    }

    #[test]
    fn mismatched_fingerprint_or_run_count_is_refused() {
        let path = scratch("mismatch.journal");
        write_sample_journal(&path, 0xfeed, 8);
        assert!(matches!(
            read_journal(&path, 0xbeef, 8),
            Err(JournalError::SpecMismatch { .. })
        ));
        assert!(matches!(
            read_journal(&path, 0xfeed, 9),
            Err(JournalError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn non_journals_and_torn_headers_are_structured_errors() {
        assert!(matches!(
            parse_journal(b"BHCJ", 0, 0),
            Err(JournalError::Header { .. })
        ));
        assert!(matches!(
            parse_journal(b"BHTB\x01aaaaaaaabbbbbbbb", 0, 0),
            Err(JournalError::Header { .. })
        ));
        let mut versioned = Vec::new();
        versioned.extend_from_slice(&JOURNAL_MAGIC);
        versioned.push(99);
        versioned.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            parse_journal(&versioned, 0, 0),
            Err(JournalError::Header { .. })
        ));
    }

    #[test]
    fn out_of_order_interior_records_are_corrupt() {
        let path = scratch("order.journal");
        let mut resumed = resume_or_create(&path, 1, 8).expect("create");
        resumed
            .writer
            .append(&JournalEntry::Outcome(sample_outcome(1)))
            .expect("append");
        assert!(matches!(
            read_journal(&path, 1, 8),
            Err(JournalError::Corrupt { record: 0, .. })
        ));
    }

    #[test]
    fn fingerprints_distinguish_campaign_specs() {
        let base = CampaignSpec::smoke();
        let fp = fingerprint(&base);
        assert_eq!(fp, fingerprint(&CampaignSpec::smoke()), "stable");
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(fp, fingerprint(&seeded));
        let mut scaled = base.clone();
        scaled.scale.benign_instructions += 1;
        assert_ne!(fp, fingerprint(&scaled));
        let mut renamed = base.clone();
        renamed.name.push('!');
        assert_ne!(fp, fingerprint(&renamed));
        let mut denormalized = base;
        denormalized.normalize = false;
        assert_ne!(fp, fingerprint(&denormalized));
    }
}
