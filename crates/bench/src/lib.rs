//! # bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! BlockHammer paper's evaluation.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Harness binaries** (`src/bin/*.rs`, run with
//!   `cargo run --release -p bench --bin <name>`): one per table/figure,
//!   printing the same rows or series the paper reports. Each accepts an
//!   optional scale argument (`quick` or `standard`, default `standard`).
//! * **Criterion micro-benchmarks** (`benches/*.rs`, run with
//!   `cargo bench -p bench`): latency/throughput of the core BlockHammer
//!   structures (the Section 6.2 query-latency claim) and of the simulator
//!   substrate.
//!
//! The mapping from paper experiment to target is listed in DESIGN.md §3
//! and the measured-vs-paper comparison in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::experiments::ExperimentScale;

/// Parses the common command-line argument of the harness binaries: an
/// optional `quick` / `standard` scale selector (default `standard`).
pub fn scale_from_args() -> ExperimentScale {
    match std::env::args().nth(1).as_deref() {
        Some("quick") => ExperimentScale::quick(),
        Some("standard") | None => ExperimentScale::standard(),
        Some(other) => {
            eprintln!("unknown scale `{other}`, expected `quick` or `standard`; using standard");
            ExperimentScale::standard()
        }
    }
}

/// The full-scale RowHammer threshold used by most experiments (the paper's
/// realistic contemporary value, Section 1).
pub const PAPER_N_RH: u64 = 32_768;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_standard() {
        // No CLI arguments in the test harness beyond the test binary name,
        // so the default branch is taken.
        let scale = scale_from_args();
        assert!(scale.benign_instructions >= ExperimentScale::quick().benign_instructions);
    }
}
