//! Regenerates Table 4: per-rank metadata storage, chip area, access energy
//! and static power of BlockHammer and the six baselines, at N_RH = 32K and
//! N_RH = 1K.

use blockhammer::hwcost;
use mitigations::{DefenseGeometry, RowHammerThreshold};

fn main() {
    let geometry = DefenseGeometry::default();
    println!("Table 4: hardware cost comparison (analytic model, see DESIGN.md)\n");
    for n_rh in [32_768u64, 1_024] {
        println!("=== N_RH = {n_rh} ===");
        let rows = hwcost::table4(RowHammerThreshold::new(n_rh), &geometry);
        print!("{}", hwcost::render_table(&rows));
        println!();
    }
    println!(
        "Note: coefficients are calibrated to the paper's BlockHammer figures at\n\
         N_RH = 32K; the scaling from 32K to 1K is the quantity to compare."
    );
}
