//! Regenerates Table 7: BlockHammer's configuration parameters for every
//! evaluated RowHammer threshold (32K down to 1K).

use blockhammer::config::BlockHammerConfig;
use mitigations::DefenseGeometry;

fn main() {
    let geometry = DefenseGeometry::default();
    println!("Table 7: BlockHammer configurations per RowHammer threshold\n");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>10} {:>14} {:>12}",
        "N_RH", "N_RH*", "CBF size", "N_BL", "tCBF", "tDelay (us)", "HB entries"
    );
    for config in BlockHammerConfig::table7(&geometry) {
        println!(
            "{:>8} {:>8} {:>10} {:>8} {:>10} {:>14.2} {:>12}",
            config.n_rh,
            config.n_rh_star,
            config.cbf_size,
            config.n_bl,
            "64 ms",
            config.t_delay_us(3.2e9),
            config.history_entries
        );
    }
}
