//! Regenerates the Section 5 security analysis (Tables 2 and 3): the
//! epoch-type activation bounds and the conclusion that no access pattern
//! can exceed the RowHammer threshold on a BlockHammer-protected system.

use blockhammer::config::BlockHammerConfig;
use blockhammer::security;
use mitigations::{DefenseGeometry, RowHammerThreshold};

fn main() {
    let geometry = DefenseGeometry::default();
    println!("Section 5 security analysis\n");
    for n_rh in [32_768u64, 16_384, 8_192, 4_096, 2_048, 1_024] {
        let config =
            BlockHammerConfig::for_rowhammer_threshold(RowHammerThreshold::new(n_rh), &geometry);
        println!("--- N_RH = {n_rh} (N_RH* = {}) ---", config.n_rh_star);
        println!("Table 2 epoch-type bounds (max activations per epoch):");
        for bound in security::epoch_type_table(&config) {
            println!("  {:?}: {}", bound.epoch_type, bound.max_activations);
        }
        let analysis = security::max_activations_in_refresh_window(&config);
        println!(
            "optimal attack: {} activations per refresh window across epochs {:?}",
            analysis.max_activations, analysis.per_epoch
        );
        println!(
            "=> {} (limit N_RH* = {})\n",
            if analysis.safe {
                "NO successful RowHammer attack exists"
            } else {
                "UNSAFE configuration"
            },
            analysis.n_rh_star
        );
    }
}
