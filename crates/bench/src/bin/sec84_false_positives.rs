//! Regenerates the Section 8.4 analysis: BlockHammer's false-positive rate
//! and the distribution of the delay penalty mistakenly-delayed activations
//! experience.

use bench::{scale_from_args, PAPER_N_RH};
use sim::experiments::false_positive_study;
use sim::report::render_false_positives;

fn main() {
    let scale = scale_from_args();
    let study = false_positive_study(&scale, PAPER_N_RH);
    print!("{}", render_false_positives(&study));
    println!(
        "\nExpected shape (paper): false positive rate around 0.01%, delay\n\
         percentiles well below the theoretical tDelay bound."
    );
}
