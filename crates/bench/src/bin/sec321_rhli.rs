//! Regenerates the Section 3.2.1 RHLI study: the RowHammer likelihood index
//! of benign and attacker threads under BlockHammer's observe-only and
//! full-functional modes.

use bench::{scale_from_args, PAPER_N_RH};
use sim::experiments::rhli_study;
use sim::report::render_rhli;

fn main() {
    let scale = scale_from_args();
    let study = rhli_study(&scale, PAPER_N_RH);
    print!("{}", render_rhli(&study));
    println!(
        "\nExpected shape (paper): benign RHLI = 0; attacker RHLI well above 1 in\n\
         observe-only mode and pushed to (or below) 1 in full-functional mode."
    );
}
