//! Regenerates Table 1: BlockHammer's configuration for a DDR4 chip with
//! N_RH = 32K (blacklisting threshold, CBF sizing, tDelay, history buffer,
//! AttackThrottler counters).

use blockhammer::config::BlockHammerConfig;
use mitigations::{DefenseGeometry, RowHammerThreshold};

fn main() {
    let geometry = DefenseGeometry::default();
    let config =
        BlockHammerConfig::for_rowhammer_threshold(RowHammerThreshold::new(32_768), &geometry);
    println!("Table 1: BlockHammer parameters (DDR4, N_RH = 32K)\n");
    println!("DRAM features");
    println!("  N_RH            : {}", config.n_rh);
    println!("  N_RH*           : {}", config.n_rh_star);
    println!("  banks           : {}", geometry.total_banks);
    println!("  tREFW           : 64 ms");
    println!("  tRC             : 46.25 ns");
    println!("  tFAW            : 35 ns");
    println!("RowBlocker-BL");
    println!("  N_BL            : {}", config.n_bl);
    println!(
        "  tCBF            : {} cycles (= tREFW)",
        config.t_cbf_cycles
    );
    println!(
        "  tDelay          : {:.2} us (paper: 7.7 us)",
        config.t_delay_us(3.2e9)
    );
    println!("  CBF size        : {} counters per bank", config.cbf_size);
    println!(
        "  CBF hashing     : {} H3-class functions",
        config.cbf_hashes
    );
    println!("RowBlocker-HB");
    println!(
        "  history entries : {} per rank (paper: 887)",
        config.history_entries
    );
    println!("AttackThrottler");
    println!(
        "  2 counters per <thread, bank> pair ({} threads x {} banks)",
        geometry.threads, geometry.total_banks
    );
}
