//! Regenerates Figure 5: normalized weighted speedup, harmonic speedup,
//! maximum slowdown and DRAM energy of 8-core multiprogrammed mixes, with
//! and without a RowHammer attacker, for every mechanism.

use bench::{scale_from_args, PAPER_N_RH};
use sim::experiments::figure5;
use sim::report::render_multiprogram;

fn main() {
    let scale = scale_from_args();
    println!("Figure 5: multiprogrammed workloads, N_RH = {PAPER_N_RH} ({scale:?})\n");
    let rows = figure5(&scale, PAPER_N_RH);
    print!("{}", render_multiprogram(&rows));
    println!(
        "\nExpected shape (paper): ~1.00 for every mechanism without an attack;\n\
         with an attack BlockHammer raises weighted/harmonic speedup well above 1\n\
         and cuts DRAM energy, while all other mechanisms stay at or below 1.00."
    );
}
