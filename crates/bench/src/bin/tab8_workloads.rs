//! Regenerates Table 8: the benign workload catalog with measured MPKI and
//! row-buffer-conflict rates next to the values the paper reports for the
//! original applications.

use bench::scale_from_args;
use sim::experiments::table8;
use sim::report::render_table8;

fn main() {
    let scale = scale_from_args();
    println!("Table 8: benign applications (synthetic stand-ins), {scale:?}\n");
    let rows = table8(&scale);
    print!("{}", render_table8(&rows));
}
