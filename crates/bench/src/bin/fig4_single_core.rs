//! Regenerates Figure 4: execution time and DRAM energy of single-core
//! benign applications under each mitigation mechanism, normalized to the
//! unprotected baseline, grouped into the L / M / H categories.

use bench::{scale_from_args, PAPER_N_RH};
use sim::experiments::figure4;
use sim::report::render_figure4;

fn main() {
    let scale = scale_from_args();
    println!("Figure 4: single-core normalized execution time / DRAM energy ({scale:?})\n");
    let rows = figure4(&scale, PAPER_N_RH);
    print!("{}", render_figure4(&rows));
    println!(
        "\nExpected shape (paper): every mechanism ~1.00 for L/M; PARA and MRLoc\n\
         show small overheads for H; BlockHammer stays at 1.00 everywhere."
    );
}
