//! Regenerates Figure 6: the multiprogrammed study swept across RowHammer
//! thresholds (32K down to 1K) for PARA, TWiCe, Graphene and BlockHammer.

use bench::scale_from_args;
use sim::experiments::figure6;
use sim::report::render_multiprogram;

fn main() {
    let scale = scale_from_args();
    let thresholds = [32_768u64, 8_192, 2_048, 1_024];
    println!("Figure 6: N_RH scaling study ({scale:?})\n");
    let rows = figure6(&scale, &thresholds);
    print!("{}", render_multiprogram(&rows));
    println!(
        "\nExpected shape (paper): without an attack PARA's overhead grows as N_RH\n\
         shrinks while the others stay near 1.00; with an attack BlockHammer's\n\
         benefit grows as N_RH shrinks."
    );
}
