//! Campaign-engine throughput: how many whole simulation runs per second
//! the sweep executor sustains, sequentially and fanned out over the
//! persistent worker pool (1 run/iteration here is a full expand →
//! execute → aggregate cycle, so the numbers track everything a real
//! campaign pays: the normalization prelude, run execution and
//! incremental aggregation). Divide 1e9 by the reported ns/iter and
//! multiply by the run count for runs/sec.

use campaign::{execute, execute_resumable, CampaignSpec, ExecutionOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

/// A small 8-run campaign (2 mixes x 2 scenarios x 2 defenses) with a
/// reduced instruction budget, shared by every variant so the comparison
/// isolates the execution strategy.
fn bench_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = "bench".to_owned();
    spec.scale.benign_instructions = 500;
    spec.scale.min_cycles = 15_000;
    spec
}

fn run_campaign(workers: usize) -> usize {
    let spec = bench_campaign();
    let report = execute(&spec, spec.expand(), workers).expect("bench campaign runs");
    assert_eq!(report.outcomes.len(), spec.run_count());
    report.outcomes.len()
}

/// The same campaign with checkpoint journaling on — measures the cost
/// of the append-and-flush per delivered run on top of `sequential`.
fn run_journaled_campaign(journal: &PathBuf) -> usize {
    // Each iteration starts from a fresh journal: resuming would skip
    // the runs and measure nothing.
    let _ = std::fs::remove_file(journal);
    let spec = bench_campaign();
    let options = ExecutionOptions {
        journal: Some(journal.clone()),
        ..Default::default()
    };
    let report = execute_resumable(&spec, spec.expand(), 0, &options).expect("bench campaign runs");
    assert_eq!(report.outcomes.len(), spec.run_count());
    report.outcomes.len()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("sequential_8_runs", |b| {
        b.iter(|| black_box(run_campaign(0)))
    });
    for workers in [2usize, 4] {
        group.bench_function(format!("pooled_{workers}w_8_runs"), |b| {
            b.iter(|| black_box(run_campaign(workers)))
        });
    }
    let journal = std::env::temp_dir().join("bh-bench-campaign.journal");
    group.bench_function("journaled_sequential_8_runs", |b| {
        b.iter(|| black_box(run_journaled_campaign(&journal)))
    });
    let _ = std::fs::remove_file(&journal);
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
