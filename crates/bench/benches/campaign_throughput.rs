//! Campaign-engine throughput: how many whole simulation runs per second
//! the sweep executor sustains, sequentially and fanned out over the
//! persistent worker pool (1 run/iteration here is a full expand →
//! execute → aggregate cycle, so the numbers track everything a real
//! campaign pays: the normalization prelude, run execution and
//! incremental aggregation). Divide 1e9 by the reported ns/iter and
//! multiply by the run count for runs/sec.

use campaign::{
    execute, execute_resumable, CampaignReport, CampaignSpec, ExecutionOptions, RunSpec,
    SchedulerMode,
};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::AdvanceMode;
use std::hint::black_box;
use std::path::PathBuf;

/// A small 8-run campaign (2 mixes x 2 scenarios x 2 defenses) with a
/// reduced instruction budget, shared by every variant so the comparison
/// isolates the execution strategy.
fn bench_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = "bench".to_owned();
    spec.scale.benign_instructions = 500;
    spec.scale.min_cycles = 15_000;
    spec
}

fn run_campaign(workers: usize) -> usize {
    let spec = bench_campaign();
    let report = execute(&spec, spec.expand(), workers).expect("bench campaign runs");
    assert_eq!(report.outcomes.len(), spec.run_count());
    report.outcomes.len()
}

/// The same campaign with checkpoint journaling on — measures the cost
/// of the append-and-flush per delivered run on top of `sequential`.
fn run_journaled_campaign(journal: &PathBuf) -> usize {
    // Each iteration starts from a fresh journal: resuming would skip
    // the runs and measure nothing.
    let _ = std::fs::remove_file(journal);
    let spec = bench_campaign();
    let options = ExecutionOptions {
        journal: Some(journal.clone()),
        ..Default::default()
    };
    let report = execute_resumable(&spec, spec.expand(), 0, &options).expect("bench campaign runs");
    assert_eq!(report.outcomes.len(), spec.run_count());
    report.outcomes.len()
}

/// The long-tail shape that separates the schedulers: run 0 is a
/// saturated lockstep attack run (the tail), every other run is
/// idle-heavy and finishes quickly under event-driven stepping. Under
/// slot-pinned dispatch the tail's slot also owns every later run
/// congruent to it; work-stealing lets the other workers drain the idle
/// runs while one worker carries the tail. Normalization is off so the
/// comparison isolates dispatch, not the prelude.
fn skewed_campaign() -> (CampaignSpec, Vec<RunSpec>) {
    let mut spec = CampaignSpec::smoke();
    spec.name = "bench-longtail".to_owned();
    spec.normalize = false;
    let mut runs = spec.expand();
    for (i, run) in runs.iter_mut().enumerate() {
        if i == 0 {
            run.scale.advance = AdvanceMode::Lockstep;
            run.scale.benign_instructions = 2_000;
            run.scale.min_cycles = 60_000;
        } else {
            run.scale.benign_instructions = 100;
            run.scale.min_cycles = 20_000;
        }
    }
    (spec, runs)
}

fn run_skewed(workers: usize, scheduler: SchedulerMode) -> CampaignReport {
    let (spec, runs) = skewed_campaign();
    let total = runs.len();
    let options = ExecutionOptions {
        scheduler,
        ..Default::default()
    };
    let report = execute_resumable(&spec, runs, workers, &options).expect("skewed campaign runs");
    assert_eq!(report.outcomes.len(), total);
    report
}

/// The three strategies the long-tail benchmark compares.
const LONGTAIL_MODES: [(&str, usize, SchedulerMode); 3] = [
    ("longtail_sequential_8_runs", 0, SchedulerMode::Stealing),
    ("longtail_pinned_2w_8_runs", 2, SchedulerMode::SlotPinned),
    ("longtail_stealing_2w_8_runs", 2, SchedulerMode::Stealing),
];

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("sequential_8_runs", |b| {
        b.iter(|| black_box(run_campaign(0)))
    });
    for workers in [2usize, 4] {
        group.bench_function(format!("pooled_{workers}w_8_runs"), |b| {
            b.iter(|| black_box(run_campaign(workers)))
        });
    }
    let journal = std::env::temp_dir().join("bh-bench-campaign.journal");
    group.bench_function("journaled_sequential_8_runs", |b| {
        b.iter(|| black_box(run_journaled_campaign(&journal)))
    });
    let _ = std::fs::remove_file(&journal);
    for (label, workers, scheduler) in LONGTAIL_MODES {
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_skewed(workers, scheduler).outcomes.len()))
        });
    }
    group.finish();
    // One decorated pass per long-tail mode, outside the timed loops:
    // runs/sec plus per-worker utilization (busy time / campaign wall),
    // the numbers ROADMAP.md records for the scheduler comparison.
    for (label, workers, scheduler) in LONGTAIL_MODES {
        let report = run_skewed(workers, scheduler);
        let wall = report.wall.as_secs_f64().max(f64::MIN_POSITIVE);
        let utilization: Vec<String> = report
            .scheduling
            .workers
            .iter()
            .map(|w| format!("{:.0}%", 100.0 * (w.busy.as_secs_f64() / wall).min(1.0)))
            .collect();
        println!(
            "{label}: {:.2} runs/sec ({} scheduler, reorder high-water {}, utilization [{}])",
            report.runs_per_sec().unwrap_or(0.0),
            report.scheduling.scheduler,
            report.scheduling.reorder_high_water,
            utilization.join(", ")
        );
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
