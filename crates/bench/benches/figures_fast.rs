//! End-to-end simulation throughput: one quick single-core run and one
//! quick attack run (to track the cost of regenerating the paper's
//! figures), plus multiprogrammed runs across 1/2/4 memory channels with
//! sequential, scoped-thread and persistent-worker-pool shard stepping,
//! so simulator throughput versus channel count (and the per-cycle cost
//! of each stepping mode) is measured directly.

use criterion::{criterion_group, criterion_main, Criterion};
use sim::{DefenseKind, SteppingMode, SystemBuilder};
use std::hint::black_box;
use workloads::SyntheticSpec;

fn single_core_run() -> f64 {
    SystemBuilder::new()
        .time_scale(8192)
        .defense(DefenseKind::BlockHammer)
        .llc_capacity(1 << 20)
        .add_workload(SyntheticSpec::high_intensity("bench.h", 0), 3_000)
        .run()
        .threads[0]
        .ipc
}

fn attack_run() -> f64 {
    SystemBuilder::new()
        .time_scale(8192)
        .defense(DefenseKind::BlockHammer)
        .llc_capacity(1 << 20)
        .min_cycles(50_000)
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("bench.victim", 0), 3_000)
        .run()
        .threads[1]
        .ipc
}

/// A two-thread multiprogrammed run on `channels` channels; total cycles
/// are identical in every stepping mode, so the benchmark isolates the
/// stepping cost.
fn multi_channel_run(channels: usize, stepping: SteppingMode) -> u64 {
    SystemBuilder::new()
        .time_scale(8192)
        .channels(channels)
        .stepping_mode(stepping)
        .defense(DefenseKind::BlockHammer)
        .llc_capacity(1 << 20)
        .add_workload(SyntheticSpec::high_intensity("bench.h", 0), 2_000)
        .add_workload(SyntheticSpec::medium_intensity("bench.m", 1), 2_000)
        .run()
        .total_cycles
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_simulation");
    group.sample_size(10);
    group.bench_function("single_core_blockhammer_3k_insts", |b| {
        b.iter(|| black_box(single_core_run()))
    });
    group.bench_function("attack_vs_victim_blockhammer", |b| {
        b.iter(|| black_box(attack_run()))
    });
    group.finish();

    let mut group = c.benchmark_group("throughput_vs_channels");
    group.sample_size(10);
    for channels in [1usize, 2, 4] {
        group.bench_function(format!("sequential_{channels}ch"), |b| {
            b.iter(|| black_box(multi_channel_run(channels, SteppingMode::Sequential)))
        });
    }
    for channels in [2usize, 4] {
        group.bench_function(format!("scoped_{channels}ch"), |b| {
            b.iter(|| black_box(multi_channel_run(channels, SteppingMode::ScopedThreads)))
        });
        group.bench_function(format!("pooled_{channels}ch"), |b| {
            b.iter(|| black_box(multi_channel_run(channels, SteppingMode::WorkerPool)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
