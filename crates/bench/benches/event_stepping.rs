//! Event-driven vs lockstep advance-loop throughput.
//!
//! Two workload points bracket the optimization:
//!
//! * **low-utilization** — one short low-intensity benign thread with a
//!   long `min_cycles` tail, the idle-heavy shape where skip-to-next-event
//!   pays (expected >=5x: the run is dominated by refresh-to-refresh
//!   jumps once the thread finishes);
//! * **saturated** — a double-sided attacker hammering alongside a
//!   high-intensity thread, where nearly every cycle has work and the two
//!   modes should be a wash.
//!
//! Both modes are bit-identical in results (pinned by
//! `tests/tests/event_equivalence.rs`); only wall-clock differs. The
//! idle-skip counters of each point are printed once so the measured
//! speedup can be read against the fraction of cycles skipped.

use criterion::{criterion_group, criterion_main, Criterion};
use sim::{AdvanceMode, DefenseKind, RunResult, SystemBuilder};
use std::hint::black_box;
use workloads::SyntheticSpec;

fn low_utilization(advance: AdvanceMode) -> RunResult {
    SystemBuilder::new()
        .time_scale(8192)
        .max_cycles(3_000_000)
        .min_cycles(2_500_000)
        .llc_capacity(1 << 20)
        .seed(7)
        .defense(DefenseKind::BlockHammer)
        .advance_mode(advance)
        .add_workload(SyntheticSpec::low_intensity("l0", 0), 1_000)
        .run()
}

fn saturated(advance: AdvanceMode) -> RunResult {
    SystemBuilder::new()
        .time_scale(8192)
        .max_cycles(3_000_000)
        .min_cycles(20_000)
        .llc_capacity(1 << 20)
        .seed(7)
        .defense(DefenseKind::BlockHammer)
        .advance_mode(advance)
        .add_attacker()
        .add_workload(SyntheticSpec::high_intensity("h0", 0), 2_000)
        .run()
}

fn report_skips(label: &str, result: &RunResult) {
    let s = &result.stepping;
    println!(
        "{label}: {} cycles, {} ticked, {} skipped ({:.1}%), \
         {} event ticks, largest jump {}",
        result.total_cycles,
        s.cycles_simulated,
        s.cycles_skipped,
        100.0 * s.skip_ratio(),
        s.events_processed,
        s.largest_jump,
    );
}

fn bench_event_stepping(c: &mut Criterion) {
    report_skips(
        "low-utilization/event",
        &low_utilization(AdvanceMode::EventDriven),
    );
    report_skips("saturated/event", &saturated(AdvanceMode::EventDriven));
    let mut group = c.benchmark_group("event_stepping");
    group.sample_size(10);
    group.bench_function("low_utilization_lockstep", |b| {
        b.iter(|| black_box(low_utilization(AdvanceMode::Lockstep)))
    });
    group.bench_function("low_utilization_event_driven", |b| {
        b.iter(|| black_box(low_utilization(AdvanceMode::EventDriven)))
    });
    group.bench_function("saturated_lockstep", |b| {
        b.iter(|| black_box(saturated(AdvanceMode::Lockstep)))
    });
    group.bench_function("saturated_event_driven", |b| {
        b.iter(|| black_box(saturated(AdvanceMode::EventDriven)))
    });
    group.finish();
}

criterion_group!(benches, bench_event_stepping);
criterion_main!(benches);
