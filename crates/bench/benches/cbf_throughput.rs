//! Throughput of the dual counting Bloom filter (insert + blacklist test),
//! the data structure at the heart of RowBlocker-BL.

use blockhammer::DualCountingBloomFilter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_counting_bloom_filter");
    for &size in &[1_024usize, 8_192] {
        group.bench_with_input(BenchmarkId::new("insert", size), &size, |b, &size| {
            let mut filter = DualCountingBloomFilter::new(size, 4, 8_192, u64::MAX / 2, 1);
            let mut row = 0u64;
            let mut cycle = 0u64;
            b.iter(|| {
                row = row.wrapping_add(0x9E37) % 65_536;
                cycle += 148;
                filter.insert(cycle, black_box(row));
            });
        });
        group.bench_with_input(
            BenchmarkId::new("is_blacklisted", size),
            &size,
            |b, &size| {
                let mut filter = DualCountingBloomFilter::new(size, 4, 8_192, u64::MAX / 2, 1);
                for i in 0..10_000u64 {
                    filter.insert(i * 148, i % 64);
                }
                let mut row = 0u64;
                b.iter(|| {
                    row = (row + 1) % 65_536;
                    black_box(filter.is_blacklisted(black_box(row)))
                });
            },
        );
        // Every insert lands hundreds of epochs after the previous one, so
        // each pays one epoch catch-up: O(1) arithmetic + generation bumps
        // with the lazy filter, versus an O(missed-epochs) clear loop with
        // per-epoch `fill(0)` in the eager implementation.
        group.bench_with_input(
            BenchmarkId::new("insert_after_idle_gap", size),
            &size,
            |b, &size| {
                let epoch = 10_000u64;
                let mut filter = DualCountingBloomFilter::new(size, 4, 8_192, epoch, 1);
                let mut row = 0u64;
                let mut cycle = 0u64;
                b.iter(|| {
                    row = row.wrapping_add(0x9E37) % 65_536;
                    cycle += 500 * epoch + 148;
                    filter.insert(cycle, black_box(row));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cbf);
criterion_main!(benches);
