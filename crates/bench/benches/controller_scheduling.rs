//! Throughput of the memory-controller substrate: how fast the FR-FCFS
//! scheduler + DDR4 timing model simulate, with and without a defense in
//! the loop (the simulator-cost ablation for this reproduction).
//!
//! The scheduling hot path is benchmarked under both queue-scan policies —
//! the flat `LinearScan` baseline and the per-bank `BankedIndex` default —
//! on a read-only stream and on a mixed read/write stream, so the speedup
//! of the indexed queues over the linear scans is measured directly
//! (`cargo bench -p bench --bench controller_scheduling`).

use bh_types::{AccessType, ThreadId};
use blockhammer::{BlockHammer, BlockHammerConfig, OperatingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use memctrl::{MemCtrlConfig, MemoryController, SchedulerPolicy};
use mitigations::{DefenseGeometry, NoMitigation, RowHammerDefense, RowHammerThreshold};
use std::hint::black_box;

/// Issues `requests` demand accesses and runs the controller until all
/// complete; every fourth access is a write when `mixed` is set. Returns
/// the simulated cycle count (constant across policies — only wall time
/// differs).
fn run_controller(
    policy: SchedulerPolicy,
    defense: &mut dyn RowHammerDefense,
    requests: u64,
    mixed: bool,
) -> u64 {
    let config = MemCtrlConfig {
        scheduler: policy,
        ..MemCtrlConfig::default()
    };
    let mut ctrl = MemoryController::new(config);
    let mut issued = 0u64;
    let mut cycle = 0u64;
    let mut completed = 0u64;
    while completed < requests {
        if issued < requests {
            let addr = (issued * 4096) % (1 << 30);
            let access = if mixed && issued % 4 == 0 {
                AccessType::Write
            } else {
                AccessType::Read
            };
            if ctrl
                .enqueue(
                    ThreadId::new((issued % 8) as usize),
                    addr,
                    access,
                    cycle,
                    defense,
                )
                .is_ok()
            {
                issued += 1;
            }
        }
        completed += ctrl.tick(cycle, defense).len() as u64;
        cycle += 1;
    }
    cycle
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_controller");
    group.sample_size(10);
    for (label, policy) in [
        ("linear_scan", SchedulerPolicy::LinearScan),
        ("banked_index", SchedulerPolicy::BankedIndex),
    ] {
        group.bench_function(format!("fr_fcfs_{label}_2k_reads"), |b| {
            b.iter(|| {
                let mut defense = NoMitigation::new();
                black_box(run_controller(policy, &mut defense, 2_000, false))
            });
        });
        group.bench_function(format!("fr_fcfs_{label}_2k_mixed"), |b| {
            b.iter(|| {
                let mut defense = NoMitigation::new();
                black_box(run_controller(policy, &mut defense, 2_000, true))
            });
        });
        group.bench_function(format!("fr_fcfs_{label}_blockhammer_2k_reads"), |b| {
            b.iter(|| {
                let geometry = DefenseGeometry::default();
                let config = BlockHammerConfig::for_rowhammer_threshold(
                    RowHammerThreshold::new(32_768),
                    &geometry,
                );
                let mut defense = BlockHammer::new(config, geometry, OperatingMode::FullFunctional);
                black_box(run_controller(policy, &mut defense, 2_000, false))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
