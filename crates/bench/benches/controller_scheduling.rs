//! Throughput of the memory-controller substrate: how fast the FR-FCFS
//! scheduler + DDR4 timing model simulate, with and without a defense in
//! the loop (the simulator-cost ablation for this reproduction).

use bh_types::{AccessType, ThreadId};
use blockhammer::{BlockHammer, BlockHammerConfig, OperatingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use memctrl::{MemCtrlConfig, MemoryController};
use mitigations::{DefenseGeometry, NoMitigation, RowHammerDefense, RowHammerThreshold};
use std::hint::black_box;

fn run_controller(defense: &mut dyn RowHammerDefense, requests: u64) -> u64 {
    let mut ctrl = MemoryController::new(MemCtrlConfig::default());
    let mut issued = 0u64;
    let mut cycle = 0u64;
    let mut completed = 0u64;
    while completed < requests {
        if issued < requests {
            let addr = (issued * 4096) % (1 << 30);
            if ctrl
                .enqueue(
                    ThreadId::new((issued % 8) as usize),
                    addr,
                    AccessType::Read,
                    cycle,
                    defense,
                )
                .is_ok()
            {
                issued += 1;
            }
        }
        completed += ctrl.tick(cycle, defense).len() as u64;
        cycle += 1;
    }
    cycle
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_controller");
    group.sample_size(10);
    group.bench_function("fr_fcfs_no_defense_2k_reads", |b| {
        b.iter(|| {
            let mut defense = NoMitigation::new();
            black_box(run_controller(&mut defense, 2_000))
        });
    });
    group.bench_function("fr_fcfs_blockhammer_2k_reads", |b| {
        b.iter(|| {
            let geometry = DefenseGeometry::default();
            let config = BlockHammerConfig::for_rowhammer_threshold(
                RowHammerThreshold::new(32_768),
                &geometry,
            );
            let mut defense = BlockHammer::new(config, geometry, OperatingMode::FullFunctional);
            black_box(run_controller(&mut defense, 2_000))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
