//! Latency of the RowBlocker "Is this ACT RowHammer-safe?" query and of the
//! activation-recording path — the Section 6.2 claim that the query fits
//! comfortably under the DRAM row-access latency.

use bh_types::{DramAddress, ThreadId};
use blockhammer::{BlockHammer, BlockHammerConfig, OperatingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use mitigations::{DefenseGeometry, RowHammerDefense, RowHammerThreshold};
use std::hint::black_box;

fn build() -> BlockHammer {
    let geometry = DefenseGeometry::default();
    let config =
        BlockHammerConfig::for_rowhammer_threshold(RowHammerThreshold::new(32_768), &geometry);
    BlockHammer::new(config, geometry, OperatingMode::FullFunctional)
}

fn bench_rowblocker(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowblocker");
    group.bench_function("is_activation_safe", |b| {
        let mut bh = build();
        let addr = DramAddress::new(0, 0, 1, 2, 0x4242, 0);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 148;
            black_box(bh.is_activation_safe(cycle, ThreadId::new(0), black_box(&addr)))
        });
    });
    group.bench_function("on_activation", |b| {
        let mut bh = build();
        let addr = DramAddress::new(0, 0, 1, 2, 0x4242, 0);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 148;
            black_box(bh.on_activation(cycle, ThreadId::new(0), black_box(&addr)))
        });
    });
    group.bench_function("query_plus_record_distinct_rows", |b| {
        let mut bh = build();
        let mut cycle = 0u64;
        let mut row = 0u64;
        b.iter(|| {
            cycle += 148;
            row = (row + 1) % 65_536;
            let addr = DramAddress::new(0, 0, (row % 4) as usize, ((row / 4) % 4) as usize, row, 0);
            if bh.is_activation_safe(cycle, ThreadId::new(0), &addr) {
                bh.on_activation(cycle, ThreadId::new(0), &addr);
            }
            black_box(&bh);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rowblocker);
criterion_main!(benches);
