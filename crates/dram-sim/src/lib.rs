//! # dram-sim
//!
//! A cycle-level DDR4 DRAM device model in the spirit of Ramulator.
//!
//! The model captures everything a RowHammer mitigation study needs from a
//! DRAM device:
//!
//! * the bank / bank-group / rank / channel organization,
//! * the row-buffer state machine of every bank,
//! * the DDR4 timing constraints that bound how fast rows can be activated
//!   (`tRC`, `tRCD`, `tRP`, `tRAS`, `tRRD_S/L`, `tFAW`, `tCCD_S/L`, `tWTR`,
//!   `tRTP`, `tWR`, `tCL`, `tCWL`, burst length),
//! * periodic all-bank refresh (`tREFI`, `tRFC`, `tREFW`), and
//! * command / state-residency statistics that feed the energy model.
//!
//! The device does not move data; it only enforces *when* commands may be
//! issued and reports when their results would be available, which is all
//! the memory controller and the defenses observe.
//!
//! ## Example
//!
//! ```
//! use bh_types::{DramAddress, MemCommand, TimeConverter};
//! use dram_sim::{DramDevice, DramOrganization, DramTimings};
//!
//! let timings = DramTimings::ddr4_2400().into_cycles(&TimeConverter::default());
//! let org = DramOrganization::default();
//! let mut dram = DramDevice::new(org, timings);
//! let addr = DramAddress::new(0, 0, 0, 0, 42, 0);
//!
//! // A freshly powered-up bank must be activated before it can be read.
//! assert!(!dram.can_issue(MemCommand::Read, &addr, 0));
//! assert!(dram.can_issue(MemCommand::Activate, &addr, 0));
//! dram.issue(MemCommand::Activate, &addr, 0);
//! assert_eq!(dram.open_row(&addr), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod device;
mod organization;
mod rank;
mod stats;
mod timings;

pub use bank::{Bank, BankState};
pub use device::{DramDevice, IssueOutcome};
pub use organization::DramOrganization;
pub use rank::Rank;
pub use stats::{CommandCounts, DramStats};
pub use timings::{DramTimings, TimingsInCycles};
