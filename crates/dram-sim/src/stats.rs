//! Command and state-residency statistics.
//!
//! These counters feed the `energy` crate (which converts them into Joules
//! with an IDD-based model) and the experiment reports (row-buffer hit
//! rates, activation counts).

use bh_types::{Cycle, MemCommand};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-rank counts of issued DRAM commands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandCounts {
    /// Row activations.
    pub activates: u64,
    /// Precharges (single-bank and all-bank count each bank closure once).
    pub precharges: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// All-bank refreshes.
    pub refreshes: u64,
}

impl CommandCounts {
    /// Records one command of the given kind.
    pub fn record(&mut self, cmd: MemCommand) {
        match cmd {
            MemCommand::Activate => self.activates += 1,
            MemCommand::Precharge | MemCommand::PrechargeAll => self.precharges += 1,
            MemCommand::Read | MemCommand::ReadAp => self.reads += 1,
            MemCommand::Write | MemCommand::WriteAp => self.writes += 1,
            MemCommand::Refresh => self.refreshes += 1,
        }
    }

    /// Total column commands (reads + writes).
    pub fn column_commands(&self) -> u64 {
        self.reads + self.writes
    }

    /// Element-wise sum of two count sets.
    pub fn merged(&self, other: &CommandCounts) -> CommandCounts {
        CommandCounts {
            activates: self.activates + other.activates,
            precharges: self.precharges + other.precharges,
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            refreshes: self.refreshes + other.refreshes,
        }
    }
}

/// Aggregate statistics of a [`crate::DramDevice`] over a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Per-rank command counts, indexed by flat rank index.
    pub per_rank: Vec<CommandCounts>,
    /// Per-rank cycles banks spent with a row open (summed over banks).
    pub active_bank_cycles: Vec<Cycle>,
    /// Total simulated cycles covered by these statistics.
    pub elapsed_cycles: Cycle,
    /// Optional log of every activation: (cycle, global bank index, row).
    /// Enabled by verification harnesses to check RowHammer safety; `None`
    /// during performance runs to avoid the memory cost.
    pub activation_log: Option<Vec<(Cycle, usize, u64)>>,
    /// Per-(global bank, row) activation counts, maintained only when the
    /// activation log is enabled.
    pub activations_per_row: Option<HashMap<(usize, u64), u64>>,
}

impl DramStats {
    /// Creates statistics storage for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            per_rank: vec![CommandCounts::default(); ranks],
            active_bank_cycles: vec![0; ranks],
            elapsed_cycles: 0,
            activation_log: None,
            activations_per_row: None,
        }
    }

    /// Enables detailed activation logging (used by safety-verification
    /// tests and the false-positive study).
    pub fn enable_activation_log(&mut self) {
        self.activation_log.get_or_insert_with(Vec::new);
        self.activations_per_row.get_or_insert_with(HashMap::new);
    }

    /// Records an activation in the detailed log if enabled.
    pub fn log_activation(&mut self, cycle: Cycle, global_bank: usize, row: u64) {
        if let Some(log) = self.activation_log.as_mut() {
            log.push((cycle, global_bank, row));
        }
        if let Some(map) = self.activations_per_row.as_mut() {
            *map.entry((global_bank, row)).or_insert(0) += 1;
        }
    }

    /// Appends the statistics of one channel shard to this (system-wide)
    /// accumulator.
    ///
    /// Shard-local rank and bank indices are channel-relative; callers
    /// absorb shards in channel order so that rank entries land at the
    /// flat `channel * ranks + rank` index, and pass the shard's global
    /// bank offset (`channel * banks_per_channel`) so activation-log
    /// entries keep system-wide unique bank indices.
    pub fn absorb_shard(&mut self, shard: DramStats, bank_offset: usize) {
        self.per_rank.extend(shard.per_rank);
        self.active_bank_cycles.extend(shard.active_bank_cycles);
        self.elapsed_cycles = self.elapsed_cycles.max(shard.elapsed_cycles);
        if let Some(log) = shard.activation_log {
            let merged = self.activation_log.get_or_insert_with(Vec::new);
            merged.extend(
                log.into_iter()
                    .map(|(cycle, bank, row)| (cycle, bank + bank_offset, row)),
            );
        }
        if let Some(map) = shard.activations_per_row {
            let merged = self.activations_per_row.get_or_insert_with(HashMap::new);
            for ((bank, row), count) in map {
                *merged.entry((bank + bank_offset, row)).or_insert(0) += count;
            }
        }
    }

    /// System-wide command counts (sum over ranks).
    pub fn totals(&self) -> CommandCounts {
        self.per_rank
            .iter()
            .fold(CommandCounts::default(), |acc, c| acc.merged(c))
    }

    /// The maximum number of activations any single row received within any
    /// sliding window of `window` cycles, according to the activation log.
    ///
    /// Returns `None` if activation logging was not enabled. This is the
    /// quantity the RowHammer threshold bounds: a defense is sound iff this
    /// never exceeds `N_RH` for `window = tREFW`.
    pub fn max_row_activations_in_window(&self, window: Cycle) -> Option<u64> {
        let log = self.activation_log.as_ref()?;
        let mut per_row: HashMap<(usize, u64), Vec<Cycle>> = HashMap::new();
        for &(cycle, bank, row) in log {
            per_row.entry((bank, row)).or_default().push(cycle);
        }
        let mut worst = 0u64;
        // lint: allow(determinism) -- max over per-row window counts is order-independent
        for times in per_row.values() {
            // Activation logs are appended in issue order, so they are sorted.
            let mut lo = 0usize;
            for hi in 0..times.len() {
                while times[hi] - times[lo] >= window {
                    lo += 1;
                }
                worst = worst.max((hi - lo + 1) as u64);
            }
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_commands() {
        let mut c = CommandCounts::default();
        for cmd in [
            MemCommand::Activate,
            MemCommand::Precharge,
            MemCommand::PrechargeAll,
            MemCommand::Read,
            MemCommand::ReadAp,
            MemCommand::Write,
            MemCommand::WriteAp,
            MemCommand::Refresh,
        ] {
            c.record(cmd);
        }
        assert_eq!(c.activates, 1);
        assert_eq!(c.precharges, 2);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 2);
        assert_eq!(c.refreshes, 1);
        assert_eq!(c.column_commands(), 4);
    }

    #[test]
    fn totals_sum_over_ranks() {
        let mut s = DramStats::new(2);
        s.per_rank[0].record(MemCommand::Activate);
        s.per_rank[1].record(MemCommand::Activate);
        s.per_rank[1].record(MemCommand::Read);
        let t = s.totals();
        assert_eq!(t.activates, 2);
        assert_eq!(t.reads, 1);
    }

    #[test]
    fn sliding_window_activation_count_is_correct() {
        let mut s = DramStats::new(1);
        s.enable_activation_log();
        // Row 5: activations at cycles 0, 10, 20, 1000.
        for c in [0, 10, 20, 1000] {
            s.log_activation(c, 0, 5);
        }
        // Row 6: activations at 0..9 (10 of them).
        for c in 0..10 {
            s.log_activation(c, 0, 6);
        }
        assert_eq!(s.max_row_activations_in_window(100), Some(10));
        assert_eq!(s.max_row_activations_in_window(5), Some(5));
        assert_eq!(s.max_row_activations_in_window(10_000), Some(10));
    }

    #[test]
    fn absorb_shard_concatenates_ranks_and_offsets_banks() {
        let mut merged = DramStats::new(0);
        let mut shard0 = DramStats::new(1);
        shard0.enable_activation_log();
        shard0.per_rank[0].record(MemCommand::Activate);
        shard0.log_activation(10, 3, 7);
        shard0.elapsed_cycles = 100;
        let mut shard1 = DramStats::new(1);
        shard1.enable_activation_log();
        shard1.per_rank[0].record(MemCommand::Read);
        shard1.log_activation(20, 3, 7);
        shard1.elapsed_cycles = 90;
        merged.absorb_shard(shard0, 0);
        merged.absorb_shard(shard1, 16);
        assert_eq!(merged.per_rank.len(), 2);
        assert_eq!(merged.totals().activates, 1);
        assert_eq!(merged.totals().reads, 1);
        assert_eq!(merged.elapsed_cycles, 100);
        let log = merged.activation_log.as_ref().unwrap();
        assert_eq!(log, &vec![(10, 3, 7), (20, 19, 7)]);
        let per_row = merged.activations_per_row.as_ref().unwrap();
        assert_eq!(per_row[&(3, 7)], 1);
        assert_eq!(per_row[&(19, 7)], 1);
    }

    #[test]
    fn window_count_none_without_log() {
        let s = DramStats::new(1);
        assert_eq!(s.max_row_activations_in_window(100), None);
    }
}
