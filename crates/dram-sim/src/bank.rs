//! Per-bank row-buffer state machine and timing bookkeeping.

use crate::timings::TimingsInCycles;
use bh_types::{Cycle, MemCommand};
use serde::{Deserialize, Serialize};

/// The state of a DRAM bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row is open; the bank is precharged.
    Precharged,
    /// A row is open in the row buffer.
    Active {
        /// The open row.
        row: u64,
    },
}

/// A single DRAM bank.
///
/// The bank tracks which row (if any) is open and the earliest cycle at
/// which each class of command may next be issued, according to the DDR4
/// timing constraints that involve only this bank (`tRC`, `tRCD`, `tRP`,
/// `tRAS`, `tRTP`, `tWR`). Rank-level constraints (`tRRD`, `tFAW`, `tCCD`,
/// `tWTR`, refresh) are enforced by [`crate::Rank`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle an ACT may be issued.
    next_activate: Cycle,
    /// Earliest cycle a PRE may be issued.
    next_precharge: Cycle,
    /// Earliest cycle a column command (RD/WR) may be issued.
    next_column: Cycle,
    /// Cycle of the most recent ACT (for active-time accounting).
    last_activate: Cycle,
    /// Total cycles this bank has spent with a row open.
    active_cycles: Cycle,
    /// Total ACT commands this bank has received.
    activations: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Creates a bank in the precharged state with no pending constraints.
    pub fn new() -> Self {
        Self {
            state: BankState::Precharged,
            next_activate: 0,
            next_precharge: 0,
            next_column: 0,
            last_activate: 0,
            active_cycles: 0,
            activations: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Precharged => None,
        }
    }

    /// Total ACT commands this bank has received.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total cycles this bank has spent with a row open, up to the last
    /// precharge. Call [`Bank::close_accounting`] at the end of simulation
    /// to include a still-open row.
    pub fn active_cycles(&self) -> Cycle {
        self.active_cycles
    }

    /// Finalizes active-time accounting at `now` (treats a still-open row
    /// as closing now). Idempotent only if the bank is precharged.
    pub fn close_accounting(&mut self, now: Cycle) {
        if matches!(self.state, BankState::Active { .. }) {
            self.active_cycles += now.saturating_sub(self.last_activate);
            self.last_activate = now;
        }
    }

    /// Earliest cycle at which `cmd` targeting `row` could legally be
    /// issued, considering only this bank's constraints. Returns `None` if
    /// the command is illegal in the current state regardless of time
    /// (e.g. a READ while precharged, or an ACT while a different row is
    /// open).
    pub fn earliest_issue(&self, cmd: MemCommand, row: u64) -> Option<Cycle> {
        match (cmd, self.state) {
            (MemCommand::Activate, BankState::Precharged) => Some(self.next_activate),
            (MemCommand::Activate, BankState::Active { .. }) => None,
            (MemCommand::Precharge | MemCommand::PrechargeAll, _) => Some(self.next_precharge),
            (
                MemCommand::Read | MemCommand::ReadAp | MemCommand::Write | MemCommand::WriteAp,
                BankState::Active { row: open },
            ) if open == row => Some(self.next_column),
            (
                MemCommand::Read | MemCommand::ReadAp | MemCommand::Write | MemCommand::WriteAp,
                _,
            ) => None,
            // Refresh legality (all banks precharged) is checked by the rank.
            (MemCommand::Refresh, BankState::Precharged) => Some(self.next_activate),
            (MemCommand::Refresh, BankState::Active { .. }) => None,
        }
    }

    /// Whether `cmd` targeting `row` may be issued at `now` per this bank's
    /// constraints.
    pub fn can_issue(&self, cmd: MemCommand, row: u64, now: Cycle) -> bool {
        self.earliest_issue(cmd, row).is_some_and(|t| t <= now)
    }

    /// Applies `cmd` at cycle `now`, updating state and future constraints.
    ///
    /// # Panics
    ///
    /// Panics if the command is not legal at `now` (callers must check
    /// [`Bank::can_issue`] first); issuing an illegal command would silently
    /// corrupt timing bookkeeping.
    pub fn issue(&mut self, cmd: MemCommand, row: u64, now: Cycle, t: &TimingsInCycles) {
        assert!(
            self.can_issue(cmd, row, now),
            "illegal {cmd} to row {row} at cycle {now} in state {:?}",
            self.state
        );
        match cmd {
            MemCommand::Activate => {
                self.state = BankState::Active { row };
                self.activations += 1;
                self.last_activate = now;
                self.next_activate = now + t.t_rc;
                self.next_precharge = now + t.t_ras;
                self.next_column = now + t.t_rcd;
            }
            MemCommand::Precharge | MemCommand::PrechargeAll => {
                self.do_precharge(now, t);
            }
            MemCommand::Read => {
                self.next_precharge = self.next_precharge.max(now + t.t_rtp);
            }
            MemCommand::Write => {
                self.next_precharge = self.next_precharge.max(now + t.t_cwl + t.t_bl + t.t_wr);
            }
            MemCommand::ReadAp => {
                let pre_at = self.next_precharge.max(now + t.t_rtp);
                self.auto_precharge(pre_at, now, t);
            }
            MemCommand::WriteAp => {
                let pre_at = self.next_precharge.max(now + t.t_cwl + t.t_bl + t.t_wr);
                self.auto_precharge(pre_at, now, t);
            }
            MemCommand::Refresh => {
                // Refresh occupies the whole rank; the rank pushes the
                // bank's next-activate out by tRFC.
                self.next_activate = self.next_activate.max(now + t.t_rfc);
            }
        }
    }

    /// Pushes the earliest allowed ACT out to at least `cycle` (used by the
    /// rank for refresh and by tests).
    pub(crate) fn delay_activate_until(&mut self, cycle: Cycle) {
        self.next_activate = self.next_activate.max(cycle);
    }

    fn do_precharge(&mut self, now: Cycle, t: &TimingsInCycles) {
        if let BankState::Active { .. } = self.state {
            self.active_cycles += now - self.last_activate;
        }
        self.state = BankState::Precharged;
        self.next_activate = self.next_activate.max(now + t.t_rp);
    }

    /// Models an auto-precharge that takes effect at `pre_at` (>= now).
    fn auto_precharge(&mut self, pre_at: Cycle, now: Cycle, t: &TimingsInCycles) {
        debug_assert!(pre_at >= now);
        if let BankState::Active { .. } = self.state {
            self.active_cycles += pre_at - self.last_activate;
        }
        self.state = BankState::Precharged;
        self.next_activate = self.next_activate.max(pre_at + t.t_rp);
        self.next_precharge = self.next_precharge.max(pre_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_types::TimeConverter;

    fn timings() -> TimingsInCycles {
        crate::DramTimings::ddr4_2400().into_cycles(&TimeConverter::default())
    }

    #[test]
    fn fresh_bank_allows_only_activate_and_precharge() {
        let b = Bank::new();
        assert!(b.can_issue(MemCommand::Activate, 5, 0));
        assert!(b.can_issue(MemCommand::Precharge, 5, 0));
        assert!(!b.can_issue(MemCommand::Read, 5, 0));
        assert!(!b.can_issue(MemCommand::Write, 5, 0));
    }

    #[test]
    fn activate_opens_row_and_blocks_new_activate_for_trc() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 7, 0, &t);
        assert_eq!(b.open_row(), Some(7));
        assert!(!b.can_issue(MemCommand::Activate, 8, 1), "row already open");
        // Even after precharging, an ACT-to-ACT gap of at least tRC (and of
        // tRAS + tRP, which can exceed tRC by a cycle due to rounding) is
        // enforced.
        assert!(b.can_issue(MemCommand::Precharge, 7, t.t_ras));
        b.issue(MemCommand::Precharge, 7, t.t_ras, &t);
        assert!(!b.can_issue(MemCommand::Activate, 8, t.t_rc - 1));
        let next_act = b.earliest_issue(MemCommand::Activate, 8).unwrap();
        assert!(next_act >= t.t_rc && next_act <= (t.t_ras + t.t_rp).max(t.t_rc));
        assert!(b.can_issue(MemCommand::Activate, 8, next_act));
    }

    #[test]
    fn read_requires_trcd_after_activate() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 7, 0, &t);
        assert!(!b.can_issue(MemCommand::Read, 7, t.t_rcd - 1));
        assert!(b.can_issue(MemCommand::Read, 7, t.t_rcd));
        assert!(!b.can_issue(MemCommand::Read, 8, t.t_rcd), "wrong row");
    }

    #[test]
    fn precharge_must_wait_for_tras() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 1, 0, &t);
        assert!(!b.can_issue(MemCommand::Precharge, 1, t.t_ras - 1));
        assert!(b.can_issue(MemCommand::Precharge, 1, t.t_ras));
    }

    #[test]
    fn write_extends_precharge_constraint() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 1, 0, &t);
        let wr_at = t.t_rcd;
        b.issue(MemCommand::Write, 1, wr_at, &t);
        let pre_earliest = wr_at + t.t_cwl + t.t_bl + t.t_wr;
        assert!(!b.can_issue(MemCommand::Precharge, 1, pre_earliest - 1));
        assert!(b.can_issue(MemCommand::Precharge, 1, pre_earliest));
    }

    #[test]
    fn read_with_auto_precharge_closes_the_row() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 1, 0, &t);
        b.issue(MemCommand::ReadAp, 1, t.t_rcd, &t);
        assert_eq!(b.open_row(), None);
        // The implicit precharge still honours tRP before the next ACT.
        let pre_at = (t.t_rcd + t.t_rtp).max(t.t_ras);
        assert!(!b.can_issue(MemCommand::Activate, 2, pre_at + t.t_rp - 1));
        assert!(b.can_issue(MemCommand::Activate, 2, (pre_at + t.t_rp).max(t.t_rc)));
    }

    #[test]
    fn activation_rate_is_bounded_by_trc() {
        // Hammer a single row as fast as the bank allows and verify the
        // achievable rate equals tREFW / tRC (the physical upper bound the
        // paper's threat model assumes).
        let t = timings();
        let mut b = Bank::new();
        let mut now = 0;
        let mut acts = 0u64;
        let horizon = t.t_rc * 1000;
        while now < horizon {
            let open_at = b.earliest_issue(MemCommand::Activate, 9).unwrap();
            now = now.max(open_at);
            if now >= horizon {
                break;
            }
            b.issue(MemCommand::Activate, 9, now, &t);
            acts += 1;
            let pre_at = b.earliest_issue(MemCommand::Precharge, 9).unwrap();
            b.issue(MemCommand::Precharge, 9, pre_at, &t);
        }
        // The achievable rate is bounded below by tRAS + tRP (the rounded
        // act/pre loop period) and above by tRC.
        let period = (t.t_ras + t.t_rp).max(t.t_rc);
        assert!(acts <= horizon / t.t_rc + 1);
        assert!(acts >= horizon / period - 1);
        assert_eq!(b.activations(), acts);
    }

    #[test]
    fn active_cycles_accumulate_between_act_and_pre() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Activate, 1, 0, &t);
        b.issue(MemCommand::Precharge, 1, t.t_ras, &t);
        assert_eq!(b.active_cycles(), t.t_ras);
        let act2 = b.earliest_issue(MemCommand::Activate, 2).unwrap();
        b.issue(MemCommand::Activate, 2, act2, &t);
        b.close_accounting(act2 + 100);
        assert_eq!(b.active_cycles(), t.t_ras + 100);
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn issuing_illegal_command_panics() {
        let t = timings();
        let mut b = Bank::new();
        b.issue(MemCommand::Read, 3, 0, &t);
    }
}
