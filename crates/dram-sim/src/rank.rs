//! Per-rank timing constraints: tRRD, tFAW, tCCD, tWTR, turnarounds and
//! refresh.

use crate::bank::Bank;
use crate::organization::DramOrganization;
use crate::timings::TimingsInCycles;
use bh_types::{Cycle, DramAddress, MemCommand};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A DRAM rank: a set of banks sharing command/data buses, activation-rate
/// constraints (tRRD / tFAW) and refresh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rank {
    banks: Vec<Bank>,
    bank_groups: usize,
    banks_per_group: usize,
    /// Issue cycles of the most recent activations (bounded to 4, for tFAW).
    recent_activations: VecDeque<Cycle>,
    /// Cycle and bank group of the most recent ACT (for tRRD_S / tRRD_L).
    last_activate: Option<(Cycle, usize)>,
    /// Cycle, bank group and direction of the most recent column command.
    last_column: Option<(Cycle, usize, bool)>, // (cycle, bank group, is_write)
    /// Earliest cycle a read column command may be issued (turnarounds).
    next_read: Cycle,
    /// Earliest cycle a write column command may be issued (turnarounds).
    next_write: Cycle,
    /// The rank is busy refreshing until this cycle.
    refresh_busy_until: Cycle,
    /// Number of REF commands received.
    refreshes: u64,
}

impl Rank {
    /// Creates a rank with the bank layout described by `org`.
    pub fn new(org: &DramOrganization) -> Self {
        Self {
            banks: (0..org.banks_per_rank()).map(|_| Bank::new()).collect(),
            bank_groups: org.bank_groups,
            banks_per_group: org.banks_per_group,
            recent_activations: VecDeque::with_capacity(4),
            last_activate: None,
            last_column: None,
            next_read: 0,
            next_write: 0,
            refresh_busy_until: 0,
            refreshes: 0,
        }
    }

    /// Number of banks in this rank.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable view of a bank by its flat index within the rank.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bank(&self, index: usize) -> &Bank {
        &self.banks[index]
    }

    /// Number of REF commands this rank has received.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Iterates over the banks of this rank.
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Flat bank index for an address within this rank.
    fn bank_index(&self, addr: &DramAddress) -> usize {
        addr.bank_group() * self.banks_per_group + addr.bank()
    }

    /// Whether all banks are precharged (required before refresh).
    pub fn all_banks_precharged(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Earliest cycle at which `cmd` to `addr` satisfies *rank-level*
    /// constraints. Returns `None` if the command is illegal in the current
    /// state (e.g. REF with an open row).
    fn earliest_rank_level(
        &self,
        cmd: MemCommand,
        addr: &DramAddress,
        t: &TimingsInCycles,
    ) -> Option<Cycle> {
        let after_refresh = self.refresh_busy_until;
        match cmd {
            MemCommand::Activate => {
                let mut earliest = after_refresh;
                if let Some((when, bg)) = self.last_activate {
                    let rrd = if bg == addr.bank_group() {
                        // Same bank group: long tRRD.
                        t.t_rrd_l
                    } else {
                        t.t_rrd_s
                    };
                    earliest = earliest.max(when + rrd);
                }
                if self.recent_activations.len() == 4 {
                    // lint: allow(panic-freedom) -- guarded by the length check on the previous line
                    let oldest = *self.recent_activations.front().expect("len checked");
                    earliest = earliest.max(oldest + t.t_faw);
                }
                Some(earliest)
            }
            MemCommand::Read | MemCommand::ReadAp => {
                let mut earliest = after_refresh.max(self.next_read);
                if let Some((when, bg, _)) = self.last_column {
                    let ccd = if bg == addr.bank_group() {
                        t.t_ccd_l
                    } else {
                        t.t_ccd_s
                    };
                    earliest = earliest.max(when + ccd);
                }
                Some(earliest)
            }
            MemCommand::Write | MemCommand::WriteAp => {
                let mut earliest = after_refresh.max(self.next_write);
                if let Some((when, bg, _)) = self.last_column {
                    let ccd = if bg == addr.bank_group() {
                        t.t_ccd_l
                    } else {
                        t.t_ccd_s
                    };
                    earliest = earliest.max(when + ccd);
                }
                Some(earliest)
            }
            MemCommand::Precharge | MemCommand::PrechargeAll => Some(after_refresh),
            MemCommand::Refresh => {
                if self.all_banks_precharged() {
                    Some(after_refresh)
                } else {
                    None
                }
            }
        }
    }

    /// Earliest cycle at which `cmd` to `addr` satisfies both bank-level and
    /// rank-level constraints, or `None` if it is illegal in the current
    /// state.
    pub fn earliest_issue(
        &self,
        cmd: MemCommand,
        addr: &DramAddress,
        timings: &TimingsInCycles,
    ) -> Option<Cycle> {
        let rank_level = self.earliest_rank_level(cmd, addr, timings)?;
        match cmd {
            MemCommand::Refresh | MemCommand::PrechargeAll => {
                // Must be legal on every bank; take the max over banks.
                let mut earliest = rank_level;
                for bank in &self.banks {
                    earliest = earliest.max(bank.earliest_issue(cmd, 0)?);
                }
                Some(earliest)
            }
            _ => {
                let bank = &self.banks[self.bank_index(addr)];
                let bank_level = bank.earliest_issue(cmd, addr.row())?;
                Some(rank_level.max(bank_level))
            }
        }
    }

    /// Whether `cmd` to `addr` may be issued at `now`.
    pub fn can_issue(
        &self,
        cmd: MemCommand,
        addr: &DramAddress,
        now: Cycle,
        timings: &TimingsInCycles,
    ) -> bool {
        self.earliest_issue(cmd, addr, timings)
            .is_some_and(|t| t <= now)
    }

    /// Issues `cmd` to `addr` at `now`.
    ///
    /// Returns the cycle at which the command's effect completes: for reads,
    /// when the last data beat arrives; for writes, the end of the write
    /// burst; for other commands, `now`.
    ///
    /// # Panics
    ///
    /// Panics if the command is not legal at `now`.
    pub fn issue(
        &mut self,
        cmd: MemCommand,
        addr: &DramAddress,
        now: Cycle,
        timings: &TimingsInCycles,
    ) -> Cycle {
        assert!(
            self.can_issue(cmd, addr, now, timings),
            "illegal {cmd} to {addr} at cycle {now}"
        );
        let bank_idx = self.bank_index(addr);
        match cmd {
            MemCommand::Activate => {
                self.banks[bank_idx].issue(cmd, addr.row(), now, timings);
                if self.recent_activations.len() == 4 {
                    self.recent_activations.pop_front();
                }
                self.recent_activations.push_back(now);
                self.last_activate = Some((now, addr.bank_group()));
                now
            }
            MemCommand::Read | MemCommand::ReadAp => {
                self.banks[bank_idx].issue(cmd, addr.row(), now, timings);
                self.last_column = Some((now, addr.bank_group(), false));
                // Read-to-write turnaround: the write burst must not collide
                // with the read burst on the shared data bus.
                self.next_write = self
                    .next_write
                    .max(now + timings.t_cl + timings.t_bl - timings.t_cwl.min(timings.t_cl) + 2);
                now + timings.read_latency()
            }
            MemCommand::Write | MemCommand::WriteAp => {
                self.banks[bank_idx].issue(cmd, addr.row(), now, timings);
                self.last_column = Some((now, addr.bank_group(), true));
                // Write-to-read turnaround (tWTR after the write burst).
                self.next_read = self
                    .next_read
                    .max(now + timings.t_cwl + timings.t_bl + timings.t_wtr_l);
                now + timings.write_latency()
            }
            MemCommand::Precharge => {
                self.banks[bank_idx].issue(cmd, addr.row(), now, timings);
                now
            }
            MemCommand::PrechargeAll => {
                for bank in &mut self.banks {
                    bank.issue(MemCommand::Precharge, 0, now, timings);
                }
                now
            }
            MemCommand::Refresh => {
                self.refreshes += 1;
                self.refresh_busy_until = now + timings.t_rfc;
                for bank in &mut self.banks {
                    bank.delay_activate_until(self.refresh_busy_until);
                }
                self.refresh_busy_until
            }
        }
    }

    /// Finalizes bank active-time accounting at `now`.
    pub fn close_accounting(&mut self, now: Cycle) {
        for bank in &mut self.banks {
            bank.close_accounting(now);
        }
    }

    /// Total cycles banks of this rank spent with a row open.
    pub fn total_active_cycles(&self) -> Cycle {
        self.banks.iter().map(Bank::active_cycles).sum()
    }

    /// Number of bank groups in this rank.
    pub fn bank_group_count(&self) -> usize {
        self.bank_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_types::TimeConverter;

    fn setup() -> (Rank, TimingsInCycles, DramOrganization) {
        let org = DramOrganization::default();
        let t = crate::DramTimings::ddr4_2400().into_cycles(&TimeConverter::default());
        (Rank::new(&org), t, org)
    }

    fn addr(bg: usize, bank: usize, row: u64) -> DramAddress {
        DramAddress::new(0, 0, bg, bank, row, 0)
    }

    #[test]
    fn trrd_separates_activations_to_different_banks() {
        let (mut rank, t, _) = setup();
        rank.issue(MemCommand::Activate, &addr(0, 0, 1), 0, &t);
        // Different bank group: tRRD_S applies.
        assert!(!rank.can_issue(MemCommand::Activate, &addr(1, 0, 1), t.t_rrd_s - 1, &t));
        assert!(rank.can_issue(MemCommand::Activate, &addr(1, 0, 1), t.t_rrd_s, &t));
        // Same bank group: the longer tRRD_L applies.
        assert!(!rank.can_issue(MemCommand::Activate, &addr(0, 1, 1), t.t_rrd_l - 1, &t));
        assert!(rank.can_issue(MemCommand::Activate, &addr(0, 1, 1), t.t_rrd_l, &t));
    }

    #[test]
    fn tfaw_limits_to_four_activations_per_window() {
        let (mut rank, t, _) = setup();
        let mut now = 0;
        for i in 0..4 {
            let a = addr(i % 4, i / 4, 10);
            let earliest = rank.earliest_issue(MemCommand::Activate, &a, &t).unwrap();
            now = now.max(earliest);
            rank.issue(MemCommand::Activate, &a, now, &t);
        }
        // The fifth activation must wait until tFAW after the first.
        let fifth = addr(2, 2, 10);
        let earliest = rank
            .earliest_issue(MemCommand::Activate, &fifth, &t)
            .unwrap();
        assert!(
            earliest >= t.t_faw,
            "5th ACT allowed at {earliest}, before tFAW={}",
            t.t_faw
        );
    }

    #[test]
    fn activation_throughput_is_bounded_by_tfaw() {
        // Issue activations to many banks as fast as legality allows for a
        // long window and check the count never exceeds 4 per tFAW.
        let (mut rank, t, _) = setup();
        let horizon = t.t_faw * 100;
        let mut now = 0;
        let mut acts: Vec<Cycle> = Vec::new();
        let mut bank_cursor = 0usize;
        while now < horizon {
            let bg = bank_cursor % 4;
            let ba = (bank_cursor / 4) % 4;
            bank_cursor += 1;
            let a = addr(bg, ba, (bank_cursor % 7) as u64);
            let Some(mut at) = rank.earliest_issue(MemCommand::Activate, &a, &t) else {
                // Row open in that bank: precharge first.
                let pre_at = rank.earliest_issue(MemCommand::Precharge, &a, &t).unwrap();
                rank.issue(MemCommand::Precharge, &a, pre_at.max(now), &t);
                continue;
            };
            at = at.max(now);
            if at >= horizon {
                break;
            }
            rank.issue(MemCommand::Activate, &a, at, &t);
            acts.push(at);
            now = at;
        }
        for window_start in &acts {
            let in_window = acts
                .iter()
                .filter(|&&c| c >= *window_start && c < *window_start + t.t_faw)
                .count();
            assert!(in_window <= 4, "{in_window} ACTs within one tFAW");
        }
    }

    #[test]
    fn refresh_requires_all_banks_precharged_and_blocks_rank() {
        let (mut rank, t, _) = setup();
        let a = addr(0, 0, 3);
        rank.issue(MemCommand::Activate, &a, 0, &t);
        assert!(rank.earliest_issue(MemCommand::Refresh, &a, &t).is_none());
        let pre_at = rank.earliest_issue(MemCommand::Precharge, &a, &t).unwrap();
        rank.issue(MemCommand::Precharge, &a, pre_at, &t);
        let ref_at = rank.earliest_issue(MemCommand::Refresh, &a, &t).unwrap();
        let done = rank.issue(MemCommand::Refresh, &a, ref_at, &t);
        assert_eq!(done, ref_at + t.t_rfc);
        // No activation can proceed during tRFC.
        assert!(!rank.can_issue(MemCommand::Activate, &a, ref_at + t.t_rfc - 1, &t));
        assert!(rank.can_issue(MemCommand::Activate, &a, ref_at + t.t_rfc, &t));
        assert_eq!(rank.refreshes(), 1);
    }

    #[test]
    fn write_to_read_turnaround_is_enforced() {
        let (mut rank, t, _) = setup();
        let a = addr(0, 0, 3);
        let b = addr(1, 0, 4);
        rank.issue(MemCommand::Activate, &a, 0, &t);
        let act_b_at = rank.earliest_issue(MemCommand::Activate, &b, &t).unwrap();
        rank.issue(MemCommand::Activate, &b, act_b_at, &t);
        let wr_at = rank.earliest_issue(MemCommand::Write, &a, &t).unwrap();
        rank.issue(MemCommand::Write, &a, wr_at, &t);
        let rd_at = rank.earliest_issue(MemCommand::Read, &b, &t).unwrap();
        assert!(
            rd_at >= wr_at + t.t_cwl + t.t_bl + t.t_wtr_l,
            "read allowed at {rd_at}, before the write-to-read turnaround"
        );
    }

    #[test]
    fn read_returns_data_after_cl_plus_burst() {
        let (mut rank, t, _) = setup();
        let a = addr(0, 0, 3);
        rank.issue(MemCommand::Activate, &a, 0, &t);
        let rd_at = rank.earliest_issue(MemCommand::Read, &a, &t).unwrap();
        let done = rank.issue(MemCommand::Read, &a, rd_at, &t);
        assert_eq!(done, rd_at + t.read_latency());
    }

    #[test]
    fn precharge_all_closes_every_bank() {
        let (mut rank, t, _) = setup();
        rank.issue(MemCommand::Activate, &addr(0, 0, 3), 0, &t);
        let second_at = rank
            .earliest_issue(MemCommand::Activate, &addr(1, 1, 4), &t)
            .unwrap();
        rank.issue(MemCommand::Activate, &addr(1, 1, 4), second_at, &t);
        let prea_at = rank
            .earliest_issue(MemCommand::PrechargeAll, &addr(0, 0, 0), &t)
            .unwrap();
        rank.issue(MemCommand::PrechargeAll, &addr(0, 0, 0), prea_at, &t);
        assert!(rank.all_banks_precharged());
    }
}
