//! DDR4 timing parameters.
//!
//! [`DramTimings`] holds the JEDEC timing parameters in nanoseconds (plus a
//! handful that are naturally expressed in bus cycles, converted to ns via
//! the bus clock). [`TimingsInCycles`] is the same set converted to the
//! simulation clock domain (CPU cycles), which is what the bank/rank state
//! machines consume.

use bh_types::{Cycle, Nanoseconds, TimeConverter};
use serde::{Deserialize, Serialize};

/// DDR4 timing parameters in nanoseconds.
///
/// Field names follow the JEDEC DDR4 specification. Only parameters that
/// influence activation-rate, bandwidth or refresh behaviour are modelled;
/// ODT and calibration timings are irrelevant to a RowHammer study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimings {
    /// ACT-to-ACT to the same bank (row cycle time).
    pub t_rc: Nanoseconds,
    /// ACT-to-column-command delay (RAS-to-CAS).
    pub t_rcd: Nanoseconds,
    /// Precharge latency.
    pub t_rp: Nanoseconds,
    /// Minimum row-open time (ACT to PRE).
    pub t_ras: Nanoseconds,
    /// ACT-to-ACT delay, different bank groups.
    pub t_rrd_s: Nanoseconds,
    /// ACT-to-ACT delay, same bank group.
    pub t_rrd_l: Nanoseconds,
    /// Four-activation window.
    pub t_faw: Nanoseconds,
    /// Column-to-column delay, different bank groups.
    pub t_ccd_s: Nanoseconds,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: Nanoseconds,
    /// Write-to-read turnaround, different bank groups.
    pub t_wtr_s: Nanoseconds,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Nanoseconds,
    /// Read-to-precharge delay.
    pub t_rtp: Nanoseconds,
    /// Write recovery time (end of write burst to precharge).
    pub t_wr: Nanoseconds,
    /// CAS (read) latency.
    pub t_cl: Nanoseconds,
    /// CAS write latency.
    pub t_cwl: Nanoseconds,
    /// Data burst duration (BL8 at the bus clock).
    pub t_bl: Nanoseconds,
    /// Average refresh command interval.
    pub t_refi: Nanoseconds,
    /// Refresh cycle time (duration of one all-bank REF).
    pub t_rfc: Nanoseconds,
    /// Refresh window: every row must be refreshed at least once per tREFW.
    pub t_refw: Nanoseconds,
}

impl DramTimings {
    /// DDR4-2400 (AL=0, CL=17) timings as used by the paper's configuration
    /// (tRC = 46.25 ns, tFAW = 35 ns, tREFW = 64 ms; see Table 1).
    pub fn ddr4_2400() -> Self {
        // Bus clock: 1200 MHz -> 0.833 ns per bus cycle.
        let tck = 1.0 / 1.2;
        Self {
            t_rc: 46.25,
            t_rcd: 14.16,
            t_rp: 14.16,
            t_ras: 32.0,
            t_rrd_s: 4.0 * tck,
            t_rrd_l: 6.0 * tck,
            t_faw: 35.0,
            t_ccd_s: 4.0 * tck,
            t_ccd_l: 6.0 * tck,
            t_wtr_s: 2.5,
            t_wtr_l: 7.5,
            t_rtp: 7.5,
            t_wr: 15.0,
            t_cl: 17.0 * tck,
            t_cwl: 12.0 * tck,
            t_bl: 4.0 * tck,
            t_refi: 7800.0,
            t_rfc: 350.0,
            t_refw: 64.0e6,
        }
    }

    /// LPDDR4-like variant: identical to DDR4-2400 except the refresh
    /// window is halved (32 ms), which is the difference the paper calls
    /// out when discussing tuning for different standards (Section 3.1.3).
    pub fn lpddr4_3200() -> Self {
        Self {
            t_refw: 32.0e6,
            t_rc: 48.0,
            ..Self::ddr4_2400()
        }
    }

    /// Returns a copy with the refresh window (and refresh interval) divided
    /// by `factor`, used by the scaled-time simulation mode. All per-command
    /// timings are left untouched so row activation costs stay realistic.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn with_time_scale(mut self, factor: u64) -> Self {
        assert!(factor > 0, "time scale factor must be non-zero");
        self.t_refw /= factor as f64;
        self
    }

    /// Converts every parameter into simulation-clock cycles.
    pub fn into_cycles(self, clock: &TimeConverter) -> TimingsInCycles {
        TimingsInCycles {
            t_rc: clock.ns_to_cycles(self.t_rc),
            t_rcd: clock.ns_to_cycles(self.t_rcd),
            t_rp: clock.ns_to_cycles(self.t_rp),
            t_ras: clock.ns_to_cycles(self.t_ras),
            t_rrd_s: clock.ns_to_cycles(self.t_rrd_s),
            t_rrd_l: clock.ns_to_cycles(self.t_rrd_l),
            t_faw: clock.ns_to_cycles(self.t_faw),
            t_ccd_s: clock.ns_to_cycles(self.t_ccd_s),
            t_ccd_l: clock.ns_to_cycles(self.t_ccd_l),
            t_wtr_s: clock.ns_to_cycles(self.t_wtr_s),
            t_wtr_l: clock.ns_to_cycles(self.t_wtr_l),
            t_rtp: clock.ns_to_cycles(self.t_rtp),
            t_wr: clock.ns_to_cycles(self.t_wr),
            t_cl: clock.ns_to_cycles(self.t_cl),
            t_cwl: clock.ns_to_cycles(self.t_cwl),
            t_bl: clock.ns_to_cycles(self.t_bl),
            t_refi: clock.ns_to_cycles(self.t_refi),
            t_rfc: clock.ns_to_cycles(self.t_rfc),
            t_refw: clock.ns_to_cycles(self.t_refw),
            clock: *clock,
            source_ns: self,
        }
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

/// DDR4 timing parameters converted to simulation-clock cycles.
///
/// Obtained from [`DramTimings::into_cycles`]; consumed by the bank and
/// rank state machines and by the defenses (e.g. Eq. 1 of the paper uses
/// `tRC`, `tREFW` and `tFAW`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // fields mirror DramTimings; documented there.
pub struct TimingsInCycles {
    pub t_rc: Cycle,
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_ras: Cycle,
    pub t_rrd_s: Cycle,
    pub t_rrd_l: Cycle,
    pub t_faw: Cycle,
    pub t_ccd_s: Cycle,
    pub t_ccd_l: Cycle,
    pub t_wtr_s: Cycle,
    pub t_wtr_l: Cycle,
    pub t_rtp: Cycle,
    pub t_wr: Cycle,
    pub t_cl: Cycle,
    pub t_cwl: Cycle,
    pub t_bl: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
    pub t_refw: Cycle,
    /// Clock used for the conversion (kept for reporting).
    pub clock: TimeConverter,
    /// The original nanosecond-domain parameters.
    pub source_ns: DramTimings,
}

impl TimingsInCycles {
    /// Read latency from column command to first data beat (CL + BL).
    pub fn read_latency(&self) -> Cycle {
        self.t_cl + self.t_bl
    }

    /// Write latency from column command to end of burst (CWL + BL).
    pub fn write_latency(&self) -> Cycle {
        self.t_cwl + self.t_bl
    }

    /// The maximum number of activations a single bank can sustain within a
    /// refresh window given `tRC` alone (an upper bound used by security
    /// analyses and tests).
    pub fn max_acts_per_refresh_window_per_bank(&self) -> u64 {
        self.t_refw / self.t_rc.max(1)
    }

    /// The maximum number of activations a rank can sustain within a window
    /// of `window` cycles given the four-activation-window constraint.
    pub fn max_acts_in_window_per_rank(&self, window: Cycle) -> u64 {
        if self.t_faw == 0 {
            return u64::MAX;
        }
        // At most 4 ACTs per tFAW.
        4 * window.div_ceil(self.t_faw)
    }
}

impl Default for TimingsInCycles {
    fn default() -> Self {
        DramTimings::default().into_cycles(&TimeConverter::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_2400_matches_paper_constants() {
        let t = DramTimings::ddr4_2400();
        assert!((t.t_rc - 46.25).abs() < 1e-9);
        assert!((t.t_faw - 35.0).abs() < 1e-9);
        assert!((t.t_refw - 64.0e6).abs() < 1e-3);
    }

    #[test]
    fn conversion_preserves_ordering_constraints() {
        let t = DramTimings::ddr4_2400().into_cycles(&TimeConverter::default());
        assert!(t.t_ras >= t.t_rcd, "a row must stay open at least tRCD");
        assert!(t.t_rc >= t.t_ras + t.t_rp - 2, "tRC ~ tRAS + tRP");
        assert!(t.t_rrd_l >= t.t_rrd_s);
        assert!(t.t_ccd_l >= t.t_ccd_s);
        assert!(t.t_faw >= t.t_rrd_s * 3);
        assert!(t.t_refw > t.t_refi);
    }

    #[test]
    fn time_scale_shrinks_only_refresh_window() {
        let base = DramTimings::ddr4_2400();
        let scaled = base.with_time_scale(64);
        assert!((scaled.t_refw - base.t_refw / 64.0).abs() < 1e-6);
        assert_eq!(scaled.t_rc, base.t_rc);
        assert_eq!(scaled.t_faw, base.t_faw);
    }

    #[test]
    fn lpddr4_halves_refresh_window() {
        let d = DramTimings::ddr4_2400();
        let l = DramTimings::lpddr4_3200();
        assert!((l.t_refw - d.t_refw / 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_acts_bounds_are_consistent() {
        let t = TimingsInCycles::default();
        let per_bank = t.max_acts_per_refresh_window_per_bank();
        // 64ms / 46.25ns ~ 1.38M activations.
        assert!(per_bank > 1_300_000 && per_bank < 1_450_000);
        let per_rank_faw = t.max_acts_in_window_per_rank(t.t_refw);
        assert!(
            per_rank_faw > per_bank,
            "tFAW bound is rank-wide and looser per bank"
        );
    }

    #[test]
    fn latencies_are_positive() {
        let t = TimingsInCycles::default();
        assert!(t.read_latency() > 0);
        assert!(t.write_latency() > 0);
    }
}
