//! The top-level DRAM device: a set of ranks plus statistics.

use crate::organization::DramOrganization;
use crate::rank::Rank;
use crate::stats::DramStats;
use crate::timings::TimingsInCycles;
use bh_types::{Cycle, DramAddress, MemCommand};

/// Result of issuing a command to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Cycle at which the command's effect completes (data available for
    /// reads, burst finished for writes, tRFC elapsed for refreshes).
    pub completes_at: Cycle,
}

/// A complete DRAM subsystem (all channels and ranks) with cycle-accurate
/// command legality checks.
///
/// The device is passive: the memory controller decides *what* to issue and
/// asks the device *when* it may legally do so.
#[derive(Debug, Clone)]
pub struct DramDevice {
    organization: DramOrganization,
    timings: TimingsInCycles,
    ranks: Vec<Rank>,
    stats: DramStats,
}

impl DramDevice {
    /// Creates a device with the given organization and timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if the organization fails validation (zero-sized dimension).
    pub fn new(organization: DramOrganization, timings: TimingsInCycles) -> Self {
        // lint: allow(panic-freedom) -- documented constructor contract; DramOrganization::validate is the fallible path
        organization.validate().expect("invalid DRAM organization");
        let total_ranks = organization.total_ranks();
        Self {
            organization,
            timings,
            ranks: (0..total_ranks).map(|_| Rank::new(&organization)).collect(),
            stats: DramStats::new(total_ranks),
        }
    }

    /// The device's organization.
    pub fn organization(&self) -> &DramOrganization {
        &self.organization
    }

    /// The device's timing parameters (in simulation cycles).
    pub fn timings(&self) -> &TimingsInCycles {
        &self.timings
    }

    /// Enables per-activation logging in the statistics (used by safety
    /// verification).
    pub fn enable_activation_log(&mut self) {
        self.stats.enable_activation_log();
    }

    fn rank_index(&self, addr: &DramAddress) -> usize {
        self.organization.rank_index(addr.channel(), addr.rank())
    }

    /// Immutable access to a rank by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rank(&self, index: usize) -> &Rank {
        &self.ranks[index]
    }

    /// Number of ranks in the system.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// The currently open row in the bank addressed by `addr`, if any.
    pub fn open_row(&self, addr: &DramAddress) -> Option<u64> {
        let rank = &self.ranks[self.rank_index(addr)];
        rank.bank(addr.bank_in_rank(self.organization.banks_per_group))
            .open_row()
    }

    /// The currently open row of the bank identified by its flat rank index
    /// and its flat bank index within the rank, if any.
    ///
    /// This is the index-based counterpart of [`DramDevice::open_row`]: a
    /// scheduler that tracks banks by index (rather than by decoded
    /// address) can query row-buffer state without materialising a
    /// [`DramAddress`].
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn open_row_at(&self, rank_index: usize, bank_in_rank: usize) -> Option<u64> {
        self.ranks[rank_index].bank(bank_in_rank).open_row()
    }

    /// Banks per rank (the index space of [`DramDevice::open_row_at`]'s
    /// second argument).
    pub fn banks_per_rank(&self) -> usize {
        self.organization.banks_per_rank()
    }

    /// Earliest cycle at which `cmd` to `addr` could be legally issued, or
    /// `None` if it is illegal in the current state (wrong row open, bank
    /// not activated, ...).
    pub fn earliest_issue(&self, cmd: MemCommand, addr: &DramAddress) -> Option<Cycle> {
        self.ranks[self.rank_index(addr)].earliest_issue(cmd, addr, &self.timings)
    }

    /// Whether `cmd` to `addr` may be issued at `now`.
    pub fn can_issue(&self, cmd: MemCommand, addr: &DramAddress, now: Cycle) -> bool {
        self.earliest_issue(cmd, addr).is_some_and(|t| t <= now)
    }

    /// Issues `cmd` to `addr` at `now` and returns when it completes.
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal at `now`; callers must consult
    /// [`DramDevice::can_issue`] first.
    pub fn issue(&mut self, cmd: MemCommand, addr: &DramAddress, now: Cycle) -> IssueOutcome {
        let rank_idx = self.rank_index(addr);
        let completes_at = self.ranks[rank_idx].issue(cmd, addr, now, &self.timings);
        self.stats.per_rank[rank_idx].record(cmd);
        if cmd == MemCommand::Activate {
            let global_bank = addr.global_bank_index(
                self.organization.ranks,
                self.organization.bank_groups,
                self.organization.banks_per_group,
            );
            self.stats.log_activation(now, global_bank, addr.row());
        }
        self.stats.elapsed_cycles = self.stats.elapsed_cycles.max(completes_at);
        IssueOutcome { completes_at }
    }

    /// Finalizes accounting at `now` and returns a snapshot of the
    /// statistics (command counts, active-bank cycles, activation log).
    pub fn finish(&mut self, now: Cycle) -> DramStats {
        for (idx, rank) in self.ranks.iter_mut().enumerate() {
            rank.close_accounting(now);
            self.stats.active_bank_cycles[idx] = rank.total_active_cycles();
        }
        self.stats.elapsed_cycles = self.stats.elapsed_cycles.max(now);
        self.stats.clone()
    }

    /// Read-only access to the running statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramTimings;
    use bh_types::TimeConverter;

    fn device() -> DramDevice {
        DramDevice::new(
            DramOrganization::default(),
            DramTimings::ddr4_2400().into_cycles(&TimeConverter::default()),
        )
    }

    fn addr(bg: usize, bank: usize, row: u64, col: u64) -> DramAddress {
        DramAddress::new(0, 0, bg, bank, row, col)
    }

    #[test]
    fn read_after_activate_completes_after_read_latency() {
        let mut d = device();
        let a = addr(0, 0, 42, 3);
        d.issue(MemCommand::Activate, &a, 0);
        let rd_at = d.earliest_issue(MemCommand::Read, &a).unwrap();
        let outcome = d.issue(MemCommand::Read, &a, rd_at);
        assert_eq!(outcome.completes_at, rd_at + d.timings().read_latency());
        assert_eq!(d.open_row(&a), Some(42));
    }

    #[test]
    fn stats_count_commands_and_log_activations() {
        let mut d = device();
        d.enable_activation_log();
        let a = addr(1, 2, 7, 0);
        d.issue(MemCommand::Activate, &a, 0);
        let rd_at = d.earliest_issue(MemCommand::Read, &a).unwrap();
        d.issue(MemCommand::Read, &a, rd_at);
        let stats = d.finish(rd_at + 100);
        assert_eq!(stats.totals().activates, 1);
        assert_eq!(stats.totals().reads, 1);
        assert_eq!(stats.activation_log.as_ref().unwrap().len(), 1);
        assert_eq!(stats.max_row_activations_in_window(1_000_000), Some(1));
        assert!(stats.active_bank_cycles[0] > 0);
    }

    #[test]
    fn conflicting_row_requires_precharge_first() {
        let mut d = device();
        let a = addr(0, 0, 1, 0);
        let b = addr(0, 0, 2, 0);
        d.issue(MemCommand::Activate, &a, 0);
        assert!(d.earliest_issue(MemCommand::Activate, &b).is_none());
        let pre_at = d.earliest_issue(MemCommand::Precharge, &a).unwrap();
        d.issue(MemCommand::Precharge, &a, pre_at);
        let act_at = d.earliest_issue(MemCommand::Activate, &b).unwrap();
        assert!(act_at >= d.timings().t_rc);
        d.issue(MemCommand::Activate, &b, act_at);
        assert_eq!(d.open_row(&b), Some(2));
    }

    #[test]
    fn banks_operate_independently() {
        let mut d = device();
        let a = addr(0, 0, 1, 0);
        let b = addr(2, 1, 9, 0);
        d.issue(MemCommand::Activate, &a, 0);
        let act_b = d.earliest_issue(MemCommand::Activate, &b).unwrap();
        assert!(
            act_b < d.timings().t_rc,
            "different banks need only tRRD, not tRC"
        );
        d.issue(MemCommand::Activate, &b, act_b);
        assert_eq!(d.open_row(&a), Some(1));
        assert_eq!(d.open_row(&b), Some(9));
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn illegal_issue_panics() {
        let mut d = device();
        let a = addr(0, 0, 1, 0);
        d.issue(MemCommand::Read, &a, 0);
    }
}
