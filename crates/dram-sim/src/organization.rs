//! DRAM organization (channels, ranks, bank groups, banks, rows, columns).

use bh_types::{AddressMappingGeometry, ConfigError};
use serde::{Deserialize, Serialize};

/// The physical organization of the simulated DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramOrganization {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (DDR4 has 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4 has 4).
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Columns (cache-line-sized) per row.
    pub columns_per_row: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Number of hardware threads sharing this memory system (used to size
    /// per-thread defense state).
    pub threads: usize,
}

impl Default for DramOrganization {
    /// The paper's simulated system (Table 5): one channel, one rank,
    /// 4 bank groups x 4 banks, 64K rows per bank, eight cores.
    fn default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows_per_bank: 65_536,
            columns_per_row: 128,
            line_bytes: 64,
            threads: 8,
        }
    }
}

impl DramOrganization {
    /// Validates the organization, returning an error naming the offending
    /// field if any dimension is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        macro_rules! nonzero {
            ($field:ident) => {
                if self.$field == 0 {
                    return Err(ConfigError::new(stringify!($field), "must be non-zero"));
                }
            };
        }
        nonzero!(channels);
        nonzero!(ranks);
        nonzero!(bank_groups);
        nonzero!(banks_per_group);
        nonzero!(rows_per_bank);
        nonzero!(columns_per_row);
        nonzero!(line_bytes);
        nonzero!(threads);
        Ok(())
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Total ranks in the system.
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> usize {
        self.total_ranks() * self.banks_per_rank()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank * self.columns_per_row * self.line_bytes
    }

    /// Flat rank index for a (channel, rank) pair.
    pub fn rank_index(&self, channel: usize, rank: usize) -> usize {
        channel * self.ranks + rank
    }

    /// Banks within one channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.banks_per_rank()
    }

    /// The organization of a single channel of this system (`channels` = 1,
    /// everything else unchanged) — what each shard of a channel-sharded
    /// memory subsystem instantiates.
    pub fn per_channel(&self) -> Self {
        Self {
            channels: 1,
            ..*self
        }
    }

    /// The address-mapping geometry equivalent of this organization.
    pub fn geometry(&self) -> AddressMappingGeometry {
        AddressMappingGeometry {
            channels: self.channels,
            ranks: self.ranks,
            bank_groups: self.bank_groups,
            banks_per_group: self.banks_per_group,
            rows: self.rows_per_bank,
            columns: self.columns_per_row,
            line_bytes: self.line_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table5() {
        let o = DramOrganization::default();
        assert_eq!(o.total_banks(), 16);
        assert_eq!(o.banks_per_rank(), 16);
        assert_eq!(o.capacity_bytes(), 8 << 30);
        assert_eq!(o.threads, 8);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_dimensions() {
        let o = DramOrganization {
            rows_per_bank: 0,
            ..DramOrganization::default()
        };
        let err = o.validate().unwrap_err();
        assert_eq!(err.field(), "rows_per_bank");
    }

    #[test]
    fn geometry_mirrors_organization() {
        let o = DramOrganization::default();
        let g = o.geometry();
        assert_eq!(g.total_banks(), o.total_banks());
        assert_eq!(g.capacity_bytes(), o.capacity_bytes());
    }

    #[test]
    fn rank_index_is_dense() {
        let o = DramOrganization {
            channels: 2,
            ranks: 2,
            ..DramOrganization::default()
        };
        let mut seen = std::collections::HashSet::new();
        for ch in 0..2 {
            for ra in 0..2 {
                assert!(seen.insert(o.rank_index(ch, ra)));
            }
        }
        assert_eq!(seen.len(), o.total_ranks());
    }
}
