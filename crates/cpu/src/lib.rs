//! # cpu
//!
//! A trace-driven out-of-order core model in the spirit of Ramulator's
//! simple CPU model (Table 5 of the paper: 3.2 GHz, 4-wide issue,
//! 128-entry instruction window).
//!
//! Each core consumes a stream of [`TraceRecord`]s. Non-memory instructions
//! retire immediately once issued; loads occupy an instruction-window slot
//! until the memory system signals completion; stores retire without
//! waiting (write-back memory system). When the window is full or the
//! memory system refuses a request, the core stalls.
//!
//! ## Example
//!
//! ```
//! use bh_types::{Cycle, ThreadId, TraceRecord};
//! use cpu::{Core, CoreConfig, MemorySink};
//!
//! /// A memory that answers every request instantly.
//! struct InstantMemory { next_token: u64, done: Vec<u64> }
//! impl MemorySink for InstantMemory {
//!     fn try_send(&mut self, _t: ThreadId, _addr: u64, _w: bool, _b: bool, _now: Cycle)
//!         -> Option<u64>
//!     {
//!         self.next_token += 1;
//!         self.done.push(self.next_token);
//!         Some(self.next_token)
//!     }
//! }
//!
//! let trace = vec![TraceRecord::load(3, 0x40), TraceRecord::load(0, 0x80)];
//! let mut core = Core::new(ThreadId::new(0), CoreConfig::default(), trace.into_iter());
//! let mut memory = InstantMemory { next_token: 0, done: Vec::new() };
//! for cycle in 0..100 {
//!     core.tick(cycle, &mut memory);
//!     for token in memory.done.drain(..) {
//!         core.on_memory_complete(token);
//!     }
//! }
//! assert_eq!(core.retired_instructions(), 5);
//! assert!(core.is_finished());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bh_types::{Cycle, ThreadId, TraceRecord};
use std::collections::VecDeque;

/// Destination of a core's memory requests (the LLC or, for bypassing
/// accesses, the memory controller). Implemented by the simulation harness.
pub trait MemorySink {
    /// Attempts to send a memory request on behalf of `thread`.
    ///
    /// Returns a token that will later be passed to
    /// [`Core::on_memory_complete`], or `None` if the request cannot be
    /// accepted this cycle (queue full / quota exceeded); the core will
    /// retry on a later cycle.
    fn try_send(
        &mut self,
        thread: ThreadId,
        address: u64,
        is_write: bool,
        bypass_cache: bool,
        now: Cycle,
    ) -> Option<u64>;
}

/// Static parameters of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum instructions issued and retired per cycle.
    pub issue_width: usize,
    /// Instruction window (ROB) capacity.
    pub window_size: usize,
    /// Stop fetching once this many instructions have retired
    /// (`u64::MAX` = run the whole trace).
    pub instruction_limit: u64,
}

impl Default for CoreConfig {
    /// The paper's core: 4-wide issue, 128-entry window, no limit.
    fn default() -> Self {
        Self {
            issue_width: 4,
            window_size: 128,
            instruction_limit: u64::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    done: bool,
    token: Option<u64>,
}

/// Per-core performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Cycles the core has been ticked.
    pub cycles: u64,
    /// Memory requests sent.
    pub memory_requests: u64,
    /// Cycles in which no instruction could be issued because the memory
    /// system refused a request.
    pub stall_cycles_memory: u64,
    /// Cycles in which issue stopped because the window was full.
    pub stall_cycles_window: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }
}

/// A single trace-driven core.
#[derive(Debug)]
pub struct Core<T: Iterator<Item = TraceRecord>> {
    id: ThreadId,
    config: CoreConfig,
    trace: T,
    window: VecDeque<WindowEntry>,
    /// Non-memory instructions of the current record still to issue.
    pending_non_memory: u32,
    /// The memory access of the current record, not yet accepted.
    pending_access: Option<TraceRecord>,
    trace_exhausted: bool,
    stats: CoreStats,
}

impl<T: Iterator<Item = TraceRecord>> Core<T> {
    /// Creates a core that executes `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has a zero issue width or window size.
    pub fn new(id: ThreadId, config: CoreConfig, trace: T) -> Self {
        assert!(config.issue_width > 0, "issue width must be non-zero");
        assert!(config.window_size > 0, "window size must be non-zero");
        Self {
            id,
            config,
            trace,
            window: VecDeque::with_capacity(config.window_size),
            pending_non_memory: 0,
            pending_access: None,
            trace_exhausted: false,
            stats: CoreStats::default(),
        }
    }

    /// The hardware-thread identifier of this core.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired_instructions(&self) -> u64 {
        self.stats.retired_instructions
    }

    /// Performance counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the core has reached its instruction limit, or exhausted its
    /// trace and drained its window.
    pub fn is_finished(&self) -> bool {
        self.stats.retired_instructions >= self.config.instruction_limit
            || (self.trace_exhausted
                && self.pending_access.is_none()
                && self.pending_non_memory == 0
                && self.window.is_empty())
    }

    /// Whether the next [`Core::tick`] could retire or issue anything.
    /// Event-driven stepping uses this to decide if the core forces
    /// per-cycle ticks: a blocked core's tick only bumps unexported stall
    /// accounting (the window head is incomplete and nothing can issue),
    /// so skipping its ticks cannot change observable behaviour, while
    /// any core that could reach the memory system must tick every cycle
    /// (even a refused request mutates cache and admission statistics).
    pub fn wants_tick(&self) -> bool {
        if self.is_finished() {
            return false;
        }
        // Retirement: the window head is complete.
        if self.window.front().is_some_and(|entry| entry.done) {
            return true;
        }
        // Issue: mirror `tick`'s stop conditions — the instruction limit
        // and a full window halt issue before any memory attempt.
        if self.stats.retired_instructions + self.window.len() as u64
            >= self.config.instruction_limit
        {
            return false;
        }
        if self.window.len() >= self.config.window_size {
            return false;
        }
        // Anything left to issue? (`!trace_exhausted` over-approximates by
        // exactly one tick when the trace turns out to be empty.)
        self.pending_non_memory > 0 || self.pending_access.is_some() || !self.trace_exhausted
    }

    /// Marks the load identified by `token` as complete, unblocking its
    /// window slot for retirement.
    pub fn on_memory_complete(&mut self, token: u64) {
        if let Some(entry) = self
            .window
            .iter_mut()
            .find(|e| e.token == Some(token) && !e.done)
        {
            entry.done = true;
        }
    }

    fn refill_pending(&mut self) {
        if self.pending_access.is_none() && self.pending_non_memory == 0 && !self.trace_exhausted {
            match self.trace.next() {
                Some(record) => {
                    self.pending_non_memory = record.non_memory_instructions;
                    self.pending_access = Some(record);
                }
                None => self.trace_exhausted = true,
            }
        }
    }

    /// Advances the core by one cycle: retires completed instructions from
    /// the window head and issues new ones, sending memory accesses to
    /// `memory`.
    pub fn tick(&mut self, now: Cycle, memory: &mut dyn MemorySink) {
        if self.is_finished() {
            return;
        }
        self.stats.cycles += 1;
        // Retire in order from the head of the window.
        let mut retired = 0;
        while retired < self.config.issue_width {
            match self.window.front() {
                Some(entry) if entry.done => {
                    self.window.pop_front();
                    self.stats.retired_instructions += 1;
                    retired += 1;
                }
                _ => break,
            }
        }
        // Issue.
        let mut issued = 0;
        while issued < self.config.issue_width {
            if self.stats.retired_instructions + self.window.len() as u64
                >= self.config.instruction_limit
            {
                break;
            }
            self.refill_pending();
            if self.window.len() >= self.config.window_size {
                self.stats.stall_cycles_window += 1;
                break;
            }
            if self.pending_non_memory > 0 {
                self.pending_non_memory -= 1;
                self.window.push_back(WindowEntry {
                    done: true,
                    token: None,
                });
                issued += 1;
                continue;
            }
            let Some(record) = self.pending_access else {
                // Trace exhausted.
                break;
            };
            match memory.try_send(
                self.id,
                record.address,
                record.is_write,
                record.bypass_cache,
                now,
            ) {
                Some(token) => {
                    self.stats.memory_requests += 1;
                    self.window.push_back(WindowEntry {
                        // Stores retire without waiting for memory.
                        done: record.is_write,
                        token: Some(token),
                    });
                    self.pending_access = None;
                    issued += 1;
                }
                None => {
                    self.stats.stall_cycles_memory += 1;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memory model with a fixed latency and bounded concurrency.
    struct TestMemory {
        latency: Cycle,
        capacity: usize,
        inflight: Vec<(Cycle, u64)>,
        next_token: u64,
        completed: Vec<u64>,
        requests_seen: Vec<(u64, bool, bool)>,
    }

    impl TestMemory {
        fn new(latency: Cycle, capacity: usize) -> Self {
            Self {
                latency,
                capacity,
                inflight: Vec::new(),
                next_token: 0,
                completed: Vec::new(),
                requests_seen: Vec::new(),
            }
        }

        fn tick(&mut self, now: Cycle) {
            let mut i = 0;
            while i < self.inflight.len() {
                if self.inflight[i].0 <= now {
                    let (_, token) = self.inflight.swap_remove(i);
                    self.completed.push(token);
                } else {
                    i += 1;
                }
            }
        }
    }

    impl MemorySink for TestMemory {
        fn try_send(
            &mut self,
            _thread: ThreadId,
            address: u64,
            is_write: bool,
            bypass: bool,
            now: Cycle,
        ) -> Option<u64> {
            if self.inflight.len() >= self.capacity {
                return None;
            }
            self.next_token += 1;
            self.inflight.push((now + self.latency, self.next_token));
            self.requests_seen.push((address, is_write, bypass));
            Some(self.next_token)
        }
    }

    fn run<T: Iterator<Item = TraceRecord>>(
        core: &mut Core<T>,
        memory: &mut TestMemory,
        cycles: Cycle,
    ) {
        for now in 0..cycles {
            memory.tick(now);
            for token in memory.completed.drain(..) {
                core.on_memory_complete(token);
            }
            core.tick(now, memory);
            if core.is_finished() {
                break;
            }
        }
    }

    #[test]
    fn pure_compute_trace_achieves_full_issue_width() {
        // One memory access after a long run of non-memory instructions.
        let trace = vec![TraceRecord::load(100_000, 0x40)];
        let mut core = Core::new(ThreadId::new(0), CoreConfig::default(), trace.into_iter());
        let mut memory = TestMemory::new(1, 16);
        run(&mut core, &mut memory, 1_000_000);
        assert!(core.is_finished());
        let ipc = core.stats().ipc();
        assert!(ipc > 3.5, "compute-bound IPC should approach 4, got {ipc}");
    }

    #[test]
    fn long_latency_memory_bounds_ipc() {
        // Every instruction is a dependent-ish load with 200-cycle latency
        // and a single outstanding request allowed.
        let trace: Vec<TraceRecord> = (0..200).map(|i| TraceRecord::load(0, i * 4096)).collect();
        let mut core = Core::new(ThreadId::new(0), CoreConfig::default(), trace.into_iter());
        let mut memory = TestMemory::new(200, 1);
        run(&mut core, &mut memory, 1_000_000);
        assert!(core.is_finished());
        let ipc = core.stats().ipc();
        assert!(ipc < 0.05, "memory-bound IPC should be tiny, got {ipc}");
        assert!(core.stats().stall_cycles_memory > 0);
    }

    #[test]
    fn window_limits_outstanding_loads() {
        let trace: Vec<TraceRecord> = (0..1_000).map(|i| TraceRecord::load(0, i * 64)).collect();
        let config = CoreConfig {
            window_size: 8,
            ..CoreConfig::default()
        };
        let mut core = Core::new(ThreadId::new(0), config, trace.into_iter());
        // Memory never answers: the window must cap outstanding requests.
        let mut memory = TestMemory::new(u64::MAX / 2, 1024);
        for now in 0..100 {
            core.tick(now, &mut memory);
        }
        assert!(memory.requests_seen.len() <= 8);
        assert!(core.stats().stall_cycles_window > 0);
    }

    #[test]
    fn stores_retire_without_waiting() {
        let trace = vec![TraceRecord::store(0, 0x40), TraceRecord::store(0, 0x80)];
        let mut core = Core::new(ThreadId::new(0), CoreConfig::default(), trace.into_iter());
        // Memory with effectively infinite latency: stores must still retire.
        let mut memory = TestMemory::new(u64::MAX / 2, 16);
        for now in 0..10 {
            core.tick(now, &mut memory);
        }
        assert_eq!(core.retired_instructions(), 2);
        assert!(core.is_finished());
    }

    #[test]
    fn instruction_limit_stops_the_core() {
        let trace = (0..).map(|i| TraceRecord::load(9, (i as u64) * 64));
        let config = CoreConfig {
            instruction_limit: 500,
            ..CoreConfig::default()
        };
        let mut core = Core::new(ThreadId::new(0), config, trace);
        let mut memory = TestMemory::new(5, 64);
        run(&mut core, &mut memory, 100_000);
        assert!(core.is_finished());
        assert_eq!(core.retired_instructions(), 500);
    }

    #[test]
    fn bypass_flag_is_propagated() {
        let trace = vec![TraceRecord::uncached_load(0, 0x1234)];
        let mut core = Core::new(ThreadId::new(0), CoreConfig::default(), trace.into_iter());
        let mut memory = TestMemory::new(1, 4);
        run(&mut core, &mut memory, 100);
        assert_eq!(memory.requests_seen.len(), 1);
        let (addr, is_write, bypass) = memory.requests_seen[0];
        assert_eq!(addr, 0x1234);
        assert!(!is_write);
        assert!(bypass);
    }
}
