//! # llc
//!
//! A shared last-level cache model: set-associative, LRU replacement,
//! write-back / write-allocate, with MSHR-based miss merging and support
//! for cache-bypassing (non-temporal) accesses.
//!
//! The cache is deliberately decoupled from the memory controller: it
//! reports *what* needs to be fetched or written back, and the simulation
//! harness (the `sim` crate) moves those requests to the controller and
//! calls [`Llc::fill`] when data returns. This keeps the cache unit-testable
//! in isolation.
//!
//! ## Example
//!
//! ```
//! use llc::{AccessResult, Llc, LlcConfig};
//! use bh_types::ThreadId;
//!
//! let mut llc = Llc::new(LlcConfig::default());
//! let thread = ThreadId::new(0);
//! // A cold access misses and allocates an MSHR entry.
//! assert!(matches!(llc.access(thread, 0x1000, false), AccessResult::MissAllocated));
//! // A second access to the same line merges into the outstanding miss.
//! assert!(matches!(llc.access(thread, 0x1008, false), AccessResult::MissMerged));
//! // When the line returns from memory the cache is filled.
//! let fill = llc.fill(0x1000);
//! assert!(fill.writeback.is_none());
//! // Subsequent accesses hit.
//! assert!(matches!(llc.access(thread, 0x1000, false), AccessResult::Hit));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bh_types::{ConfigError, ThreadId};
use std::collections::{HashMap, HashSet};

/// Configuration of the last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Load-to-use latency of a hit, in core cycles.
    pub hit_latency: u64,
    /// Maximum outstanding line fetches (MSHR entries).
    pub mshr_entries: usize,
}

impl Default for LlcConfig {
    /// The paper's LLC (Table 5): 16 MiB, 8-way, 64-byte lines.
    fn default() -> Self {
        Self {
            capacity_bytes: 16 * 1024 * 1024,
            associativity: 8,
            line_bytes: 64,
            hit_latency: 30,
            mshr_entries: 64,
        }
    }
}

impl LlcConfig {
    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.associativity as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any dimension is zero, the line size is
    /// not a power of two, or the capacity is not an integer number of sets.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.capacity_bytes == 0 {
            return Err(ConfigError::new("capacity_bytes", "must be non-zero"));
        }
        if self.associativity == 0 {
            return Err(ConfigError::new("associativity", "must be non-zero"));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("line_bytes", "must be a power of two"));
        }
        if self.mshr_entries == 0 {
            return Err(ConfigError::new("mshr_entries", "must be non-zero"));
        }
        if self.capacity_bytes % (self.line_bytes * self.associativity as u64) != 0 {
            return Err(ConfigError::new(
                "capacity_bytes",
                "must be a multiple of line_bytes * associativity",
            ));
        }
        Ok(())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line is resident; data is available after the hit latency.
    Hit,
    /// The line is not resident and a new outstanding fetch was allocated;
    /// the caller must fetch the line from memory and call [`Llc::fill`].
    MissAllocated,
    /// The line is not resident but a fetch is already outstanding; the
    /// caller should wait for the existing fill.
    MissMerged,
    /// The line is not resident and no MSHR entry is available; retry later.
    MshrFull,
}

/// Result of filling a line into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// Physical address of a dirty line that was evicted and must be
    /// written back to memory, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// Per-thread and aggregate cache statistics.
#[derive(Debug, Clone, Default)]
pub struct LlcStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (allocated or merged).
    pub misses: u64,
    /// Accesses rejected because the MSHRs were full.
    pub mshr_rejections: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Misses per thread.
    pub misses_per_thread: HashMap<usize, u64>,
    /// Accesses per thread.
    pub accesses_per_thread: HashMap<usize, u64>,
}

impl LlcStats {
    /// Miss rate over all demand accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The shared last-level cache.
#[derive(Debug)]
pub struct Llc {
    config: LlcConfig,
    sets: Vec<Vec<Line>>,
    /// Outstanding line fetches (line-aligned addresses).
    mshr: HashSet<u64>,
    lru_clock: u64,
    stats: LlcStats,
}

impl Llc {
    /// Creates a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`LlcConfig::validate`]).
    pub fn new(config: LlcConfig) -> Self {
        // lint: allow(panic-freedom) -- documented constructor contract; LlcConfig::validate is the fallible path
        config.validate().expect("invalid LLC configuration");
        Self {
            sets: vec![Vec::with_capacity(config.associativity); config.sets() as usize],
            mshr: HashSet::new(),
            lru_clock: 0,
            stats: LlcStats::default(),
            config,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn line_addr(&self, phys: u64) -> u64 {
        phys & !(self.config.line_bytes - 1)
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.config.line_bytes) % self.config.sets()) as usize
    }

    fn tag(&self, line_addr: u64) -> u64 {
        line_addr / self.config.line_bytes / self.config.sets()
    }

    /// Line-aligned address of `phys` (exposed so callers can key their
    /// miss bookkeeping consistently with the cache's merging).
    pub fn line_of(&self, phys: u64) -> u64 {
        self.line_addr(phys)
    }

    /// Whether a fetch for the line containing `phys` is outstanding.
    pub fn is_miss_pending(&self, phys: u64) -> bool {
        self.mshr.contains(&self.line_addr(phys))
    }

    /// Performs a demand access.
    pub fn access(&mut self, thread: ThreadId, phys: u64, is_write: bool) -> AccessResult {
        let line_addr = self.line_addr(phys);
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.lru_clock += 1;
        *self
            .stats
            .accesses_per_thread
            .entry(thread.index())
            .or_insert(0) += 1;
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.lru = self.lru_clock;
            if is_write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessResult::Hit;
        }
        self.stats.misses += 1;
        *self
            .stats
            .misses_per_thread
            .entry(thread.index())
            .or_insert(0) += 1;
        if self.mshr.contains(&line_addr) {
            return AccessResult::MissMerged;
        }
        if self.mshr.len() >= self.config.mshr_entries {
            self.stats.mshr_rejections += 1;
            // The access itself will be retried, so do not count it as a
            // resolved miss.
            self.stats.misses -= 1;
            if let Some(count) = self.stats.misses_per_thread.get_mut(&thread.index()) {
                *count -= 1;
            }
            return AccessResult::MshrFull;
        }
        self.mshr.insert(line_addr);
        AccessResult::MissAllocated
    }

    /// Installs the line containing `phys` (previously reported as
    /// [`AccessResult::MissAllocated`]) and returns an eventual dirty
    /// eviction. Write-allocated lines are marked dirty by the subsequent
    /// retry of the store, so fills always install clean lines.
    pub fn fill(&mut self, phys: u64) -> Fill {
        let line_addr = self.line_addr(phys);
        self.mshr.remove(&line_addr);
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        if self.sets[set_idx].iter().any(|l| l.tag == tag) {
            return Fill { writeback: None };
        }
        self.lru_clock += 1;
        let lru_clock = self.lru_clock;
        let associativity = self.config.associativity;
        let set = &mut self.sets[set_idx];
        if set.len() < associativity {
            set.push(Line {
                tag,
                dirty: false,
                lru: lru_clock,
            });
            return Fill { writeback: None };
        }
        // Evict the least recently used way.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            // lint: allow(panic-freedom) -- validated associativity >= 1 means every set is non-empty
            .expect("set is non-empty");
        let victim = set[victim_idx];
        set[victim_idx] = Line {
            tag,
            dirty: false,
            lru: lru_clock,
        };
        let writeback = victim.dirty.then(|| {
            self.stats.writebacks += 1;
            (victim.tag * self.config.sets() + set_idx as u64) * self.config.line_bytes
        });
        Fill { writeback }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Llc {
        Llc::new(LlcConfig {
            capacity_bytes: 8 * 1024,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 10,
            mshr_entries: 4,
        })
    }

    #[test]
    fn default_config_matches_table5() {
        let c = LlcConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.capacity_bytes, 16 * 1024 * 1024);
        assert_eq!(c.associativity, 8);
        assert_eq!(c.sets(), 32_768);
    }

    #[test]
    fn validate_rejects_bad_line_size() {
        let c = LlcConfig {
            line_bytes: 48,
            ..LlcConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field(), "line_bytes");
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut llc = small_cache();
        let t = ThreadId::new(0);
        assert_eq!(llc.access(t, 0x1000, false), AccessResult::MissAllocated);
        assert!(llc.is_miss_pending(0x1010));
        assert_eq!(llc.access(t, 0x1020, false), AccessResult::MissMerged);
        let fill = llc.fill(0x1000);
        assert!(fill.writeback.is_none());
        assert_eq!(llc.access(t, 0x1000, false), AccessResult::Hit);
        assert!((llc.stats().miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dirty_eviction_generates_writeback() {
        let mut llc = small_cache();
        let t = ThreadId::new(0);
        let sets = llc.config().sets();
        // Three lines mapping to the same set in a 2-way cache.
        let a = 0;
        let b = sets * 64;
        let c = 2 * sets * 64;
        for addr in [a, b] {
            assert_eq!(llc.access(t, addr, true), AccessResult::MissAllocated);
            llc.fill(addr);
            // Retry of the store marks the line dirty.
            assert_eq!(llc.access(t, addr, true), AccessResult::Hit);
        }
        assert_eq!(llc.access(t, c, false), AccessResult::MissAllocated);
        let fill = llc.fill(c);
        let wb = fill.writeback.expect("a dirty line must be written back");
        assert!(wb == a || wb == b, "writeback {wb:#x} is not a or b");
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn mshr_capacity_is_enforced() {
        let mut llc = small_cache();
        let t = ThreadId::new(1);
        for i in 0..4u64 {
            assert_eq!(
                llc.access(t, 0x10_000 + i * 64, false),
                AccessResult::MissAllocated
            );
        }
        assert_eq!(
            llc.access(t, 0x20_000, false),
            AccessResult::MshrFull,
            "fifth outstanding miss must be rejected"
        );
        assert_eq!(llc.stats().mshr_rejections, 1);
        llc.fill(0x10_000);
        assert_eq!(llc.access(t, 0x20_000, false), AccessResult::MissAllocated);
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let mut llc = small_cache();
        let t = ThreadId::new(0);
        let sets = llc.config().sets();
        let a = 0;
        let b = sets * 64;
        let c = 2 * sets * 64;
        for addr in [a, b] {
            llc.access(t, addr, false);
            llc.fill(addr);
        }
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(llc.access(t, a, false), AccessResult::Hit);
        llc.access(t, c, false);
        llc.fill(c);
        assert_eq!(llc.access(t, a, false), AccessResult::Hit);
        assert_eq!(llc.access(t, b, false), AccessResult::MissAllocated);
    }

    #[test]
    fn per_thread_stats_are_tracked() {
        let mut llc = small_cache();
        llc.access(ThreadId::new(0), 0x0, false);
        llc.access(ThreadId::new(1), 0x40, false);
        llc.access(ThreadId::new(1), 0x80, false);
        assert_eq!(llc.stats().accesses_per_thread[&0], 1);
        assert_eq!(llc.stats().accesses_per_thread[&1], 2);
        assert_eq!(llc.stats().misses_per_thread[&1], 2);
    }
}
