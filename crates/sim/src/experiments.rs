//! Experiment drivers that regenerate the paper's figures and tables.
//!
//! Every driver takes an [`ExperimentScale`] so the same code can run as a
//! fast smoke test (`ExperimentScale::quick`), at the default bench size
//! (`ExperimentScale::standard`), or at larger scales from the bench
//! binaries. The scaled-time substitution is described in DESIGN.md §5.

use crate::defense_factory::DefenseKind;
use crate::metrics::{average_metrics, MultiProgramMetrics, RunResult};
use crate::system::SystemBuilder;
use blockhammer::{BlockHammer, BlockHammerConfig};
use mitigations::{AsAny, RowHammerThreshold};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use workloads::{benign_catalog, WorkloadCategory, WorkloadMix, WorkloadSpec};

/// Knobs controlling how large an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Time-scaling factor applied to the refresh window and thresholds.
    pub time_scale: u64,
    /// Instructions each benign thread executes.
    pub benign_instructions: u64,
    /// Number of workload mixes per scenario.
    pub mix_count: usize,
    /// Threads per multiprogrammed mix (the paper uses 8).
    pub threads_per_mix: usize,
    /// Benign workloads evaluated per category in single-core studies.
    pub workloads_per_category: usize,
    /// LLC capacity in bytes (shrunk together with the instruction budget
    /// so cacheable workloads stay memory-bound, as they are at full scale).
    pub llc_bytes: u64,
    /// Base random seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// A smoke-test scale suitable for unit/integration tests (seconds).
    pub fn quick() -> Self {
        Self {
            time_scale: 8192,
            benign_instructions: 5_000,
            mix_count: 1,
            threads_per_mix: 4,
            workloads_per_category: 1,
            llc_bytes: 1 << 20,
            seed: 7,
        }
    }

    /// The default scale used by the bench harness binaries (minutes).
    pub fn standard() -> Self {
        Self {
            time_scale: 1024,
            benign_instructions: 100_000,
            mix_count: 3,
            threads_per_mix: 8,
            workloads_per_category: 2,
            llc_bytes: 4 << 20,
            seed: 7,
        }
    }

    fn builder(&self) -> SystemBuilder {
        // Run for at least two scaled refresh windows so every defense's
        // slow dynamics (blacklist expiry, RHLI accumulation) are exercised.
        let scaled_refresh_window = 204_800_000 / self.time_scale;
        SystemBuilder::new()
            .time_scale(self.time_scale)
            .llc_capacity(self.llc_bytes)
            .seed(self.seed)
            .max_cycles(200_000_000)
            .min_cycles(2 * scaled_refresh_window)
    }
}

// ---------------------------------------------------------------------------
// Figure 4: single-core execution time and DRAM energy.
// ---------------------------------------------------------------------------

/// One bar of Figure 4: a defense's normalized execution time and DRAM
/// energy for one workload category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Defense name.
    pub defense: String,
    /// Workload category (L / M / H).
    pub category: String,
    /// Execution time normalized to the no-mitigation baseline.
    pub normalized_execution_time: f64,
    /// DRAM energy normalized to the no-mitigation baseline.
    pub normalized_dram_energy: f64,
}

fn category_representatives(scale: &ExperimentScale) -> Vec<WorkloadSpec> {
    let catalog = benign_catalog();
    let mut picked = Vec::new();
    for category in [
        WorkloadCategory::Low,
        WorkloadCategory::Medium,
        WorkloadCategory::High,
    ] {
        picked.extend(
            catalog
                .iter()
                .filter(|w| w.category() == category && !w.synthetic.bypass_cache)
                .take(scale.workloads_per_category)
                .cloned(),
        );
    }
    picked
}

/// Runs the Figure 4 experiment: single-core benign applications under
/// every mechanism, normalized to the no-mitigation baseline.
pub fn figure4(scale: &ExperimentScale, paper_n_rh: u64) -> Vec<Figure4Row> {
    let representatives = category_representatives(scale);
    let mut rows = Vec::new();
    for kind in DefenseKind::figure_4_and_5_set() {
        // BTreeMap: category aggregation order (and thus row output order)
        // must not depend on hash-iteration order.
        let mut per_category: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for workload in &representatives {
            let baseline = scale
                .builder()
                .defense(DefenseKind::Baseline)
                .rowhammer_threshold(paper_n_rh)
                .add_workload(workload.synthetic.clone(), scale.benign_instructions)
                .run();
            let protected = scale
                .builder()
                .defense(kind)
                .rowhammer_threshold(paper_n_rh)
                .add_workload(workload.synthetic.clone(), scale.benign_instructions)
                .run();
            let time_ratio = protected.threads[0].cycles as f64 / baseline.threads[0].cycles as f64;
            let energy_ratio =
                protected.dram_energy_joules() / baseline.dram_energy_joules().max(1e-18);
            per_category
                .entry(workload.category().to_string())
                .or_default()
                .push((time_ratio, energy_ratio));
        }
        for (category, samples) in per_category {
            let n = samples.len() as f64;
            rows.push(Figure4Row {
                defense: kind.label().to_owned(),
                category,
                normalized_execution_time: samples.iter().map(|s| s.0).sum::<f64>() / n,
                normalized_dram_energy: samples.iter().map(|s| s.1).sum::<f64>() / n,
            });
        }
    }
    rows.sort_by_key(|row| (row.category.clone(), row.defense.clone()));
    rows
}

// ---------------------------------------------------------------------------
// Figure 5: 8-core multiprogrammed workloads, with and without an attacker.
// Figure 6: the same study swept over the RowHammer threshold.
// ---------------------------------------------------------------------------

/// One point of Figures 5/6: a defense's normalized multiprogrammed metrics
/// for one scenario (and threshold).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiProgramRow {
    /// Defense name.
    pub defense: String,
    /// `"no-attack"` or `"attack"`.
    pub scenario: String,
    /// Full-scale RowHammer threshold this point was configured for.
    pub n_rh: u64,
    /// Metrics normalized to the no-mitigation baseline (weighted speedup,
    /// harmonic speedup, maximum slowdown, DRAM energy).
    pub normalized: MultiProgramMetrics,
}

/// Runs one mix under one defense and returns the run plus the benign
/// threads' stand-alone IPCs (measured on the unprotected baseline).
fn run_mix(
    scale: &ExperimentScale,
    mix: &WorkloadMix,
    kind: DefenseKind,
    paper_n_rh: u64,
    alone_cache: &mut HashMap<String, f64>,
) -> (RunResult, Vec<f64>) {
    let mut builder = scale
        .builder()
        .defense(kind)
        .rowhammer_threshold(paper_n_rh)
        .seed(scale.seed ^ mix.seed);
    if mix.has_attacker() {
        builder = builder.add_attacker_kind(mix.attack);
    }
    for workload in &mix.benign {
        builder = builder.add_workload(workload.synthetic.clone(), scale.benign_instructions);
    }
    let result = builder.run();
    let alone: Vec<f64> = mix
        .benign
        .iter()
        .map(|workload| {
            let key = workload.name().to_owned();
            *alone_cache.entry(key).or_insert_with(|| {
                scale
                    .builder()
                    .defense(DefenseKind::Baseline)
                    .rowhammer_threshold(paper_n_rh)
                    .add_workload(workload.synthetic.clone(), scale.benign_instructions)
                    .run()
                    .threads[0]
                    .ipc
            })
        })
        .collect();
    (result, alone)
}

/// Runs the Figure 5 experiment for one RowHammer threshold: normalized
/// weighted/harmonic speedup, maximum slowdown and DRAM energy for every
/// defense, for benign-only and attack-present mixes.
pub fn figure5(scale: &ExperimentScale, paper_n_rh: u64) -> Vec<MultiProgramRow> {
    multiprogram_study(scale, paper_n_rh, &DefenseKind::figure_4_and_5_set())
}

/// Runs the Figure 6 experiment: the multiprogrammed study swept across
/// RowHammer thresholds for the four scalable mechanisms.
pub fn figure6(scale: &ExperimentScale, thresholds: &[u64]) -> Vec<MultiProgramRow> {
    let mut rows = Vec::new();
    for &n_rh in thresholds {
        rows.extend(multiprogram_study(
            scale,
            n_rh,
            &DefenseKind::figure_6_set(),
        ));
    }
    rows
}

fn multiprogram_study(
    scale: &ExperimentScale,
    paper_n_rh: u64,
    defenses: &[DefenseKind],
) -> Vec<MultiProgramRow> {
    let (benign_mixes, attack_mixes) =
        WorkloadMix::evaluation_suites(scale.mix_count, scale.threads_per_mix, scale.seed);
    let mut alone_cache: HashMap<String, f64> = HashMap::new();
    let mut rows = Vec::new();
    for (scenario, mixes) in [("no-attack", &benign_mixes), ("attack", &attack_mixes)] {
        // Baseline metrics per mix (the normalization denominator).
        let baseline_metrics: Vec<MultiProgramMetrics> = mixes
            .iter()
            .map(|mix| {
                let (run, alone) = run_mix(
                    scale,
                    mix,
                    DefenseKind::Baseline,
                    paper_n_rh,
                    &mut alone_cache,
                );
                MultiProgramMetrics::compute(&run, &alone)
            })
            .collect();
        for &kind in defenses {
            let normalized: Vec<MultiProgramMetrics> = mixes
                .iter()
                .zip(&baseline_metrics)
                .map(|(mix, baseline)| {
                    let (run, alone) = run_mix(scale, mix, kind, paper_n_rh, &mut alone_cache);
                    MultiProgramMetrics::compute(&run, &alone).normalized_to(baseline)
                })
                .collect();
            rows.push(MultiProgramRow {
                defense: kind.label().to_owned(),
                scenario: scenario.to_owned(),
                n_rh: paper_n_rh,
                normalized: average_metrics(&normalized),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Section 3.2.1: RHLI of benign and attacker threads.
// ---------------------------------------------------------------------------

/// Result of the RHLI study (Section 3.2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RhliStudy {
    /// Attacker RHLI in observe-only mode (the paper reports ~6.9-15.5).
    pub observe_attacker_rhli: f64,
    /// Largest benign-thread RHLI in observe-only mode (the paper: 0).
    pub observe_benign_rhli: f64,
    /// Attacker RHLI in full-functional mode (the paper: below 1).
    pub full_attacker_rhli: f64,
    /// Ratio between the two attacker values (the paper reports ~54x).
    pub reduction_factor: f64,
}

/// Runs the RHLI study: one attack mix under BlockHammer in observe-only
/// and full-functional modes.
pub fn rhli_study(scale: &ExperimentScale, paper_n_rh: u64) -> RhliStudy {
    let mix = WorkloadMix::with_attacker(0, scale.threads_per_mix, scale.seed);
    let mut alone_cache = HashMap::new();
    let (observe, _) = run_mix(
        scale,
        &mix,
        DefenseKind::BlockHammerObserve,
        paper_n_rh,
        &mut alone_cache,
    );
    let (full, _) = run_mix(
        scale,
        &mix,
        DefenseKind::BlockHammer,
        paper_n_rh,
        &mut alone_cache,
    );
    let observe_attacker = observe.attacker().map(|t| t.max_rhli).unwrap_or(0.0);
    let observe_benign = observe
        .benign_threads()
        .map(|t| t.max_rhli)
        .fold(0.0, f64::max);
    let full_attacker = full.attacker().map(|t| t.max_rhli).unwrap_or(0.0);
    RhliStudy {
        observe_attacker_rhli: observe_attacker,
        observe_benign_rhli: observe_benign,
        full_attacker_rhli: full_attacker,
        reduction_factor: observe_attacker / full_attacker.max(1e-9),
    }
}

// ---------------------------------------------------------------------------
// Section 8.4: false positive rate and delay penalty distribution.
// ---------------------------------------------------------------------------

/// Result of the false-positive study (Section 8.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FalsePositiveStudy {
    /// Fraction of activations delayed although their row had not truly
    /// crossed the blacklisting threshold (the paper: ~0.010%-0.012%).
    pub false_positive_rate: f64,
    /// 50th percentile of the delay penalty, in microseconds.
    pub delay_p50_us: f64,
    /// 90th percentile of the delay penalty, in microseconds.
    pub delay_p90_us: f64,
    /// Maximum observed delay penalty, in microseconds.
    pub delay_p100_us: f64,
    /// The theoretical worst case `tDelay` for this configuration, in
    /// microseconds.
    pub t_delay_us: f64,
}

/// Runs the false-positive study: a multiprogrammed mix with an attacker
/// under BlockHammer with exact shadow tracking enabled.
pub fn false_positive_study(scale: &ExperimentScale, paper_n_rh: u64) -> FalsePositiveStudy {
    let mix = WorkloadMix::with_attacker(0, scale.threads_per_mix, scale.seed);
    let mut builder = scale
        .builder()
        .defense(DefenseKind::BlockHammer)
        .rowhammer_threshold(paper_n_rh)
        .add_attacker();
    for workload in &mix.benign {
        builder = builder.add_workload(workload.synthetic.clone(), scale.benign_instructions);
    }
    // Re-derive the per-channel BlockHammer configuration for the
    // theoretical tDelay bound (the defense instances inside the system use
    // the same derivation).
    let geometry = builder.geometry_preview();
    let n_rh_effective = builder.effective_n_rh();
    let config = BlockHammerConfig::for_rowhammer_threshold(
        RowHammerThreshold::new(n_rh_effective),
        &geometry,
    );
    let clock_hz = 3.2e9;
    let mut system = builder.build();
    for channel in 0..system.channels() {
        system
            .defense_mut(channel)
            .as_any_mut()
            .downcast_mut::<BlockHammer>()
            // lint: allow(panic-freedom) -- the false-positive study constructs its system with DefenseKind::BlockHammer
            .expect("the false-positive study runs under BlockHammer")
            .enable_false_positive_tracking();
    }
    let (result, defenses) = system.run_into_parts();
    // Aggregate exact-tracking statistics across the per-channel instances.
    let per_channel: Vec<&BlockHammer> = defenses
        .iter()
        .filter_map(|defense| defense.as_any().downcast_ref::<BlockHammer>())
        .collect();
    let false_positives: u64 = per_channel
        .iter()
        .map(|bh| bh.blockhammer_stats().false_positive_delays)
        .sum();
    // Pool the delay samples of every channel so the percentiles are over
    // the whole system's delay distribution, not a max of per-channel
    // percentiles.
    let mut pooled_delays: Vec<u64> = per_channel
        .iter()
        .flat_map(|bh| bh.blockhammer_stats().delay_samples.iter().copied())
        .collect();
    pooled_delays.sort_unstable();
    let percentile = |p: f64| {
        if pooled_delays.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (pooled_delays.len() - 1) as f64).round() as usize;
        pooled_delays[rank.min(pooled_delays.len() - 1)]
    };
    let to_us = |cycles: u64| cycles as f64 / clock_hz * 1e6;
    FalsePositiveStudy {
        false_positive_rate: false_positives as f64
            / result.defense_stats.observed_activations.max(1) as f64,
        delay_p50_us: to_us(percentile(50.0)),
        delay_p90_us: to_us(percentile(90.0)),
        delay_p100_us: to_us(percentile(100.0)),
        t_delay_us: config.t_delay_us(clock_hz),
    }
}

// ---------------------------------------------------------------------------
// Table 8: workload characterization (MPKI / RBCPKI).
// ---------------------------------------------------------------------------

/// One row of the Table 8 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Row {
    /// Workload name.
    pub name: String,
    /// Category (L / M / H).
    pub category: String,
    /// MPKI the paper reports for the original application (if any).
    pub paper_mpki: Option<f64>,
    /// RBCPKI the paper reports for the original application.
    pub paper_rbcpki: f64,
    /// Measured main-memory accesses per kilo-instruction in our
    /// simulation (LLC misses for cacheable workloads, direct accesses for
    /// cache-bypassing ones).
    pub measured_mpki: f64,
    /// Measured row-buffer conflicts per kilo-instruction.
    pub measured_rbcpki: f64,
}

/// Characterizes every catalog workload on the unprotected single-core
/// system, reproducing the structure of Table 8.
pub fn table8(scale: &ExperimentScale) -> Vec<Table8Row> {
    benign_catalog()
        .into_iter()
        .map(|workload| {
            let run = scale
                .builder()
                .defense(DefenseKind::Baseline)
                .add_workload(workload.synthetic.clone(), scale.benign_instructions)
                .run();
            let kilo_insts = run.threads[0].instructions as f64 / 1_000.0;
            let memory_accesses = if workload.synthetic.bypass_cache {
                run.threads[0].memory_requests
            } else {
                run.llc_misses
            };
            Table8Row {
                name: workload.name().to_owned(),
                category: workload.category().to_string(),
                paper_mpki: workload.paper_mpki,
                paper_rbcpki: workload.paper_rbcpki,
                measured_mpki: memory_accesses as f64 / kilo_insts.max(1e-9),
                measured_rbcpki: run.ctrl.row_conflicts as f64 / kilo_insts.max(1e-9),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_standard() {
        let q = ExperimentScale::quick();
        let s = ExperimentScale::standard();
        assert!(q.benign_instructions < s.benign_instructions);
        assert!(q.mix_count <= s.mix_count);
    }

    #[test]
    fn rhli_study_distinguishes_attacker_from_benign() {
        let study = rhli_study(&ExperimentScale::quick(), 32_768);
        assert!(
            study.observe_attacker_rhli > 1.0,
            "observe-only attacker RHLI = {}, expected > 1",
            study.observe_attacker_rhli
        );
        assert!(study.observe_benign_rhli < 0.5);
        assert!(
            study.full_attacker_rhli < study.observe_attacker_rhli,
            "full-functional mode must reduce the attacker's RHLI \
             (observe {}, full {})",
            study.observe_attacker_rhli,
            study.full_attacker_rhli
        );
        assert!(study.reduction_factor > 1.0);
    }

    #[test]
    fn figure4_reports_every_defense_and_category() {
        let scale = ExperimentScale {
            benign_instructions: 1_000,
            ..ExperimentScale::quick()
        };
        let rows = figure4(&scale, 32_768);
        assert_eq!(rows.len(), 7 * 3);
        for row in &rows {
            assert!(row.normalized_execution_time > 0.5);
            assert!(row.normalized_dram_energy > 0.5);
        }
        // BlockHammer must not slow any benign category by more than a few
        // percent (paper: no overhead).
        for row in rows.iter().filter(|r| r.defense == "BlockHammer") {
            assert!(
                row.normalized_execution_time < 1.1,
                "BlockHammer {} slowdown {}",
                row.category,
                row.normalized_execution_time
            );
        }
    }
}
