//! The cycle-level full-system model: cores + LLC + the channel-sharded
//! memory subsystem (one controller + DRAM device + defense per channel).

use crate::defense_factory::DefenseKind;
use crate::metrics::{RunResult, SteppingStats, ThreadResult};
use crate::subsystem::{merge_channel_stats, MemorySubsystem, ShardReqId, SteppingMode};
use bh_types::{AccessType, Cycle, ThreadId, TraceRecord};
use cpu::{Core, CoreConfig, MemorySink};
use energy::{Ddr4PowerSpec, DramEnergyModel};
use llc::{AccessResult, Llc, LlcConfig};
use memctrl::MemCtrlConfig;
use mitigations::{DefenseGeometry, RowHammerDefense, RowHammerThreshold};
use workloads::{AttackKind, AttackSpec, SyntheticSpec};

use std::collections::{HashMap, HashSet, VecDeque};

/// A boxed trace iterator, the form in which workloads are fed to cores.
pub type BoxedTrace = Box<dyn Iterator<Item = TraceRecord>>;

/// How the simulated clock advances between ticks.
///
/// Both modes produce bit-identical results (pinned by
/// `tests/tests/event_equivalence.rs`): event-driven stepping only skips
/// cycles on which provably nothing observable can happen — every core is
/// stalled on memory, every queue is empty or not yet ready, and every
/// memory shard reports its next state change further out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvanceMode {
    /// Tick every cycle (`now + 1`), the reference behaviour.
    #[default]
    Lockstep,
    /// Skip to the earliest cycle at which any component can do
    /// observable work (cores, LLC hit queue, retry queues, memory
    /// shards, defense epoch boundaries).
    EventDriven,
}

/// Static configuration of a simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Memory controller (and DRAM) configuration.
    pub memctrl: MemCtrlConfig,
    /// Last-level cache configuration.
    pub llc: LlcConfig,
    /// Per-core configuration.
    pub core: CoreConfig,
    /// RowHammer threshold the defense is configured for (already in the
    /// simulation's time scale).
    pub n_rh: u64,
    /// Time-scaling factor that was applied (1 = full scale); recorded for
    /// reporting.
    pub time_scale: u64,
    /// Safety bound on simulated cycles.
    pub max_cycles: Cycle,
    /// Minimum number of cycles to simulate even if every benign thread has
    /// finished (used so defenses are observed across at least a couple of
    /// refresh windows; the attacker keeps running in the meantime).
    pub min_cycles: Cycle,
    /// Whether to record every DRAM activation (needed by safety
    /// verification; costs memory).
    pub enable_activation_log: bool,
    /// How the per-channel memory shards execute each lockstep cycle.
    /// Results are identical in every mode (the shards share no state and
    /// completions are collected in channel order); this only trades
    /// per-cycle thread coordination for concurrent shard work, which pays
    /// off for channel-heavy configurations.
    pub stepping: SteppingMode,
    /// How the simulated clock advances between ticks (lockstep or
    /// event-driven skip-to-next-event). Bit-identical either way.
    pub advance: AdvanceMode,
    /// Seed for workload generators and probabilistic defenses.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            memctrl: MemCtrlConfig::default(),
            llc: LlcConfig::default(),
            core: CoreConfig::default(),
            n_rh: 32_768,
            time_scale: 1,
            max_cycles: 2_000_000_000,
            min_cycles: 0,
            enable_activation_log: false,
            stepping: SteppingMode::Sequential,
            advance: AdvanceMode::default(),
            seed: 1,
        }
    }
}

impl SystemConfig {
    /// The per-channel defense geometry implied by this configuration for
    /// `threads` hardware threads (for channel 0; defenses for other
    /// channels differ only by [`DefenseGeometry::channel`]).
    ///
    /// Defenses are instantiated once per channel, so `total_banks` spans a
    /// single channel — with one channel this is the whole system.
    pub fn defense_geometry(&self, threads: usize) -> DefenseGeometry {
        let org = &self.memctrl.organization;
        let timings = self.memctrl.timings.into_cycles(&self.memctrl.clock);
        DefenseGeometry {
            channel: 0,
            ranks_per_channel: org.ranks,
            bank_groups_per_rank: org.bank_groups,
            banks_per_group: org.banks_per_group,
            total_banks: org.banks_per_channel(),
            rows_per_bank: org.rows_per_bank,
            threads: threads.max(1),
            refresh_window_cycles: timings.t_refw,
            t_rc_cycles: timings.t_rc,
            t_faw_cycles: timings.t_faw,
        }
    }

    /// tREFI in simulation cycles (used to pace some baselines).
    pub fn t_refi_cycles(&self) -> Cycle {
        self.memctrl.timings.into_cycles(&self.memctrl.clock).t_refi
    }
}

/// Everything except the cores (split out so a core and the rest of the
/// system can be borrowed mutably at the same time).
struct Uncore {
    llc: Llc,
    mem: MemorySubsystem,
    /// Waiters per outstanding LLC line fetch: line address -> (core, token).
    line_waiters: HashMap<u64, Vec<(usize, u64)>>,
    /// Waiters per cache-bypassing read: request id -> (core, token).
    direct_waiters: HashMap<ShardReqId, (usize, u64)>,
    /// LLC hits completing after the hit latency: (ready, core, token).
    hit_queue: VecDeque<(Cycle, usize, u64)>,
    /// Per-channel line fetches that could not yet be accepted by the
    /// channel's controller (sharded so a busy channel cannot head-of-line
    /// block another channel's fetches).
    fetch_queues: Vec<VecDeque<(ThreadId, u64)>>,
    /// Per-channel dirty writebacks that could not yet be accepted.
    writeback_queues: Vec<VecDeque<(ThreadId, u64)>>,
    /// Lines that must be marked dirty when their fill arrives
    /// (write-allocate stores).
    dirty_on_fill: HashSet<u64>,
    /// Outstanding line-fetch requests: request id -> line address.
    line_fetch_reqs: HashMap<ShardReqId, u64>,
    next_token: u64,
    hit_latency: Cycle,
}

impl Uncore {
    /// Whether a fetch of `line` is already queued or in flight on its
    /// channel (used to merge misses to the same line).
    fn line_fetch_pending(&self, channel: usize, line: u64) -> bool {
        // lint: allow(determinism) -- values().any is an existence check, independent of iteration order
        self.line_fetch_reqs.values().any(|&l| l == line)
            || self.fetch_queues[channel].iter().any(|&(_, l)| l == line)
    }
}

/// Memory-side adapter handed to a core during its tick.
struct CoreSink<'a> {
    uncore: &'a mut Uncore,
    core_index: usize,
}

impl MemorySink for CoreSink<'_> {
    fn try_send(
        &mut self,
        thread: ThreadId,
        address: u64,
        is_write: bool,
        bypass_cache: bool,
        now: Cycle,
    ) -> Option<u64> {
        let uncore = &mut *self.uncore;
        let access = if is_write {
            AccessType::Write
        } else {
            AccessType::Read
        };
        if bypass_cache {
            match uncore.mem.enqueue(thread, address, access, now) {
                Ok(req_id) => {
                    uncore.next_token += 1;
                    let token = uncore.next_token;
                    if !is_write {
                        uncore
                            .direct_waiters
                            .insert(req_id, (self.core_index, token));
                    }
                    Some(token)
                }
                Err(_) => None,
            }
        } else {
            match uncore.llc.access(thread, address, is_write) {
                AccessResult::Hit => {
                    uncore.next_token += 1;
                    let token = uncore.next_token;
                    uncore
                        .hit_queue
                        .push_back((now + uncore.hit_latency, self.core_index, token));
                    Some(token)
                }
                AccessResult::MissAllocated | AccessResult::MissMerged => {
                    let line = uncore.llc.line_of(address);
                    uncore.next_token += 1;
                    let token = uncore.next_token;
                    if !is_write {
                        uncore
                            .line_waiters
                            .entry(line)
                            .or_default()
                            .push((self.core_index, token));
                    } else {
                        uncore.dirty_on_fill.insert(line);
                    }
                    let channel = uncore.mem.channel_of(line);
                    if uncore.llc.is_miss_pending(address)
                        && !uncore.line_fetch_pending(channel, line)
                    {
                        uncore.fetch_queues[channel].push_back((thread, line));
                    }
                    Some(token)
                }
                AccessResult::MshrFull => None,
            }
        }
    }
}

/// A fully assembled simulated system.
pub struct System {
    config: SystemConfig,
    cores: Vec<Core<BoxedTrace>>,
    core_names: Vec<String>,
    core_is_attacker: Vec<bool>,
    uncore: Uncore,
}

impl System {
    /// Creates a system running the given per-thread traces. Thread `i`
    /// runs `traces[i]`; `is_attacker[i]` marks threads excluded from the
    /// run-completion criterion (they run until the benign threads finish).
    /// `defenses` holds one independent defense instance per memory
    /// channel, in channel order.
    ///
    /// # Panics
    ///
    /// Panics if no traces are supplied, the configuration is invalid, or
    /// `defenses` does not have one entry per channel.
    pub fn new(
        config: SystemConfig,
        traces: Vec<(String, BoxedTrace, bool, u64)>,
        defenses: Vec<Box<dyn RowHammerDefense>>,
    ) -> Self {
        assert!(!traces.is_empty(), "a system needs at least one thread");
        let mut mem = MemorySubsystem::new(&config.memctrl, defenses, config.enable_activation_log);
        mem.set_stepping(config.stepping);
        let channels = mem.channels();
        let llc = Llc::new(config.llc);
        let hit_latency = config.llc.hit_latency;
        let mut cores = Vec::new();
        let mut core_names = Vec::new();
        let mut core_is_attacker = Vec::new();
        for (index, (name, trace, is_attacker, instruction_limit)) in traces.into_iter().enumerate()
        {
            let core_config = CoreConfig {
                instruction_limit,
                ..config.core
            };
            cores.push(Core::new(ThreadId::new(index), core_config, trace));
            core_names.push(name);
            core_is_attacker.push(is_attacker);
        }
        Self {
            config,
            cores,
            core_names,
            core_is_attacker,
            uncore: Uncore {
                llc,
                mem,
                line_waiters: HashMap::new(),
                direct_waiters: HashMap::new(),
                hit_queue: VecDeque::new(),
                fetch_queues: vec![VecDeque::new(); channels],
                writeback_queues: vec![VecDeque::new(); channels],
                dirty_on_fill: HashSet::new(),
                line_fetch_reqs: HashMap::new(),
                next_token: 0,
                hit_latency,
            },
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of hardware threads.
    pub fn thread_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of memory-channel shards.
    pub fn channels(&self) -> usize {
        self.uncore.mem.channels()
    }

    /// Mutable access to the defense instance protecting `channel`, e.g.
    /// to enable mechanism-specific instrumentation (downcast via
    /// [`mitigations::AsAny`]) before calling [`System::run`].
    pub fn defense_mut(&mut self, channel: usize) -> &mut dyn RowHammerDefense {
        self.uncore.mem.defense_mut(channel)
    }

    /// Steps every component one cycle. Returns whether the tick delivered
    /// at least one memory completion or ready LLC hit to a core (the
    /// "events processed" of [`SteppingStats`]).
    fn tick(&mut self, now: Cycle) -> bool {
        let mut delivered = false;
        let uncore = &mut self.uncore;
        // 1. Memory subsystem: every channel shard issues commands in
        //    lockstep; collect the completions of all shards.
        for (channel, completed) in uncore.mem.tick(now) {
            if completed.request.is_victim_refresh() || completed.request.access.is_write() {
                continue;
            }
            let req_id = (channel, completed.request.id);
            if let Some(line) = uncore.line_fetch_reqs.remove(&req_id) {
                let fill = uncore.llc.fill(line);
                if uncore.dirty_on_fill.remove(&line) {
                    // Re-apply the write-allocated store so the line is dirty.
                    let _ = uncore.llc.access(completed.request.thread, line, true);
                }
                if let Some(writeback) = fill.writeback {
                    let wb_channel = uncore.mem.channel_of(writeback);
                    uncore.writeback_queues[wb_channel]
                        .push_back((completed.request.thread, writeback));
                }
                if let Some(waiters) = uncore.line_waiters.remove(&line) {
                    for (core_index, token) in waiters {
                        self.cores[core_index].on_memory_complete(token);
                        delivered = true;
                    }
                }
            } else if let Some((core_index, token)) = uncore.direct_waiters.remove(&req_id) {
                self.cores[core_index].on_memory_complete(token);
                delivered = true;
            }
        }
        // 2. LLC hits that became ready.
        while let Some(&(ready, core_index, token)) = uncore.hit_queue.front() {
            if ready > now {
                break;
            }
            uncore.hit_queue.pop_front();
            self.cores[core_index].on_memory_complete(token);
            delivered = true;
        }
        // 3. Retry pending line fetches and writebacks, per channel, in
        //    batches (one amortized admission pass per channel per cycle
        //    instead of one full admission check per request).
        let line_fetch_reqs = &mut uncore.line_fetch_reqs;
        for (channel, queue) in uncore.fetch_queues.iter_mut().enumerate() {
            uncore
                .mem
                .enqueue_batch(channel, queue, AccessType::Read, now, |req_id, line| {
                    line_fetch_reqs.insert(req_id, line);
                });
        }
        for (channel, queue) in uncore.writeback_queues.iter_mut().enumerate() {
            uncore
                .mem
                .enqueue_batch(channel, queue, AccessType::Write, now, |_, _| {});
        }
        // 4. Cores issue and retire.
        for (core_index, core) in self.cores.iter_mut().enumerate() {
            let mut sink = CoreSink { uncore, core_index };
            core.tick(now, &mut sink);
        }
        delivered
    }

    /// The next cycle to tick under [`AdvanceMode::EventDriven`]: the
    /// minimum over every component's earliest possible state change,
    /// clamped to `(now, max_cycles]`.
    ///
    /// Skipping is conservative — a cycle is skipped only when *no* core
    /// wants to tick (each could neither retire, issue, nor refill), the
    /// per-channel retry queues are empty (a queued fetch/writeback is
    /// re-offered to its controller every cycle), no queued LLC hit is
    /// ready, and every memory shard reports its next event further out.
    /// Any component for which "could it act this cycle?" cannot be
    /// answered cheaply votes `now + 1`, which degrades to lockstep for
    /// that cycle rather than risking a divergence.
    fn next_tick_at(&self, now: Cycle, all_done: bool) -> Cycle {
        // Every candidate below is >= now + 1, so as soon as any
        // component votes "next cycle" the answer is now + 1 — return
        // without scanning the (comparatively expensive) memory shards.
        // This keeps the event-driven overhead near zero on saturated
        // runs where almost every cycle has core work.
        if self.cores.iter().any(|core| core.wants_tick()) {
            return now + 1;
        }
        // Queued fetches/writebacks retry admission every cycle, and even
        // a refused retry mutates controller admission statistics.
        if self
            .uncore
            .fetch_queues
            .iter()
            .any(|queue| !queue.is_empty())
            || self
                .uncore
                .writeback_queues
                .iter()
                .any(|queue| !queue.is_empty())
        {
            return now + 1;
        }
        // With every thread finished the run only pads out to
        // `min_cycles` (refresh keeps the DRAM stats moving in the
        // meantime); otherwise the safety bound caps the jump.
        let mut next = if all_done {
            self.config.min_cycles
        } else {
            self.config.max_cycles
        };
        // The hit queue is ordered by push time and the latency is
        // constant, so the front entry is the earliest one.
        if let Some(&(ready, _, _)) = self.uncore.hit_queue.front() {
            next = next.min(ready);
        }
        if let Some(at) = self.uncore.mem.next_event(now) {
            next = next.min(at);
        }
        next.clamp(now + 1, self.config.max_cycles)
    }

    /// Runs the system to completion (every non-attacker thread reaches its
    /// instruction limit) or to the configured cycle bound, and returns the
    /// collected results.
    pub fn run(self) -> RunResult {
        self.run_into_parts().0
    }

    /// Like [`System::run`], but also hands back the per-channel defense
    /// instances for post-run inspection (e.g. mechanism-specific counters
    /// reachable by downcasting through [`mitigations::AsAny`]).
    pub fn run_into_parts(mut self) -> (RunResult, Vec<Box<dyn RowHammerDefense>>) {
        let event_driven = self.config.advance == AdvanceMode::EventDriven;
        let mut stepping = SteppingStats::default();
        let mut now: Cycle = 0;
        let mut finish_cycle: Vec<Option<Cycle>> = vec![None; self.cores.len()];
        loop {
            let delivered = self.tick(now);
            stepping.cycles_simulated += 1;
            stepping.events_processed += u64::from(delivered);
            let mut all_done = true;
            for (index, core) in self.cores.iter().enumerate() {
                if core.is_finished() {
                    finish_cycle[index].get_or_insert(now);
                } else if !self.core_is_attacker[index] {
                    all_done = false;
                }
            }
            if (all_done && now >= self.config.min_cycles) || now >= self.config.max_cycles {
                break;
            }
            let next = if event_driven {
                self.next_tick_at(now, all_done)
            } else {
                now + 1
            };
            stepping.largest_jump = stepping.largest_jump.max(next - now);
            stepping.cycles_skipped += next - now - 1;
            now = next;
        }
        let end = now.max(1);
        let threads = self
            .cores
            .iter()
            .enumerate()
            .map(|(index, core)| {
                let cycles = finish_cycle[index].unwrap_or(end).max(1);
                let instructions = core.retired_instructions();
                ThreadResult {
                    thread: index,
                    name: self.core_names[index].clone(),
                    is_attacker: self.core_is_attacker[index],
                    instructions,
                    cycles,
                    ipc: instructions as f64 / cycles as f64,
                    max_rhli: self.uncore.mem.max_rhli(ThreadId::new(index)),
                    memory_requests: core.stats().memory_requests,
                }
            })
            .collect();
        let defense_name = self.uncore.mem.defense_name().to_owned();
        let mut per_channel = self.uncore.mem.finish(end);
        let (dram_stats, ctrl_stats, defense_stats) = merge_channel_stats(
            &mut per_channel,
            self.config.memctrl.organization.banks_per_channel(),
        );
        let clock_hz = self.config.memctrl.clock.frequency_hz();
        let energy_model = DramEnergyModel::new(Ddr4PowerSpec::micron_8gb_x8(), clock_hz);
        let energy = energy_model.breakdown(&dram_stats);
        let result = RunResult {
            defense: defense_name,
            n_rh: self.config.n_rh,
            time_scale: self.config.time_scale,
            total_cycles: end,
            threads,
            dram: dram_stats,
            ctrl: ctrl_stats,
            per_channel,
            llc_hits: self.uncore.llc.stats().hits,
            llc_misses: self.uncore.llc.stats().misses,
            energy,
            defense_stats,
            stepping,
        };
        (result, self.uncore.mem.into_defenses())
    }
}

/// Convenience builder assembling a [`System`] from workload specs, an
/// optional attacker, optional pre-recorded traces, a defense kind and
/// scaling options.
pub struct SystemBuilder {
    config: SystemConfig,
    defense: DefenseKind,
    paper_n_rh: u64,
    workloads: Vec<(SyntheticSpec, u64)>,
    attacker: Option<AttackKind>,
    /// Pre-built trace threads (name, trace, is_attacker, instruction
    /// limit), appended after the synthetic workloads in thread order.
    trace_threads: Vec<(String, BoxedTrace, bool, u64)>,
    /// Explicit shard stepping mode, if the caller chose one; `None`
    /// auto-selects from the channel count and the machine's available
    /// parallelism when the system is built.
    stepping_override: Option<SteppingMode>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// Creates a builder with the paper's default system configuration and
    /// no time scaling.
    pub fn new() -> Self {
        Self {
            config: SystemConfig::default(),
            defense: DefenseKind::Baseline,
            paper_n_rh: 32_768,
            workloads: Vec::new(),
            attacker: None,
            trace_threads: Vec::new(),
            stepping_override: None,
        }
    }

    /// Applies a time-scaling factor: the refresh window and the RowHammer
    /// threshold are both divided by `factor`, which preserves the defenses'
    /// behaviour while making runs laptop-sized (DESIGN.md §5).
    pub fn time_scale(mut self, factor: u64) -> Self {
        assert!(factor > 0, "time scale factor must be non-zero");
        self.config.memctrl = self.config.memctrl.clone().with_time_scale(factor);
        self.config.time_scale = factor;
        self
    }

    /// Sets the full-scale (paper) RowHammer threshold; the effective
    /// threshold used by the defense is scaled by the time-scale factor.
    pub fn rowhammer_threshold(mut self, n_rh: u64) -> Self {
        self.paper_n_rh = n_rh;
        self
    }

    /// Selects the defense.
    pub fn defense(mut self, kind: DefenseKind) -> Self {
        self.defense = kind;
        self
    }

    /// Sets the number of memory channels. Each channel becomes an
    /// independent shard (controller + DRAM device + defense instance);
    /// the default of 1 reproduces the paper's Table 5 system.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn channels(mut self, channels: usize) -> Self {
        assert!(channels > 0, "a system needs at least one memory channel");
        self.config.memctrl.organization.channels = channels;
        self
    }

    /// Steps the per-channel memory shards concurrently (on the persistent
    /// worker pool) instead of sequentially. Bit-identical results either
    /// way; worthwhile only when the per-shard work outweighs the
    /// per-cycle thread coordination (many channels under heavy traffic).
    /// Without this (or [`SystemBuilder::stepping_mode`]) the mode is
    /// auto-selected via [`SteppingMode::auto`].
    pub fn parallel_channels(mut self, enabled: bool) -> Self {
        self.stepping_override = Some(if enabled {
            SteppingMode::WorkerPool
        } else {
            SteppingMode::Sequential
        });
        self
    }

    /// Selects the shard stepping mode explicitly (sequential, per-cycle
    /// scoped threads, or the persistent worker pool), overriding the
    /// [`SteppingMode::auto`] default. All modes produce bit-identical
    /// results.
    pub fn stepping_mode(mut self, stepping: SteppingMode) -> Self {
        self.stepping_override = Some(stepping);
        self
    }

    /// Selects how the simulated clock advances: per-cycle lockstep or
    /// event-driven skip-to-next-event. Both modes are bit-identical;
    /// event-driven is faster whenever the system has idle cycles to skip
    /// (low memory intensity, or padding out `min_cycles` after the
    /// threads finish).
    pub fn advance_mode(mut self, advance: AdvanceMode) -> Self {
        self.config.advance = advance;
        self
    }

    /// Sets the random seed (workload placement and probabilistic
    /// defenses).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the safety bound on simulated cycles.
    pub fn max_cycles(mut self, max_cycles: Cycle) -> Self {
        self.config.max_cycles = max_cycles;
        self
    }

    /// Keeps the system running for at least this many cycles even after
    /// every benign thread has finished (so slow defense dynamics such as
    /// RHLI accumulation are observable in short runs).
    pub fn min_cycles(mut self, min_cycles: Cycle) -> Self {
        self.config.min_cycles = min_cycles;
        self
    }

    /// Enables DRAM activation logging (for safety verification).
    pub fn activation_log(mut self) -> Self {
        self.config.enable_activation_log = true;
        self
    }

    /// Shrinks the LLC (useful to keep cacheable workloads memory-bound at
    /// small instruction budgets, mirroring their full-scale behaviour).
    pub fn llc_capacity(mut self, bytes: u64) -> Self {
        self.config.llc.capacity_bytes = bytes;
        self
    }

    /// Adds a benign workload running `instruction_limit` instructions.
    pub fn add_workload(mut self, spec: SyntheticSpec, instruction_limit: u64) -> Self {
        self.workloads.push((spec, instruction_limit));
        self
    }

    /// Adds a double-sided RowHammer attacker as thread 0.
    pub fn add_attacker(mut self) -> Self {
        self.attacker = Some(AttackKind::DoubleSided);
        self
    }

    /// Adds a RowHammer attacker of the given pattern as thread 0.
    /// `add_attacker_kind(AttackKind::DoubleSided)` is identical to
    /// [`SystemBuilder::add_attacker`].
    pub fn add_attacker_kind(mut self, kind: AttackKind) -> Self {
        self.attacker = Some(kind);
        self
    }

    /// Adds a thread driven by a pre-built trace (e.g. replayed from a
    /// trace file). Trace threads are appended after the synthetic
    /// workloads in thread order and are *not* relocated: the records'
    /// addresses are used verbatim, so a trace recorded from a built
    /// system replays bit-identically. `is_attacker` threads are excluded
    /// from the run-completion criterion (they run until the benign
    /// threads finish).
    pub fn add_trace(
        mut self,
        name: impl Into<String>,
        trace: BoxedTrace,
        is_attacker: bool,
        instruction_limit: u64,
    ) -> Self {
        self.trace_threads
            .push((name.into(), trace, is_attacker, instruction_limit));
        self
    }

    /// The effective (scaled) RowHammer threshold the defense will use.
    pub fn effective_n_rh(&self) -> u64 {
        (self.paper_n_rh / self.config.time_scale).max(16)
    }

    /// The per-channel defense geometry the built system will use (for
    /// callers deriving mechanism configurations, e.g. BlockHammer's
    /// Table 1 parameters).
    pub fn geometry_preview(&self) -> DefenseGeometry {
        self.config.defense_geometry(self.thread_count().max(1))
    }

    /// Total threads the built system will have (attacker + synthetic
    /// workloads + trace threads).
    fn thread_count(&self) -> usize {
        self.workloads.len() + self.trace_threads.len() + usize::from(self.attacker.is_some())
    }

    /// Materializes the builder into its parts: the finalized
    /// configuration, the per-thread traces in thread order, and the
    /// per-channel defenses. Shared by [`SystemBuilder::build`] and
    /// [`SystemBuilder::into_thread_traces`] so both observe the exact
    /// same thread construction (ordering, address slicing, seeding).
    #[allow(clippy::type_complexity)]
    fn into_parts(
        mut self,
    ) -> (
        SystemConfig,
        Vec<(String, BoxedTrace, bool, u64)>,
        Vec<Box<dyn RowHammerDefense>>,
    ) {
        assert!(
            self.thread_count() > 0,
            "add at least one workload or an attacker"
        );
        self.config.n_rh = self.effective_n_rh();
        self.config.stepping = self
            .stepping_override
            .unwrap_or_else(|| SteppingMode::auto(self.config.memctrl.organization.channels));
        let thread_count = self.thread_count();
        let geometry = self.config.defense_geometry(thread_count);
        let defenses = self.defense.build_per_channel(
            self.config.memctrl.organization.channels,
            RowHammerThreshold::new(self.config.n_rh),
            geometry,
            self.config.t_refi_cycles(),
            self.config.seed,
        );
        let organization_geometry = self.config.memctrl.organization.geometry();
        let mapping = self.config.memctrl.mapping;
        let mut traces: Vec<(String, BoxedTrace, bool, u64)> = Vec::new();
        if let Some(kind) = self.attacker {
            let attack = kind.build(AttackSpec::default_for(mapping, organization_geometry));
            traces.push((
                format!("attacker.{}", kind.label()),
                Box::new(attack),
                true,
                u64::MAX,
            ));
        }
        // Give each benign thread a disjoint address-space slice so threads
        // do not share cache lines or rows.
        let slice = organization_geometry.capacity_bytes() / (thread_count as u64 + 1);
        for (index, (spec, limit)) in self.workloads.iter().enumerate() {
            let base = slice * (index as u64 + usize::from(self.attacker.is_some()) as u64);
            let relocated = spec.clone().at_base(base);
            let seed = self.config.seed ^ ((index as u64 + 1) * 0x9E37_79B9);
            traces.push((
                spec.name.clone(),
                Box::new(relocated.build(seed)),
                false,
                *limit,
            ));
        }
        // Trace-driven threads come last: their records carry absolute
        // addresses, so they need no relocation.
        traces.extend(self.trace_threads);
        (self.config, traces, defenses)
    }

    /// Builds the system, instantiating one independent defense per memory
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if no workload, trace thread or attacker was added.
    pub fn build(self) -> System {
        let (config, traces, defenses) = self.into_parts();
        System::new(config, traces, defenses)
    }

    /// Consumes the builder and hands back the exact per-thread traces
    /// `build` would feed the system — `(name, trace, is_attacker,
    /// instruction_limit)` in thread order, with the same address slicing
    /// and per-thread seeding. This is what trace recorders consume: a
    /// trace file recorded from these iterators replays the run bit for
    /// bit (see the `campaign` crate).
    ///
    /// # Panics
    ///
    /// Panics if no workload, trace thread or attacker was added.
    pub fn into_thread_traces(self) -> Vec<(String, BoxedTrace, bool, u64)> {
        self.into_parts().1
    }

    /// Builds and runs the system, returning the collected results.
    pub fn run(self) -> RunResult {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_builder() -> SystemBuilder {
        // A heavily time-scaled system whose refresh window is ~25k cycles,
        // run for at least two refresh windows.
        SystemBuilder::new()
            .time_scale(8192)
            .max_cycles(3_000_000)
            .min_cycles(60_000)
            .llc_capacity(1 << 20)
    }

    #[test]
    fn single_benign_core_completes_its_instructions() {
        let result = quick_builder()
            .defense(DefenseKind::Baseline)
            .add_workload(SyntheticSpec::medium_intensity("m0", 0), 3_000)
            .run();
        assert_eq!(result.threads.len(), 1);
        assert!(result.threads[0].instructions >= 3_000);
        assert!(result.threads[0].ipc > 0.0);
        assert!(result.dram.totals().activates > 0);
        assert!(result.energy.total_joules() > 0.0);
    }

    #[test]
    fn blockhammer_does_not_slow_benign_single_core_runs() {
        let baseline = quick_builder()
            .defense(DefenseKind::Baseline)
            .add_workload(SyntheticSpec::high_intensity("h0", 0), 3_000)
            .run();
        let protected = quick_builder()
            .defense(DefenseKind::BlockHammer)
            .add_workload(SyntheticSpec::high_intensity("h0", 0), 3_000)
            .run();
        let ratio = protected.threads[0].ipc / baseline.threads[0].ipc;
        assert!(
            ratio > 0.95,
            "BlockHammer slowed a benign workload by {:.1}% in a single-core run",
            (1.0 - ratio) * 100.0
        );
    }

    #[test]
    fn attacker_is_throttled_by_blockhammer_but_not_by_baseline() {
        let victim_instructions = 6_000;
        let baseline = quick_builder()
            .defense(DefenseKind::Baseline)
            .add_attacker()
            .add_workload(
                SyntheticSpec::high_intensity("victim", 0),
                victim_instructions,
            )
            .run();
        let protected = quick_builder()
            .defense(DefenseKind::BlockHammer)
            .add_attacker()
            .add_workload(
                SyntheticSpec::high_intensity("victim", 0),
                victim_instructions,
            )
            .run();
        // The attacker's memory throughput (requests per cycle) must drop.
        let attacker_rate =
            |r: &RunResult| r.threads[0].memory_requests as f64 / r.total_cycles as f64;
        assert!(
            attacker_rate(&protected) < attacker_rate(&baseline),
            "BlockHammer must reduce the attacker's memory throughput \
             (baseline {:.4}/cycle, protected {:.4}/cycle)",
            attacker_rate(&baseline),
            attacker_rate(&protected)
        );
        // The benign victim must run faster when the attacker is throttled.
        let benign_ipc = |r: &RunResult| r.threads[1].ipc;
        assert!(
            benign_ipc(&protected) > benign_ipc(&baseline),
            "the benign thread must speed up under BlockHammer when attacked \
             (baseline IPC {:.4}, protected IPC {:.4})",
            benign_ipc(&baseline),
            benign_ipc(&protected)
        );
        assert!(
            protected.threads[0].max_rhli > 0.0,
            "attacker RHLI must be non-zero"
        );
        assert_eq!(
            protected.threads[1].max_rhli, 0.0,
            "benign RHLI must stay zero"
        );
    }

    #[test]
    fn explicit_single_channel_matches_the_default_path() {
        // `.channels(1)` must be the identical code path to the default
        // builder, bit for bit.
        let run = |builder: SystemBuilder| {
            builder
                .defense(DefenseKind::BlockHammer)
                .add_attacker()
                .add_workload(SyntheticSpec::high_intensity("h0", 0), 3_000)
                .run()
        };
        let default_run = run(quick_builder());
        let explicit_run = run(quick_builder().channels(1));
        assert_eq!(default_run.total_cycles, explicit_run.total_cycles);
        assert_eq!(default_run.per_channel.len(), 1);
        assert_eq!(explicit_run.per_channel.len(), 1);
        for (a, b) in default_run.threads.iter().zip(&explicit_run.threads) {
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.memory_requests, b.memory_requests);
            assert_eq!(a.max_rhli, b.max_rhli);
        }
        assert_eq!(default_run.dram.totals(), explicit_run.dram.totals());
        assert_eq!(default_run.ctrl.row_hits, explicit_run.ctrl.row_hits);
        assert_eq!(
            default_run.defense_stats.observed_activations,
            explicit_run.defense_stats.observed_activations
        );
    }

    #[test]
    fn merged_stats_equal_the_single_shard_stats_for_one_channel() {
        let result = quick_builder()
            .defense(DefenseKind::BlockHammer)
            .add_workload(SyntheticSpec::high_intensity("h0", 0), 3_000)
            .run();
        assert_eq!(result.per_channel.len(), 1);
        let shard = &result.per_channel[0];
        assert_eq!(shard.channel, 0);
        assert_eq!(shard.defense, "BlockHammer");
        assert_eq!(shard.dram.totals(), result.dram.totals());
        assert_eq!(shard.ctrl.accepted_requests, result.ctrl.accepted_requests);
        assert_eq!(
            shard.defense_stats.observed_activations,
            result.defense_stats.observed_activations
        );
    }

    #[test]
    fn two_channel_system_shards_traffic_and_defenses() {
        let result = quick_builder()
            .channels(2)
            .defense(DefenseKind::BlockHammer)
            .add_workload(SyntheticSpec::high_intensity("h0", 0), 3_000)
            .add_workload(SyntheticSpec::medium_intensity("m1", 1), 3_000)
            .run();
        assert_eq!(result.per_channel.len(), 2);
        // Both channels must see traffic (the MOP mapping interleaves
        // consecutive lines across channels) ...
        for shard in &result.per_channel {
            assert!(
                shard.dram.totals().activates > 0,
                "channel {} received no activations",
                shard.channel
            );
            assert!(shard.defense_stats.observed_activations > 0);
        }
        // ... and the merged views must be the sums of the shards.
        let summed_activates: u64 = result
            .per_channel
            .iter()
            .map(|shard| shard.dram.totals().activates)
            .sum();
        assert_eq!(result.dram.totals().activates, summed_activates);
        let summed_accepted: u64 = result
            .per_channel
            .iter()
            .map(|shard| shard.ctrl.accepted_requests)
            .sum();
        assert_eq!(result.ctrl.accepted_requests, summed_accepted);
        // Two ranks overall: one per channel, concatenated in channel order.
        assert_eq!(result.dram.per_rank.len(), 2);
        assert!(result.threads.iter().all(|t| t.instructions >= 3_000));
    }

    #[test]
    fn stepping_modes_are_bit_identical() {
        // Sequential, per-cycle scoped threads and the persistent worker
        // pool must produce the same run, bit for bit.
        let run = |stepping: SteppingMode| {
            quick_builder()
                .channels(2)
                .min_cycles(20_000)
                .stepping_mode(stepping)
                .defense(DefenseKind::BlockHammer)
                .add_attacker()
                .add_workload(SyntheticSpec::high_intensity("h0", 0), 2_000)
                .run()
        };
        let sequential = run(SteppingMode::Sequential);
        for stepping in [SteppingMode::ScopedThreads, SteppingMode::WorkerPool] {
            let concurrent = run(stepping);
            assert_eq!(sequential.total_cycles, concurrent.total_cycles);
            assert_eq!(sequential.dram.totals(), concurrent.dram.totals());
            assert_eq!(sequential.ctrl, concurrent.ctrl);
            assert_eq!(
                sequential.defense_stats.observed_activations,
                concurrent.defense_stats.observed_activations
            );
            for (a, b) in sequential.threads.iter().zip(&concurrent.threads) {
                assert_eq!(a.instructions, b.instructions);
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.memory_requests, b.memory_requests);
                assert_eq!(a.max_rhli, b.max_rhli);
            }
        }
    }

    #[test]
    fn advance_modes_are_bit_identical() {
        // Event-driven stepping must reproduce the lockstep run, bit for
        // bit, while actually skipping cycles. (The cross-defense and
        // multi-channel matrix lives in tests/tests/event_equivalence.rs.)
        let run = |advance: AdvanceMode| {
            quick_builder()
                .min_cycles(40_000)
                .advance_mode(advance)
                .defense(DefenseKind::BlockHammer)
                .add_attacker()
                .add_workload(SyntheticSpec::low_intensity("l0", 0), 2_000)
                .run()
        };
        let lockstep = run(AdvanceMode::Lockstep);
        let event = run(AdvanceMode::EventDriven);
        assert_eq!(lockstep.total_cycles, event.total_cycles);
        assert_eq!(lockstep.dram.totals(), event.dram.totals());
        assert_eq!(lockstep.ctrl, event.ctrl);
        assert_eq!(lockstep.llc_hits, event.llc_hits);
        assert_eq!(lockstep.llc_misses, event.llc_misses);
        assert_eq!(
            lockstep.defense_stats.observed_activations,
            event.defense_stats.observed_activations
        );
        for (a, b) in lockstep.threads.iter().zip(&event.threads) {
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.memory_requests, b.memory_requests);
            assert_eq!(a.max_rhli, b.max_rhli);
        }
        // Lockstep ticks every cycle; event-driven must have skipped some.
        assert_eq!(lockstep.stepping.cycles_skipped, 0);
        assert_eq!(
            lockstep.stepping.cycles_simulated,
            lockstep.total_cycles + 1
        );
        assert!(
            event.stepping.cycles_skipped > 0,
            "event-driven run skipped no cycles"
        );
        assert_eq!(
            event.stepping.cycles_simulated + event.stepping.cycles_skipped,
            event.total_cycles + 1
        );
        assert!(event.stepping.largest_jump > 1);
    }

    #[test]
    fn trace_threads_replay_bit_identically_to_their_generators() {
        // A system fed from materialized traces (via into_thread_traces)
        // must reproduce the generator-driven run exactly — the foundation
        // of the campaign crate's record/replay path.
        let make = || {
            quick_builder()
                .defense(DefenseKind::BlockHammer)
                .add_attacker()
                .add_workload(SyntheticSpec::high_intensity("h0", 0), 2_000)
                .add_workload(SyntheticSpec::medium_intensity("m1", 1), 2_000)
        };
        let generated = make().run();
        // Materialize the exact thread traces, bound the infinite attacker
        // stream to full periods, and replay through add_trace.
        let threads = make().into_thread_traces();
        let mut replay = quick_builder().defense(DefenseKind::BlockHammer);
        for (name, trace, is_attacker, limit) in threads {
            let records: Vec<TraceRecord> = if is_attacker {
                // 2 aggressors x banks per full period; capture many
                // periods so the bounded replay outlives the run.
                trace.take(1 << 17).collect()
            } else {
                // Enough records to cover the instruction limit.
                let mut taken = Vec::new();
                let mut instructions = 0u64;
                for record in trace {
                    instructions += record.instructions();
                    taken.push(record);
                    if instructions >= limit + 64 {
                        break;
                    }
                }
                taken
            };
            replay = replay.add_trace(name, Box::new(records.into_iter()), is_attacker, limit);
        }
        let replayed = replay.run();
        assert_eq!(generated.total_cycles, replayed.total_cycles);
        assert_eq!(generated.dram.totals(), replayed.dram.totals());
        assert_eq!(generated.ctrl, replayed.ctrl);
        for (a, b) in generated.threads.iter().zip(&replayed.threads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.is_attacker, b.is_attacker);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.memory_requests, b.memory_requests);
            assert_eq!(a.max_rhli, b.max_rhli);
        }
    }

    #[test]
    fn attacker_kind_default_matches_add_attacker() {
        let run = |builder: SystemBuilder| {
            builder
                .defense(DefenseKind::BlockHammer)
                .add_workload(SyntheticSpec::high_intensity("h0", 0), 2_000)
                .run()
        };
        let implicit = run(quick_builder().add_attacker());
        let explicit = run(quick_builder().add_attacker_kind(workloads::AttackKind::DoubleSided));
        assert_eq!(implicit.total_cycles, explicit.total_cycles);
        assert_eq!(implicit.dram.totals(), explicit.dram.totals());
        assert_eq!(implicit.threads[0].name, "attacker.double_sided");
        assert_eq!(explicit.threads[0].name, "attacker.double_sided");
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let run = || {
            quick_builder()
                .channels(2)
                .defense(DefenseKind::Para)
                .add_attacker()
                .add_workload(SyntheticSpec::high_intensity("h0", 0), 2_000)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.dram.totals(), b.dram.totals());
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.memory_requests, y.memory_requests);
        }
    }

    #[test]
    fn activation_log_bounds_attack_below_threshold() {
        let result = quick_builder()
            .defense(DefenseKind::BlockHammer)
            .activation_log()
            .add_attacker()
            .add_workload(SyntheticSpec::low_intensity("l0", 0), 1_000)
            .run();
        let timings = result.time_scale;
        assert_eq!(timings, 8192);
        let t_refw = MemCtrlConfig::default()
            .with_time_scale(8192)
            .timings
            .into_cycles(&bh_types::TimeConverter::default())
            .t_refw;
        let worst = result
            .dram
            .max_row_activations_in_window(t_refw)
            .expect("activation log enabled");
        assert!(
            worst <= result.n_rh,
            "a row received {worst} activations in one refresh window, above N_RH = {}",
            result.n_rh
        );
    }
}
