//! # sim
//!
//! The full-system simulation harness: trace-driven cores, a shared LLC,
//! and a channel-sharded memory subsystem — one FR-FCFS memory controller,
//! DDR4 device model and RowHammer-defense instance per channel — plus the
//! energy model, wired together and driven cycle by cycle (the Rust
//! counterpart of the paper's Ramulator + DRAMPower infrastructure). See
//! [`subsystem`] for the sharding design.
//!
//! On top of the [`System`] runner, the [`experiments`] module provides the
//! drivers that regenerate the paper's figures and tables (single-core
//! Figure 4, multiprogrammed Figure 5, the `N_RH` scaling study of
//! Figure 6, the RHLI study of Section 3.2.1, the false-positive study of
//! Section 8.4, and the Table 8 workload characterization), and
//! [`metrics`] computes the performance metrics the paper reports
//! (weighted speedup, harmonic speedup, maximum slowdown, DRAM energy).
//!
//! ## Example
//!
//! ```
//! use sim::{DefenseKind, SystemBuilder};
//! use workloads::SyntheticSpec;
//!
//! // A single benign core protected by BlockHammer, scaled for a fast run.
//! let result = SystemBuilder::new()
//!     .time_scale(512)
//!     .defense(DefenseKind::BlockHammer)
//!     .add_workload(SyntheticSpec::high_intensity("demo", 0), 5_000)
//!     .run();
//! assert_eq!(result.threads.len(), 1);
//! assert!(result.threads[0].ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod subsystem;

mod defense_factory;
mod system;

pub use defense_factory::DefenseKind;
pub use metrics::{ChannelStats, MultiProgramMetrics, RunResult, SteppingStats, ThreadResult};
pub use pool::WorkerPool;
pub use subsystem::{service_pool_size, MemorySubsystem, SteppingMode};
pub use system::{AdvanceMode, BoxedTrace, System, SystemBuilder, SystemConfig};
