//! Construction of defenses by name, shared by every experiment driver.

use blockhammer::{BlockHammer, BlockHammerConfig, OperatingMode};
use mitigations::{
    Cbt, DefenseGeometry, Graphene, MrLoc, NoMitigation, Para, ProHit, RowHammerDefense,
    RowHammerThreshold, TwiCe,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reliability target used to tune the probabilistic mechanisms (PARA,
/// MRLoc), as in the paper: a failure probability of 1e-15 per refresh
/// window.
const TARGET_FAILURE: f64 = 1e-15;

/// The RowHammer defenses evaluated by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No mitigation (the normalization baseline).
    Baseline,
    /// PARA (probabilistic adjacent row activation).
    Para,
    /// PRoHIT (probabilistic hot/cold history table).
    ProHit,
    /// MRLoc (locality-aware probabilistic refresh).
    MrLoc,
    /// CBT (counter-based tree).
    Cbt,
    /// TWiCe (pruned per-row counter table).
    TwiCe,
    /// Graphene (Misra–Gries frequent-element counters).
    Graphene,
    /// BlockHammer in full-functional mode (the paper's contribution).
    BlockHammer,
    /// BlockHammer in observe-only mode (tracks RHLI without interfering).
    BlockHammerObserve,
}

impl DefenseKind {
    /// Every defense compared in Figures 4 and 5, in the paper's order.
    pub fn figure_4_and_5_set() -> Vec<DefenseKind> {
        vec![
            DefenseKind::Para,
            DefenseKind::ProHit,
            DefenseKind::MrLoc,
            DefenseKind::Cbt,
            DefenseKind::TwiCe,
            DefenseKind::Graphene,
            DefenseKind::BlockHammer,
        ]
    }

    /// The subset the paper scales down to `N_RH` = 1K in Figure 6.
    pub fn figure_6_set() -> Vec<DefenseKind> {
        vec![
            DefenseKind::Para,
            DefenseKind::TwiCe,
            DefenseKind::Graphene,
            DefenseKind::BlockHammer,
        ]
    }

    /// Short display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::Baseline => "Baseline",
            DefenseKind::Para => "PARA",
            DefenseKind::ProHit => "PRoHIT",
            DefenseKind::MrLoc => "MRLoc",
            DefenseKind::Cbt => "CBT",
            DefenseKind::TwiCe => "TWiCe",
            DefenseKind::Graphene => "Graphene",
            DefenseKind::BlockHammer => "BlockHammer",
            DefenseKind::BlockHammerObserve => "BlockHammer(observe)",
        }
    }

    /// Parses a [`DefenseKind::label`] back into its kind — the inverse
    /// used when campaign specs arrive over the wire. Returns `None` for
    /// unknown labels.
    pub fn from_label(label: &str) -> Option<DefenseKind> {
        match label {
            "Baseline" => Some(DefenseKind::Baseline),
            "PARA" => Some(DefenseKind::Para),
            "PRoHIT" => Some(DefenseKind::ProHit),
            "MRLoc" => Some(DefenseKind::MrLoc),
            "CBT" => Some(DefenseKind::Cbt),
            "TWiCe" => Some(DefenseKind::TwiCe),
            "Graphene" => Some(DefenseKind::Graphene),
            "BlockHammer" => Some(DefenseKind::BlockHammer),
            "BlockHammer(observe)" => Some(DefenseKind::BlockHammerObserve),
            _ => None,
        }
    }

    /// Builds the defense for the given RowHammer threshold and geometry.
    ///
    /// `t_refi_cycles` paces the mechanisms that piggyback on refresh
    /// operations (PRoHIT's table service, TWiCe's pruning). `seed` is the
    /// *run* seed: the instance's random stream is decorrelated per channel
    /// via [`DefenseGeometry::channel`] (channel 0 keeps the run seed
    /// unchanged, preserving single-channel reproducibility).
    pub fn build(
        &self,
        n_rh: RowHammerThreshold,
        geometry: DefenseGeometry,
        t_refi_cycles: u64,
        seed: u64,
    ) -> Box<dyn RowHammerDefense> {
        let seed = Self::seed_for_channel(seed, geometry.channel);
        match self {
            DefenseKind::Baseline => Box::new(NoMitigation::new()),
            DefenseKind::Para => Box::new(Para::new(n_rh, TARGET_FAILURE, geometry, seed)),
            DefenseKind::ProHit => Box::new(ProHit::new(geometry, t_refi_cycles, seed)),
            DefenseKind::MrLoc => Box::new(MrLoc::new(n_rh, TARGET_FAILURE, geometry, seed)),
            DefenseKind::Cbt => Box::new(Cbt::new(n_rh, geometry)),
            DefenseKind::TwiCe => Box::new(TwiCe::new(n_rh, t_refi_cycles, geometry)),
            DefenseKind::Graphene => Box::new(Graphene::new(n_rh, geometry)),
            DefenseKind::BlockHammer => {
                let config = BlockHammerConfig::for_rowhammer_threshold(n_rh, &geometry);
                Box::new(BlockHammer::new(
                    config,
                    geometry,
                    OperatingMode::FullFunctional,
                ))
            }
            DefenseKind::BlockHammerObserve => {
                let config = BlockHammerConfig::for_rowhammer_threshold(n_rh, &geometry);
                Box::new(BlockHammer::new(
                    config,
                    geometry,
                    OperatingMode::ObserveOnly,
                ))
            }
        }
    }
}

impl DefenseKind {
    /// Derives the seed of channel `channel`'s defense instance from the
    /// run seed. Channel 0 keeps the run seed unchanged, so a one-channel
    /// sharded system reproduces the unsharded behaviour bit for bit;
    /// further channels get decorrelated streams.
    pub fn seed_for_channel(seed: u64, channel: usize) -> u64 {
        seed ^ (channel as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Builds one independent defense instance per memory channel, as the
    /// paper instantiates BlockHammer once per memory controller.
    ///
    /// `geometry` describes a single channel (see
    /// [`DefenseGeometry::channel`]); instance `i` receives
    /// `geometry.for_channel(i)`, which also decorrelates its random
    /// stream (see [`DefenseKind::build`]).
    pub fn build_per_channel(
        &self,
        channels: usize,
        n_rh: RowHammerThreshold,
        geometry: DefenseGeometry,
        t_refi_cycles: u64,
        seed: u64,
    ) -> Vec<Box<dyn RowHammerDefense>> {
        (0..channels)
            .map(|channel| self.build(n_rh, geometry.for_channel(channel), t_refi_cycles, seed))
            .collect()
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_a_defense_with_its_label() {
        let geometry = DefenseGeometry::default();
        for kind in [
            DefenseKind::Baseline,
            DefenseKind::Para,
            DefenseKind::ProHit,
            DefenseKind::MrLoc,
            DefenseKind::Cbt,
            DefenseKind::TwiCe,
            DefenseKind::Graphene,
            DefenseKind::BlockHammer,
            DefenseKind::BlockHammerObserve,
        ] {
            let defense = kind.build(RowHammerThreshold::new(32_768), geometry, 24_960, 1);
            assert!(!defense.name().is_empty());
            assert_eq!(DefenseKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(DefenseKind::from_label("blockhammer"), None);
    }

    #[test]
    fn evaluation_sets_match_the_paper() {
        assert_eq!(DefenseKind::figure_4_and_5_set().len(), 7);
        assert_eq!(DefenseKind::figure_6_set().len(), 4);
        assert!(DefenseKind::figure_6_set().contains(&DefenseKind::BlockHammer));
    }
}
