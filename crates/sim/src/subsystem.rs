//! The channel-sharded memory subsystem.
//!
//! The paper evaluates a single memory channel (Table 5), but real servers
//! scale memory bandwidth by adding channels, each with its own memory
//! controller — and BlockHammer is instantiated *per memory controller*,
//! so every channel owns an independent defense. This module models
//! exactly that: one [`MemoryController`] + DRAM device + boxed
//! [`RowHammerDefense`] per channel (a [`ChannelShard`]), with physical
//! addresses routed to shards by the address mapping's channel bits.
//!
//! Shards step in lockstep, one cycle at a time and with completions
//! always collected in channel order, so runs are deterministic. Because
//! the shards share no state, the lockstep can also be executed on scoped
//! worker threads ([`MemorySubsystem::set_parallel_stepping`]) without
//! altering results: each shard ticks independently and the per-shard
//! completion lists are concatenated in channel order afterwards, which is
//! exactly the sequential output.
//!
//! With `channels = 1` the subsystem degenerates to exactly the
//! pre-sharding behaviour: addresses pass through unchanged and the single
//! shard is the old controller + defense pair.

use crate::metrics::ChannelStats;
use bh_types::{AccessType, AddressMapping, AddressMappingGeometry, Cycle, ReqId, ThreadId};
use dram_sim::DramStats;
use memctrl::{CompletedRequest, CtrlStats, EnqueueError, MemCtrlConfig, MemoryController};
use mitigations::{DefenseStats, RowHammerDefense};

/// Identifies a request across shards: `(channel, shard-local request id)`.
///
/// Per-shard request ids are only unique within their controller, so every
/// consumer of the subsystem keys bookkeeping on this pair.
pub type ShardReqId = (usize, ReqId);

/// One memory channel: its controller (with DRAM device inside) and the
/// defense instance that protects it.
struct ChannelShard {
    channel: usize,
    ctrl: MemoryController,
    defense: Box<dyn RowHammerDefense>,
}

/// A set of independent per-channel memory controllers behind a single
/// enqueue/tick facade. See the module documentation.
pub struct MemorySubsystem {
    mapping: AddressMapping,
    /// Full-system geometry, used only to split addresses into
    /// `(channel, channel-local address)`.
    geometry: AddressMappingGeometry,
    banks_per_channel: usize,
    shards: Vec<ChannelShard>,
    /// Step shards on scoped threads instead of sequentially (identical
    /// results either way; see the module documentation).
    parallel: bool,
}

impl MemorySubsystem {
    /// Builds one shard per channel of `config.organization`, handing shard
    /// `i` the `i`-th defense.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `defenses` does not have
    /// exactly one entry per channel.
    pub fn new(
        config: &MemCtrlConfig,
        defenses: Vec<Box<dyn RowHammerDefense>>,
        enable_activation_log: bool,
    ) -> Self {
        config.validate().expect("invalid memory controller config");
        let channels = config.organization.channels;
        assert_eq!(
            defenses.len(),
            channels,
            "need exactly one defense instance per memory channel"
        );
        let shard_config = MemCtrlConfig {
            organization: config.organization.per_channel(),
            ..config.clone()
        };
        let shards = defenses
            .into_iter()
            .enumerate()
            .map(|(channel, defense)| {
                let mut ctrl = MemoryController::new(shard_config.clone());
                if enable_activation_log {
                    ctrl.enable_activation_log();
                }
                ChannelShard {
                    channel,
                    ctrl,
                    defense,
                }
            })
            .collect();
        Self {
            mapping: config.mapping,
            geometry: config.organization.geometry(),
            banks_per_channel: config.organization.banks_per_channel(),
            shards,
            parallel: false,
        }
    }

    /// Number of channel shards.
    pub fn channels(&self) -> usize {
        self.shards.len()
    }

    /// Enables or disables parallel shard stepping. With a single shard
    /// the setting has no effect (the sequential path is always used).
    pub fn set_parallel_stepping(&mut self, enabled: bool) {
        self.parallel = enabled;
    }

    /// Banks within one channel (the index space of per-shard defenses).
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel
    }

    /// The channel shard a physical address routes to.
    pub fn channel_of(&self, phys_addr: u64) -> usize {
        self.mapping.channel_of(&self.geometry, phys_addr)
    }

    /// The defense instance protecting `channel`.
    pub fn defense(&self, channel: usize) -> &dyn RowHammerDefense {
        self.shards[channel].defense.as_ref()
    }

    /// Mutable access to the defense instance protecting `channel` (e.g.
    /// to enable mechanism-specific instrumentation before a run).
    pub fn defense_mut(&mut self, channel: usize) -> &mut dyn RowHammerDefense {
        self.shards[channel].defense.as_mut()
    }

    /// Routes a demand request to its channel's controller.
    ///
    /// # Errors
    ///
    /// Propagates the shard controller's [`EnqueueError`] (full queue or
    /// defense quota).
    pub fn enqueue(
        &mut self,
        thread: ThreadId,
        phys_addr: u64,
        access: AccessType,
        now: Cycle,
    ) -> Result<ShardReqId, EnqueueError> {
        let (channel, local) = self.mapping.to_channel_local(&self.geometry, phys_addr);
        let shard = &mut self.shards[channel];
        shard
            .ctrl
            .enqueue(thread, local, access, now, shard.defense.as_ref())
            .map(|id| (channel, id))
    }

    /// Advances every shard by one cycle (lockstep) and returns the
    /// completed demand requests tagged with their channel, in channel
    /// order.
    ///
    /// With parallel stepping enabled (and more than one shard), shards
    /// tick concurrently on scoped threads; the per-shard completion lists
    /// are then concatenated in channel order, so the output — and
    /// therefore the whole run — is identical to sequential stepping.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, CompletedRequest)> {
        if self.parallel && self.shards.len() > 1 {
            let per_shard: Vec<(usize, Vec<CompletedRequest>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        scope.spawn(move || {
                            (shard.channel, shard.ctrl.tick(now, shard.defense.as_mut()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("shard tick panicked"))
                    .collect()
            });
            per_shard
                .into_iter()
                .flat_map(|(channel, done)| done.into_iter().map(move |d| (channel, d)))
                .collect()
        } else {
            let mut completed = Vec::new();
            for shard in &mut self.shards {
                for done in shard.ctrl.tick(now, shard.defense.as_mut()) {
                    completed.push((shard.channel, done));
                }
            }
            completed
        }
    }

    /// The largest RowHammer likelihood index any shard's defense reports
    /// for `thread`, across all banks.
    pub fn max_rhli(&self, thread: ThreadId) -> f64 {
        self.shards
            .iter()
            .flat_map(|shard| {
                (0..self.banks_per_channel).map(move |bank| shard.defense.rhli(thread, bank))
            })
            .fold(0.0, f64::max)
    }

    /// The mechanism name (shards run identical mechanisms; shard 0 speaks
    /// for all).
    pub fn defense_name(&self) -> &'static str {
        self.shards[0].defense.name()
    }

    /// Finalizes every shard at `now` and returns per-channel statistics,
    /// in channel order.
    pub fn finish(&mut self, now: Cycle) -> Vec<ChannelStats> {
        self.shards
            .iter_mut()
            .map(|shard| {
                let (dram, ctrl) = shard.ctrl.finish(now);
                ChannelStats {
                    channel: shard.channel,
                    defense: shard.defense.name().to_owned(),
                    dram,
                    ctrl,
                    defense_stats: shard.defense.stats(),
                }
            })
            .collect()
    }

    /// Consumes the subsystem, handing back the per-channel defense
    /// instances (in channel order) for post-run inspection.
    pub fn into_defenses(self) -> Vec<Box<dyn RowHammerDefense>> {
        self.shards.into_iter().map(|shard| shard.defense).collect()
    }
}

/// Merges per-channel statistics into the system-wide views `RunResult`
/// exposes for backward compatibility: concatenated DRAM rank counters
/// (with activation logs re-based to system-wide bank indices and *moved*
/// out of the per-channel entries to avoid duplicating them), summed
/// controller counters and summed defense counters.
pub fn merge_channel_stats(
    per_channel: &mut [ChannelStats],
    banks_per_channel: usize,
) -> (DramStats, CtrlStats, DefenseStats) {
    let mut dram = DramStats::new(0);
    let mut ctrl = CtrlStats::default();
    let mut defense = DefenseStats::default();
    for stats in per_channel.iter_mut() {
        let shard_dram = DramStats {
            per_rank: stats.dram.per_rank.clone(),
            active_bank_cycles: stats.dram.active_bank_cycles.clone(),
            elapsed_cycles: stats.dram.elapsed_cycles,
            activation_log: stats.dram.activation_log.take(),
            activations_per_row: stats.dram.activations_per_row.take(),
        };
        dram.absorb_shard(shard_dram, stats.channel * banks_per_channel);
        ctrl = ctrl.merged(&stats.ctrl);
        defense = defense.merged(&stats.defense_stats);
    }
    (dram, ctrl, defense)
}
