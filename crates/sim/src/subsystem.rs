//! The channel-sharded memory subsystem.
//!
//! The paper evaluates a single memory channel (Table 5), but real servers
//! scale memory bandwidth by adding channels, each with its own memory
//! controller — and BlockHammer is instantiated *per memory controller*,
//! so every channel owns an independent defense. This module models
//! exactly that: one [`MemoryController`] + DRAM device + boxed
//! [`RowHammerDefense`] per channel (a [`ChannelShard`]), with physical
//! addresses routed to shards by the address mapping's channel bits.
//!
//! Shards step in lockstep, one cycle at a time and with completions
//! always collected in channel order, so runs are deterministic. Because
//! the shards share no state, the lockstep can also be executed
//! concurrently ([`SteppingMode`]) without altering results: each shard
//! ticks independently and the per-shard completion lists are concatenated
//! in channel order afterwards, which is exactly the sequential output.
//! Two concurrent modes exist: [`SteppingMode::ScopedThreads`] spawns a
//! scoped thread per shard every cycle (the PR 2 baseline, kept for
//! comparison), and [`SteppingMode::WorkerPool`] keeps one long-lived
//! worker per extra shard and hands shards over per cycle, removing the
//! spawn/join cost from the per-cycle path (the main thread steps shard 0
//! itself while the workers step the rest).
//!
//! With `channels = 1` the subsystem degenerates to exactly the
//! pre-sharding behaviour: addresses pass through unchanged and the single
//! shard is the old controller + defense pair.

use crate::metrics::ChannelStats;
use crate::pool::WorkerPool;
use bh_types::{AccessType, AddressMapping, AddressMappingGeometry, Cycle, ReqId, ThreadId};
use dram_sim::DramStats;
use memctrl::{CompletedRequest, CtrlStats, EnqueueError, MemCtrlConfig, MemoryController};
use mitigations::{DefenseStats, RowHammerDefense};
use std::collections::VecDeque;

/// Identifies a request across shards: `(channel, shard-local request id)`.
///
/// Per-shard request ids are only unique within their controller, so every
/// consumer of the subsystem keys bookkeeping on this pair.
pub type ShardReqId = (usize, ReqId);

/// How the subsystem executes one lockstep cycle across its shards. All
/// modes produce bit-identical results (regression-pinned); they differ
/// only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteppingMode {
    /// Step shards one after another on the calling thread.
    #[default]
    Sequential,
    /// Spawn one scoped thread per shard per cycle (the PR 2
    /// implementation, retained as an equivalence and benchmark baseline).
    ScopedThreads,
    /// Keep one persistent worker thread per extra shard and hand shards
    /// over per cycle; the calling thread steps shard 0 itself.
    WorkerPool,
}

impl SteppingMode {
    /// The stepping mode best suited to this machine for a system with
    /// `channels` memory shards: the persistent worker pool when there is
    /// more than one shard *and* [`std::thread::available_parallelism`]
    /// reports more than one hardware thread, sequential otherwise. All
    /// modes are bit-identical, so auto-selection never changes results.
    pub fn auto(channels: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        if channels > 1 && threads > 1 {
            SteppingMode::WorkerPool
        } else {
            SteppingMode::Sequential
        }
    }
}

/// Worker-pool budget for a long-running service embedding the simulator
/// (e.g. the campaign server): every available hardware thread minus
/// `reserved` — the threads the service keeps for its own loops (accept,
/// collect, connection handling) — floored at zero, which means
/// sequential execution. Like [`SteppingMode::auto`], this only sizes
/// parallelism; it can never change simulated results, which are
/// worker-count-independent by construction.
pub fn service_pool_size(reserved: usize) -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(reserved))
}

/// One memory channel: its controller (with DRAM device inside) and the
/// defense instance that protects it.
struct ChannelShard {
    channel: usize,
    ctrl: MemoryController,
    defense: Box<dyn RowHammerDefense>,
}

impl ChannelShard {
    fn tick(&mut self, now: Cycle) -> Vec<CompletedRequest> {
        self.ctrl.tick(now, self.defense.as_mut())
    }
}

/// A set of independent per-channel memory controllers behind a single
/// enqueue/tick facade. See the module documentation.
pub struct MemorySubsystem {
    mapping: AddressMapping,
    /// Full-system geometry, used only to split addresses into
    /// `(channel, channel-local address)`.
    geometry: AddressMappingGeometry,
    banks_per_channel: usize,
    /// The shards, in channel order. A slot is only `None` while its shard
    /// is being stepped by a pool worker inside [`MemorySubsystem::tick`].
    shards: Vec<Option<ChannelShard>>,
    stepping: SteppingMode,
    /// Lazily-created persistent workers for [`SteppingMode::WorkerPool`]
    /// (one per shard beyond the first).
    pool: Option<WorkerPool<Cycle, ChannelShard, Vec<CompletedRequest>>>,
}

impl MemorySubsystem {
    /// Builds one shard per channel of `config.organization`, handing shard
    /// `i` the `i`-th defense.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `defenses` does not have
    /// exactly one entry per channel.
    pub fn new(
        config: &MemCtrlConfig,
        defenses: Vec<Box<dyn RowHammerDefense>>,
        enable_activation_log: bool,
    ) -> Self {
        // lint: allow(panic-freedom) -- documented constructor contract; MemCtrlConfig::validate is the fallible path
        config.validate().expect("invalid memory controller config");
        let channels = config.organization.channels;
        assert_eq!(
            defenses.len(),
            channels,
            "need exactly one defense instance per memory channel"
        );
        let shard_config = MemCtrlConfig {
            organization: config.organization.per_channel(),
            ..config.clone()
        };
        let shards = defenses
            .into_iter()
            .enumerate()
            .map(|(channel, defense)| {
                let mut ctrl = MemoryController::new(shard_config.clone());
                if enable_activation_log {
                    ctrl.enable_activation_log();
                }
                Some(ChannelShard {
                    channel,
                    ctrl,
                    defense,
                })
            })
            .collect();
        Self {
            mapping: config.mapping,
            geometry: config.organization.geometry(),
            banks_per_channel: config.organization.banks_per_channel(),
            shards,
            stepping: SteppingMode::Sequential,
            pool: None,
        }
    }

    fn shard(&self, channel: usize) -> &ChannelShard {
        self.shards[channel]
            .as_ref()
            // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
            .expect("shard is being stepped")
    }

    fn shard_mut(&mut self, channel: usize) -> &mut ChannelShard {
        self.shards[channel]
            .as_mut()
            // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
            .expect("shard is being stepped")
    }

    /// Number of channel shards.
    pub fn channels(&self) -> usize {
        self.shards.len()
    }

    /// Selects how shards are stepped. With a single shard every mode uses
    /// the sequential path.
    pub fn set_stepping(&mut self, stepping: SteppingMode) {
        self.stepping = stepping;
    }

    /// Compatibility switch for the pre-pool API: `true` selects
    /// [`SteppingMode::WorkerPool`], `false` [`SteppingMode::Sequential`].
    pub fn set_parallel_stepping(&mut self, enabled: bool) {
        self.stepping = if enabled {
            SteppingMode::WorkerPool
        } else {
            SteppingMode::Sequential
        };
    }

    /// Banks within one channel (the index space of per-shard defenses).
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel
    }

    /// The channel shard a physical address routes to.
    pub fn channel_of(&self, phys_addr: u64) -> usize {
        self.mapping.channel_of(&self.geometry, phys_addr)
    }

    /// The defense instance protecting `channel`.
    pub fn defense(&self, channel: usize) -> &dyn RowHammerDefense {
        self.shard(channel).defense.as_ref()
    }

    /// Mutable access to the defense instance protecting `channel` (e.g.
    /// to enable mechanism-specific instrumentation before a run).
    pub fn defense_mut(&mut self, channel: usize) -> &mut dyn RowHammerDefense {
        self.shard_mut(channel).defense.as_mut()
    }

    /// Routes a demand request to its channel's controller.
    ///
    /// # Errors
    ///
    /// Propagates the shard controller's [`EnqueueError`] (full queue or
    /// defense quota).
    pub fn enqueue(
        &mut self,
        thread: ThreadId,
        phys_addr: u64,
        access: AccessType,
        now: Cycle,
    ) -> Result<ShardReqId, EnqueueError> {
        let (channel, local) = self.mapping.to_channel_local(&self.geometry, phys_addr);
        let shard = self.shard_mut(channel);
        shard
            .ctrl
            .enqueue(thread, local, access, now, shard.defense.as_ref())
            .map(|id| (channel, id))
    }

    /// Admits pending requests for `channel` from the front of `queue`
    /// (entries are `(thread, system physical address)`) until the first
    /// rejection, popping every accepted entry and reporting it through
    /// `on_accept` with its assigned id. Returns the number accepted.
    ///
    /// Every queued address must route to `channel`; admission decisions
    /// and statistics are identical to retrying [`MemorySubsystem::enqueue`]
    /// per entry and stopping at the first error, but the per-request
    /// admission work is amortized across the batch.
    pub fn enqueue_batch(
        &mut self,
        channel: usize,
        queue: &mut VecDeque<(ThreadId, u64)>,
        access: AccessType,
        now: Cycle,
        mut on_accept: impl FnMut(ShardReqId, u64),
    ) -> usize {
        if queue.is_empty() {
            return 0;
        }
        let mapping = self.mapping;
        let geometry = self.geometry;
        let shard = self.shards[channel]
            .as_mut()
            // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
            .expect("shard is being stepped");
        let outcome = shard.ctrl.enqueue_batch(
            queue.iter().map(|&(thread, phys)| {
                let (routed, local) = mapping.to_channel_local(&geometry, phys);
                debug_assert_eq!(routed, channel, "queued address routed off-channel");
                (thread, local, phys)
            }),
            access,
            now,
            shard.defense.as_ref(),
            |id, phys| on_accept((channel, id), phys),
        );
        queue.drain(..outcome.accepted);
        outcome.accepted
    }

    /// Advances every shard by one cycle (lockstep) and returns the
    /// completed demand requests tagged with their channel, in channel
    /// order.
    ///
    /// With a concurrent [`SteppingMode`] (and more than one shard),
    /// shards tick on threads; the per-shard completion lists are then
    /// concatenated in channel order, so the output — and therefore the
    /// whole run — is identical to sequential stepping.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, CompletedRequest)> {
        match self.stepping {
            SteppingMode::ScopedThreads if self.shards.len() > 1 => self.tick_scoped(now),
            SteppingMode::WorkerPool if self.shards.len() > 1 => self.tick_pooled(now),
            _ => self.tick_sequential(now),
        }
    }

    fn tick_sequential(&mut self, now: Cycle) -> Vec<(usize, CompletedRequest)> {
        let mut completed = Vec::new();
        for slot in &mut self.shards {
            // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
            let shard = slot.as_mut().expect("shard is being stepped");
            for done in shard.tick(now) {
                completed.push((shard.channel, done));
            }
        }
        completed
    }

    fn tick_scoped(&mut self, now: Cycle) -> Vec<(usize, CompletedRequest)> {
        // lint: allow(thread-discipline) -- ScopedThreads is the reference stepping mode the worker pool is validated against
        let per_shard: Vec<(usize, Vec<CompletedRequest>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|slot| {
                    // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
                    let shard = slot.as_mut().expect("shard is being stepped");
                    scope.spawn(move || (shard.channel, shard.tick(now)))
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(panic-freedom) -- a panicking shard tick must propagate, mirroring the pooled path
                .map(|handle| handle.join().expect("shard tick panicked"))
                .collect()
        });
        per_shard
            .into_iter()
            .flat_map(|(channel, done)| done.into_iter().map(move |d| (channel, d)))
            .collect()
    }

    fn tick_pooled(&mut self, now: Cycle) -> Vec<(usize, CompletedRequest)> {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(
                self.shards.len() - 1,
                |now, shard: &mut ChannelShard| shard.tick(now),
            ));
        }
        // Hand shards 1..n to the workers, step shard 0 on this thread,
        // then collect everything back in channel order.
        for channel in 1..self.shards.len() {
            // lint: allow(panic-freedom) -- every shard is home before tick_pooled starts handing them out
            let shard = self.shards[channel].take().expect("shard is present");
            self.pool
                .as_mut()
                // lint: allow(panic-freedom) -- the pool is created at the top of tick_pooled
                .expect("pool was just created")
                .dispatch(channel - 1, now, shard);
        }
        // A panic — in shard 0's tick or inside a worker — must not stop
        // the remaining shards from being collected back into their
        // slots: a caught unwind would otherwise leave the subsystem
        // with missing shards, and every later call would die on an
        // unrelated "shard is being stepped" instead of the original
        // failure. So both the shard-0 tick and each collect are caught,
        // every restorable shard is restored, and the first panic
        // payload is re-raised afterwards. (AssertUnwindSafe is fine:
        // the panic is re-raised as soon as the shards are back. A shard
        // whose own worker panicked is unavoidably lost with that
        // worker's unwind.)
        // lint: allow(recovery-discipline) -- shard restoration boundary documented above; payload is re-raised
        let shard0_done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // lint: allow(panic-freedom) -- shard 0 is stepped in place and never handed to a worker
            let shard0 = self.shards[0].as_mut().expect("shard 0 never leaves");
            shard0.tick(now)
        }));
        let mut completed = Vec::new();
        let mut worker_done = Vec::new();
        let mut worker_panic = None;
        for channel in 1..self.shards.len() {
            // lint: allow(panic-freedom) -- the pool is created at the top of tick_pooled
            let pool = self.pool.as_mut().expect("pool was just created");
            // lint: allow(recovery-discipline) -- shard restoration boundary documented above; payload is re-raised
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.collect(channel - 1)
            })) {
                Ok((shard, done)) => {
                    self.shards[channel] = Some(shard);
                    worker_done.push((channel, done));
                }
                Err(payload) => {
                    worker_panic.get_or_insert(payload);
                }
            }
        }
        match shard0_done {
            Ok(done) => completed.extend(done.into_iter().map(|d| (0, d))),
            // lint: allow(recovery-discipline) -- re-raising the original shard-0 panic after restoration
            Err(payload) => std::panic::resume_unwind(payload),
        }
        if let Some(payload) = worker_panic {
            // lint: allow(recovery-discipline) -- re-raising the first worker panic after restoration
            std::panic::resume_unwind(payload);
        }
        for (channel, done) in worker_done {
            completed.extend(done.into_iter().map(|d| (channel, d)));
        }
        completed
    }

    /// The earliest cycle after `now` at which any shard's `tick` could
    /// do observable work (see `MemoryController::next_event`), or `None`
    /// when every shard is fully idle. Used by event-driven stepping to
    /// skip provably no-op cycles.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.shards
            .iter()
            .filter_map(|slot| {
                // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
                let shard = slot.as_ref().expect("shard is being stepped");
                shard.ctrl.next_event(now, shard.defense.as_ref())
            })
            .min()
    }

    /// The largest RowHammer likelihood index any shard's defense reports
    /// for `thread`, across all banks.
    pub fn max_rhli(&self, thread: ThreadId) -> f64 {
        (0..self.shards.len())
            .flat_map(|channel| {
                (0..self.banks_per_channel)
                    .map(move |bank| self.shard(channel).defense.rhli(thread, bank))
            })
            .fold(0.0, f64::max)
    }

    /// The mechanism name (shards run identical mechanisms; shard 0 speaks
    /// for all).
    pub fn defense_name(&self) -> &'static str {
        self.shard(0).defense.name()
    }

    /// Finalizes every shard at `now` and returns per-channel statistics,
    /// in channel order.
    pub fn finish(&mut self, now: Cycle) -> Vec<ChannelStats> {
        self.shards
            .iter_mut()
            .map(|slot| {
                // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
                let shard = slot.as_mut().expect("shard is being stepped");
                let (dram, ctrl) = shard.ctrl.finish(now);
                ChannelStats {
                    channel: shard.channel,
                    defense: shard.defense.name().to_owned(),
                    dram,
                    ctrl,
                    defense_stats: shard.defense.stats(),
                }
            })
            .collect()
    }

    /// Consumes the subsystem, handing back the per-channel defense
    /// instances (in channel order) for post-run inspection.
    pub fn into_defenses(self) -> Vec<Box<dyn RowHammerDefense>> {
        self.shards
            .into_iter()
            // lint: allow(panic-freedom) -- shards are only None while checked out to pool workers in tick_pooled
            .map(|slot| slot.expect("shard is being stepped").defense)
            .collect()
    }
}

/// Merges per-channel statistics into the system-wide views `RunResult`
/// exposes for backward compatibility: concatenated DRAM rank counters
/// (with activation logs re-based to system-wide bank indices and *moved*
/// out of the per-channel entries to avoid duplicating them), summed
/// controller counters and summed defense counters.
pub fn merge_channel_stats(
    per_channel: &mut [ChannelStats],
    banks_per_channel: usize,
) -> (DramStats, CtrlStats, DefenseStats) {
    let mut dram = DramStats::new(0);
    let mut ctrl = CtrlStats::default();
    let mut defense = DefenseStats::default();
    for stats in per_channel.iter_mut() {
        let shard_dram = DramStats {
            per_rank: stats.dram.per_rank.clone(),
            active_bank_cycles: stats.dram.active_bank_cycles.clone(),
            elapsed_cycles: stats.dram.elapsed_cycles,
            activation_log: stats.dram.activation_log.take(),
            activations_per_row: stats.dram.activations_per_row.take(),
        };
        dram.absorb_shard(shard_dram, stats.channel * banks_per_channel);
        ctrl = ctrl.merged(&stats.ctrl);
        defense = defense.merged(&stats.defense_stats);
    }
    (dram, ctrl, defense)
}
