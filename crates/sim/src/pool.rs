//! A persistent worker pool for stepping channel shards.
//!
//! The scoped-thread stepping mode spawns (and joins) one OS thread per
//! shard on *every* simulated cycle, which dominates its cost at low
//! channel counts. This pool spawns each worker thread once and keeps it
//! alive for the lifetime of the subsystem; per cycle, the owner *moves*
//! each shard to its worker over a channel, the worker ticks it, and the
//! shard travels back together with its completion list. Moving a shard is
//! a shallow struct copy (its queues and filters live behind pointers), so
//! the per-cycle cost is two channel handoffs per worker instead of a
//! thread spawn + join.
//!
//! The pool is generic over the work item so it stays decoupled from the
//! subsystem's (private) shard type. It knows nothing about cycles beyond
//! passing the `Cycle` argument through to the work function.

use bh_types::Cycle;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Bounded busy-wait before parking on the result channel: if the worker
/// finishes while the owner is still distributing work or stepping its own
/// shard, the result is usually ready by the time it is asked for, and
/// spinning briefly avoids a futex round trip. Kept small so a
/// single-hardware-thread host degrades gracefully.
const RESULT_SPIN: u32 = 256;

/// One persistent worker owning a job and a result channel.
struct Worker<T, R> {
    job_tx: Option<Sender<(Cycle, T)>>,
    result_rx: Receiver<(T, R)>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of persistent worker threads, one per work slot.
pub(crate) struct WorkerPool<T: Send + 'static, R: Send + 'static> {
    workers: Vec<Worker<T, R>>,
}

impl<T: Send + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawns `slots` worker threads, each running `work` on every item it
    /// receives until the pool is dropped.
    pub(crate) fn new<F>(slots: usize, work: F) -> Self
    where
        F: Fn(Cycle, &mut T) -> R + Send + Clone + 'static,
    {
        let workers = (0..slots)
            .map(|slot| {
                let (job_tx, job_rx) = channel::<(Cycle, T)>();
                let (result_tx, result_rx) = channel::<(T, R)>();
                let work = work.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shard-worker-{slot}"))
                    .spawn(move || {
                        while let Ok((now, mut item)) = job_rx.recv() {
                            let result = work(now, &mut item);
                            if result_tx.send((item, result)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn shard worker thread");
                Worker {
                    job_tx: Some(job_tx),
                    result_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// Number of worker slots.
    #[cfg(test)]
    pub(crate) fn slots(&self) -> usize {
        self.workers.len()
    }

    /// Hands `item` to worker `slot` for one step at `now`.
    pub(crate) fn dispatch(&self, slot: usize, now: Cycle, item: T) {
        self.workers[slot]
            .job_tx
            .as_ref()
            .expect("pool is live")
            .send((now, item))
            .expect("shard worker exited unexpectedly");
    }

    /// Waits for worker `slot` to finish its current step and returns the
    /// item together with the step result.
    ///
    /// # Panics
    ///
    /// If the worker thread died (a panic inside the work function), the
    /// worker is joined and its original panic payload is re-raised on
    /// the calling thread.
    pub(crate) fn collect(&mut self, slot: usize) -> (T, R) {
        let worker = &mut self.workers[slot];
        for _ in 0..RESULT_SPIN {
            match worker.result_rx.try_recv() {
                Ok(done) => return done,
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => propagate_worker_panic(worker),
            }
        }
        match worker.result_rx.recv() {
            Ok(done) => done,
            Err(_) => propagate_worker_panic(worker),
        }
    }
}

/// A worker's result channel disconnected mid-step: the work function
/// panicked. Join the thread to recover the original panic payload and
/// re-raise it here, so the caller sees the real failure instead of a
/// generic "worker died" message.
fn propagate_worker_panic<T, R>(worker: &mut Worker<T, R>) -> ! {
    worker.job_tx.take();
    if let Some(handle) = worker.handle.take() {
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
    }
    panic!("shard worker exited without delivering a result");
}

impl<T: Send + 'static, R: Send + 'static> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        // Closing the job channels lets every worker fall out of its loop;
        // join afterwards so worker panics surface during tests.
        for worker in &mut self.workers {
            worker.job_tx.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                // A worker that panicked already reported through collect();
                // suppress the secondary panic during unwinding.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_step_items_and_hand_them_back() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(3, |now, item| {
            *item += now;
            *item
        });
        assert_eq!(pool.slots(), 3);
        for round in 1..=5u64 {
            for slot in 0..3 {
                pool.dispatch(slot, round, slot as u64);
            }
            for slot in 0..3 {
                let (item, result) = pool.collect(slot);
                assert_eq!(item, slot as u64 + round);
                assert_eq!(result, item);
            }
        }
    }

    #[test]
    fn dropping_the_pool_joins_the_workers() {
        let mut pool: WorkerPool<u32, u32> = WorkerPool::new(2, |_, item| *item);
        pool.dispatch(0, 0, 7);
        let (item, _) = pool.collect(0);
        assert_eq!(item, 7);
        drop(pool); // must not hang
    }
}
