//! A persistent worker pool for deterministic fan-out of simulation work.
//!
//! Originally built to step channel shards: the scoped-thread stepping mode
//! spawns (and joins) one OS thread per shard on *every* simulated cycle,
//! which dominates its cost at low channel counts. This pool spawns each
//! worker thread once and keeps it alive for the lifetime of its owner;
//! per step, the owner *moves* each work item to its worker over a channel,
//! the worker processes it, and the item travels back together with the
//! result. Moving an item is a shallow struct copy (its queues and filters
//! live behind pointers), so the per-step cost is two channel handoffs per
//! worker instead of a thread spawn + join.
//!
//! The pool is generic over three types so the same mechanism serves both
//! of its users:
//!
//! * **shard stepping** (`sim::subsystem`): the context is the current
//!   [`Cycle`](bh_types::Cycle), the item a channel shard, the result its
//!   completion list;
//! * **campaign execution** (the `campaign` crate): the context is `()`,
//!   the item a whole run specification, the result the finished run's
//!   outcome — entire simulations fan out across the same persistent
//!   workers.
//!
//! Determinism is the caller's contract: `dispatch`/`collect` address
//! worker slots explicitly, so a caller that collects results in its own
//! fixed order observes output identical to sequential execution no matter
//! how long each worker actually takes.
//!
//! Two dispatch disciplines share this module. The slot-pinned
//! [`WorkerPool`] here pushes jobs round-robin to fixed slots — ideal
//! when items are uniform (shard stepping). The pull-based
//! [`queue::StealingPool`] hands jobs out through a shared injector
//! queue and returns completions out of order, tagged with their
//! sequence numbers — ideal when job durations are wildly skewed
//! (campaign runs) and a pinned slot would head-of-line-block.
//!
//! # Fault tolerance
//!
//! A worker thread dies when its work function panics. Callers choose how
//! that surfaces:
//!
//! * [`WorkerPool::collect`] re-raises the worker's original panic payload
//!   on the calling thread — the right behaviour for shard stepping, where
//!   the shard moved into the dead worker is unrecoverable state;
//! * [`WorkerPool::collect_recovered`] *survives* the death: it joins the
//!   dead thread, respawns a replacement worker in the same slot, and
//!   returns [`Collected::Lost`] describing the panic, how many moved-in
//!   jobs died with the thread, and any jobs that never reached it
//!   ([`WorkerPool::dispatch`] parks sends to a dead worker instead of
//!   panicking). A caller that keeps its own copies of dispatched work —
//!   the campaign executor clones each `RunSpec` it hands out — can
//!   resubmit and carry on instead of unwinding the whole campaign.

pub mod queue;

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Bounded busy-wait before parking on the result channel: if the worker
/// finishes while the owner is still distributing work or doing its own
/// share, the result is usually ready by the time it is asked for, and
/// spinning briefly avoids a futex round trip. Kept small so a
/// single-hardware-thread host degrades gracefully.
const RESULT_SPIN: u32 = 256;

/// The shared work function workers run on every item (kept by the pool
/// so a replacement worker can be spawned after a panic).
type Work<C, T, R> = Arc<dyn Fn(C, &mut T) -> R + Send + Sync + 'static>;

/// One persistent worker owning a job and a result channel.
struct Worker<C, T, R> {
    job_tx: Option<Sender<(C, T)>>,
    result_rx: Receiver<(T, R)>,
    handle: Option<JoinHandle<()>>,
    /// Jobs dispatched (including parked ones) whose results have not
    /// been collected yet.
    outstanding: usize,
    /// Jobs whose send failed because the worker thread had already
    /// died; handed back to the caller by the recovery path so nothing
    /// is silently dropped.
    parked: Vec<(C, T)>,
}

/// What a fallible collect observed (see
/// [`WorkerPool::collect_recovered`]).
pub enum Collected<C, T, R> {
    /// The worker finished the job; the item comes back with the result.
    Done(T, R),
    /// The worker thread died (its work function panicked). The slot has
    /// already been respawned and is ready for new dispatches.
    Lost {
        /// The panic message recovered from the dead thread.
        message: String,
        /// Jobs that had been moved into the worker and died with it
        /// (the oldest of them is the one that was running). The caller
        /// must re-create them from its own records if it wants to
        /// resubmit.
        lost_jobs: usize,
        /// Jobs that never reached the dead worker (their channel send
        /// failed); they are returned intact, in dispatch order, for the
        /// caller to resubmit after any re-created lost jobs.
        parked: Vec<(C, T)>,
    },
}

/// A pool of persistent worker threads, one per work slot.
///
/// `C` is a per-dispatch context value passed through to the work function
/// (the simulation cycle for shard stepping, `()` for whole-run jobs),
/// `T` the work item (moved to the worker and back), and `R` the result.
pub struct WorkerPool<C: Send + 'static, T: Send + 'static, R: Send + 'static> {
    workers: Vec<Worker<C, T, R>>,
    work: Work<C, T, R>,
}

impl<C: Send + 'static, T: Send + 'static, R: Send + 'static> WorkerPool<C, T, R> {
    /// Spawns `slots` worker threads, each running `work` on every item it
    /// receives until the pool is dropped.
    pub fn new<F>(slots: usize, work: F) -> Self
    where
        F: Fn(C, &mut T) -> R + Send + Sync + 'static,
    {
        let work: Work<C, T, R> = Arc::new(work);
        let workers = (0..slots)
            .map(|slot| spawn_worker(slot, Arc::clone(&work)))
            .collect();
        Self { workers, work }
    }

    /// Number of worker slots.
    pub fn slots(&self) -> usize {
        self.workers.len()
    }

    /// Hands `item` to worker `slot` for one step with context `ctx`.
    ///
    /// A slot processes one item at a time: dispatching twice to the same
    /// slot without an intervening [`WorkerPool::collect`] queues the
    /// second item behind the first.
    ///
    /// If the slot's worker has died and its death has not yet been
    /// observed by a collect, the job is parked instead of sent; the next
    /// [`WorkerPool::collect_recovered`] on the slot returns parked jobs
    /// intact so the caller can resubmit them.
    pub fn dispatch(&mut self, slot: usize, ctx: C, item: T) {
        let worker = &mut self.workers[slot];
        worker.outstanding += 1;
        let Some(job_tx) = worker.job_tx.as_ref() else {
            // The slot's sender is only absent mid-recovery; treat like a
            // dead worker so the job is never dropped.
            worker.parked.push((ctx, item));
            return;
        };
        if let Err(failed) = job_tx.send((ctx, item)) {
            // The worker thread exited (panicked) before receiving this
            // job: park it for the recovery path instead of losing it.
            worker.parked.push(failed.0);
        }
    }

    /// Waits for worker `slot` to finish its oldest outstanding step and
    /// returns the item together with the step result.
    ///
    /// # Panics
    ///
    /// If the worker thread died (a panic inside the work function), the
    /// worker is joined and its original panic payload is re-raised on
    /// the calling thread. Use [`WorkerPool::collect_recovered`] to
    /// survive the death instead.
    pub fn collect(&mut self, slot: usize) -> (T, R) {
        match self.try_collect(slot) {
            Some(done) => done,
            None => propagate_worker_panic(&mut self.workers[slot]),
        }
    }

    /// Like [`WorkerPool::collect`], but a dead worker is recovered
    /// instead of re-panicking: the thread is joined for its panic
    /// message, a replacement worker is spawned into the slot, and the
    /// jobs that died with the thread are reported (with any parked jobs
    /// returned intact) so the caller can resubmit and continue.
    pub fn collect_recovered(&mut self, slot: usize) -> Collected<C, T, R> {
        match self.try_collect(slot) {
            Some((item, result)) => Collected::Done(item, result),
            None => self.recover(slot),
        }
    }

    /// Spins briefly, then blocks, for the slot's next result. `None`
    /// means the worker died without delivering it.
    fn try_collect(&mut self, slot: usize) -> Option<(T, R)> {
        let worker = &mut self.workers[slot];
        for _ in 0..RESULT_SPIN {
            match worker.result_rx.try_recv() {
                Ok(done) => {
                    worker.outstanding -= 1;
                    return Some(done);
                }
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => return None,
            }
        }
        match worker.result_rx.recv() {
            Ok(done) => {
                worker.outstanding -= 1;
                Some(done)
            }
            Err(_) => None,
        }
    }

    /// Joins a dead worker, respawns its slot, and reports what was lost.
    fn recover(&mut self, slot: usize) -> Collected<C, T, R> {
        let replacement = spawn_worker(slot, Arc::clone(&self.work));
        let worker = &mut self.workers[slot];
        worker.job_tx.take();
        let message = match worker.handle.take().map(JoinHandle::join) {
            Some(Err(payload)) => panic_message(payload.as_ref()),
            Some(Ok(())) => "worker exited without a panic".to_owned(),
            None => "worker was already joined".to_owned(),
        };
        let parked = std::mem::take(&mut worker.parked);
        // Everything dispatched but not collected is either parked (still
        // in hand) or died inside the worker.
        let lost_jobs = worker.outstanding - parked.len();
        *worker = replacement;
        Collected::Lost {
            message,
            lost_jobs,
            parked,
        }
    }
}

/// Spawns the thread + channel pair behind one worker slot.
fn spawn_worker<C: Send + 'static, T: Send + 'static, R: Send + 'static>(
    slot: usize,
    work: Work<C, T, R>,
) -> Worker<C, T, R> {
    let (job_tx, job_rx) = channel::<(C, T)>();
    let (result_tx, result_rx) = channel::<(T, R)>();
    let handle = std::thread::Builder::new()
        .name(format!("pool-worker-{slot}"))
        .spawn(move || {
            while let Ok((ctx, mut item)) = job_rx.recv() {
                let result = work(ctx, &mut item);
                if result_tx.send((item, result)).is_err() {
                    break;
                }
            }
        })
        // lint: allow(panic-freedom) -- thread-spawn failure at pool construction is unrecoverable infrastructure loss
        .expect("failed to spawn pool worker thread");
    Worker {
        job_tx: Some(job_tx),
        result_rx,
        handle: Some(handle),
        outstanding: 0,
        parked: Vec::new(),
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice). Shared with the pull-based [`queue`] pool.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// A worker's result channel disconnected mid-step: the work function
/// panicked. Join the thread to recover the original panic payload and
/// re-raise it here, so the caller sees the real failure instead of a
/// generic "worker died" message.
fn propagate_worker_panic<C, T, R>(worker: &mut Worker<C, T, R>) -> ! {
    worker.job_tx.take();
    if let Some(handle) = worker.handle.take() {
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
    }
    // lint: allow(panic-freedom) -- unreachable fallback: a worker that died without a result resumed its unwind above
    panic!("pool worker exited without delivering a result");
}

impl<C: Send + 'static, T: Send + 'static, R: Send + 'static> Drop for WorkerPool<C, T, R> {
    fn drop(&mut self) {
        // Closing the job channels lets every worker fall out of its loop;
        // join afterwards so worker panics surface during tests.
        for worker in &mut self.workers {
            worker.job_tx.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                // A worker that panicked already reported through collect();
                // suppress the secondary panic during unwinding.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_step_items_and_hand_them_back() {
        let mut pool: WorkerPool<u64, u64, u64> = WorkerPool::new(3, |now, item| {
            *item += now;
            *item
        });
        assert_eq!(pool.slots(), 3);
        for round in 1..=5u64 {
            for slot in 0..3 {
                pool.dispatch(slot, round, slot as u64);
            }
            for slot in 0..3 {
                let (item, result) = pool.collect(slot);
                assert_eq!(item, slot as u64 + round);
                assert_eq!(result, item);
            }
        }
    }

    #[test]
    fn unit_context_jobs_run() {
        let mut pool: WorkerPool<(), String, usize> =
            WorkerPool::new(2, |(), item: &mut String| item.len());
        pool.dispatch(0, (), "four".to_owned());
        pool.dispatch(1, (), "seven!!".to_owned());
        let (item, len) = pool.collect(0);
        assert_eq!((item.as_str(), len), ("four", 4));
        let (item, len) = pool.collect(1);
        assert_eq!((item.as_str(), len), ("seven!!", 7));
    }

    #[test]
    fn a_slot_queues_back_to_back_dispatches_in_order() {
        let mut pool: WorkerPool<u64, u64, u64> = WorkerPool::new(1, |ctx, item| *item * 10 + ctx);
        pool.dispatch(0, 1, 1);
        pool.dispatch(0, 2, 2);
        assert_eq!(pool.collect(0).1, 11);
        assert_eq!(pool.collect(0).1, 22);
    }

    #[test]
    fn dropping_the_pool_joins_the_workers() {
        let mut pool: WorkerPool<u64, u32, u32> = WorkerPool::new(2, |_, item| *item);
        pool.dispatch(0, 0, 7);
        let (item, _) = pool.collect(0);
        assert_eq!(item, 7);
        drop(pool); // must not hang
    }

    #[test]
    fn collect_propagates_the_original_panic_payload() {
        let mut pool: WorkerPool<(), u32, u32> = WorkerPool::new(1, |(), item: &mut u32| {
            assert!(*item != 13, "unlucky item");
            *item
        });
        pool.dispatch(0, (), 13);
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.collect(0)));
        let payload = unwind.expect_err("worker panic must propagate");
        let message = super::panic_message(payload.as_ref());
        assert!(message.contains("unlucky item"), "got: {message}");
    }

    #[test]
    fn a_dead_worker_is_recovered_and_the_slot_respawned() {
        let mut pool: WorkerPool<(), u32, u32> = WorkerPool::new(1, |(), item: &mut u32| {
            assert!(*item != 13, "unlucky item");
            *item * 2
        });
        pool.dispatch(0, (), 13);
        match pool.collect_recovered(0) {
            Collected::Lost {
                message,
                lost_jobs,
                parked,
            } => {
                assert!(message.contains("unlucky item"), "got: {message}");
                assert_eq!(lost_jobs, 1);
                assert!(parked.is_empty());
            }
            Collected::Done(..) => panic!("the job must be lost"),
        }
        // The slot was respawned in place: it accepts and runs new work.
        pool.dispatch(0, (), 4);
        match pool.collect_recovered(0) {
            Collected::Done(item, result) => assert_eq!((item, result), (4, 8)),
            Collected::Lost { message, .. } => panic!("respawned slot died: {message}"),
        }
    }

    #[test]
    fn jobs_behind_a_panicking_job_are_accounted_lost_or_parked() {
        let mut pool: WorkerPool<(), u32, u32> = WorkerPool::new(1, |(), item: &mut u32| {
            assert!(*item != 13, "unlucky item");
            *item
        });
        // The panicking job plus three more behind it. Depending on timing
        // the trailing jobs either reach the worker's queue before it dies
        // (lost with the thread) or fail to send (returned parked); the
        // recovery report must account for every single one either way.
        pool.dispatch(0, (), 13);
        for extra in [1u32, 2, 3] {
            pool.dispatch(0, (), extra);
        }
        match pool.collect_recovered(0) {
            Collected::Lost {
                lost_jobs, parked, ..
            } => {
                assert_eq!(lost_jobs + parked.len(), 4, "every job accounted for");
                assert!(lost_jobs >= 1, "the running job always dies");
                // Parked jobs come back intact and in dispatch order.
                let restored: Vec<u32> = parked.into_iter().map(|((), item)| item).collect();
                assert!(
                    restored
                        .iter()
                        .zip([1, 2, 3].iter().skip(3 - restored.len()))
                        .all(|(a, b)| a == b)
                        || restored.is_empty()
                        || restored == [1, 2, 3]
                        || restored == [2, 3]
                        || restored == [3]
                );
            }
            Collected::Done(..) => panic!("the poisoned batch cannot complete"),
        }
        // The respawned slot keeps working.
        pool.dispatch(0, (), 21);
        let (item, result) = pool.collect(0);
        assert_eq!((item, result), (21, 21));
    }

    #[test]
    fn results_buffered_before_a_death_are_still_collected() {
        let mut pool: WorkerPool<(), u32, u32> = WorkerPool::new(1, |(), item: &mut u32| {
            assert!(*item != 13, "unlucky item");
            *item + 100
        });
        pool.dispatch(0, (), 1);
        pool.dispatch(0, (), 2);
        pool.dispatch(0, (), 13);
        // The two healthy results arrive even though the worker later died.
        assert_eq!(pool.collect(0).1, 101);
        assert_eq!(pool.collect(0).1, 102);
        match pool.collect_recovered(0) {
            Collected::Lost { lost_jobs, .. } => assert_eq!(lost_jobs, 1),
            Collected::Done(..) => panic!("the poisoned job cannot complete"),
        }
    }
}
