//! A persistent worker pool for deterministic fan-out of simulation work.
//!
//! Originally built to step channel shards: the scoped-thread stepping mode
//! spawns (and joins) one OS thread per shard on *every* simulated cycle,
//! which dominates its cost at low channel counts. This pool spawns each
//! worker thread once and keeps it alive for the lifetime of its owner;
//! per step, the owner *moves* each work item to its worker over a channel,
//! the worker processes it, and the item travels back together with the
//! result. Moving an item is a shallow struct copy (its queues and filters
//! live behind pointers), so the per-step cost is two channel handoffs per
//! worker instead of a thread spawn + join.
//!
//! The pool is generic over three types so the same mechanism serves both
//! of its users:
//!
//! * **shard stepping** (`sim::subsystem`): the context is the current
//!   [`Cycle`](bh_types::Cycle), the item a channel shard, the result its
//!   completion list;
//! * **campaign execution** (the `campaign` crate): the context is `()`,
//!   the item a whole run specification, the result the finished run's
//!   outcome — entire simulations fan out across the same persistent
//!   workers.
//!
//! Determinism is the caller's contract: `dispatch`/`collect` address
//! worker slots explicitly, so a caller that collects results in its own
//! fixed order observes output identical to sequential execution no matter
//! how long each worker actually takes.

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Bounded busy-wait before parking on the result channel: if the worker
/// finishes while the owner is still distributing work or doing its own
/// share, the result is usually ready by the time it is asked for, and
/// spinning briefly avoids a futex round trip. Kept small so a
/// single-hardware-thread host degrades gracefully.
const RESULT_SPIN: u32 = 256;

/// One persistent worker owning a job and a result channel.
struct Worker<C, T, R> {
    job_tx: Option<Sender<(C, T)>>,
    result_rx: Receiver<(T, R)>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of persistent worker threads, one per work slot.
///
/// `C` is a per-dispatch context value passed through to the work function
/// (the simulation cycle for shard stepping, `()` for whole-run jobs),
/// `T` the work item (moved to the worker and back), and `R` the result.
pub struct WorkerPool<C: Send + 'static, T: Send + 'static, R: Send + 'static> {
    workers: Vec<Worker<C, T, R>>,
}

impl<C: Send + 'static, T: Send + 'static, R: Send + 'static> WorkerPool<C, T, R> {
    /// Spawns `slots` worker threads, each running `work` on every item it
    /// receives until the pool is dropped.
    pub fn new<F>(slots: usize, work: F) -> Self
    where
        F: Fn(C, &mut T) -> R + Send + Clone + 'static,
    {
        let workers = (0..slots)
            .map(|slot| {
                let (job_tx, job_rx) = channel::<(C, T)>();
                let (result_tx, result_rx) = channel::<(T, R)>();
                let work = work.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("pool-worker-{slot}"))
                    .spawn(move || {
                        while let Ok((ctx, mut item)) = job_rx.recv() {
                            let result = work(ctx, &mut item);
                            if result_tx.send((item, result)).is_err() {
                                break;
                            }
                        }
                    })
                    // lint: allow(panic-freedom) -- thread-spawn failure at pool construction is unrecoverable infrastructure loss
                    .expect("failed to spawn pool worker thread");
                Worker {
                    job_tx: Some(job_tx),
                    result_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// Number of worker slots.
    pub fn slots(&self) -> usize {
        self.workers.len()
    }

    /// Hands `item` to worker `slot` for one step with context `ctx`.
    ///
    /// A slot processes one item at a time: dispatching twice to the same
    /// slot without an intervening [`WorkerPool::collect`] queues the
    /// second item behind the first.
    pub fn dispatch(&self, slot: usize, ctx: C, item: T) {
        self.workers[slot]
            .job_tx
            .as_ref()
            // lint: allow(panic-freedom) -- pool liveness invariant: job channels stay open until drop
            .expect("pool is live")
            .send((ctx, item))
            // lint: allow(panic-freedom) -- a dead worker already means a propagated panic; see propagate_worker_panic
            .expect("pool worker exited unexpectedly");
    }

    /// Waits for worker `slot` to finish its oldest outstanding step and
    /// returns the item together with the step result.
    ///
    /// # Panics
    ///
    /// If the worker thread died (a panic inside the work function), the
    /// worker is joined and its original panic payload is re-raised on
    /// the calling thread.
    pub fn collect(&mut self, slot: usize) -> (T, R) {
        let worker = &mut self.workers[slot];
        for _ in 0..RESULT_SPIN {
            match worker.result_rx.try_recv() {
                Ok(done) => return done,
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => propagate_worker_panic(worker),
            }
        }
        match worker.result_rx.recv() {
            Ok(done) => done,
            Err(_) => propagate_worker_panic(worker),
        }
    }
}

/// A worker's result channel disconnected mid-step: the work function
/// panicked. Join the thread to recover the original panic payload and
/// re-raise it here, so the caller sees the real failure instead of a
/// generic "worker died" message.
fn propagate_worker_panic<C, T, R>(worker: &mut Worker<C, T, R>) -> ! {
    worker.job_tx.take();
    if let Some(handle) = worker.handle.take() {
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
    }
    // lint: allow(panic-freedom) -- unreachable fallback: a worker that died without a result resumed its unwind above
    panic!("pool worker exited without delivering a result");
}

impl<C: Send + 'static, T: Send + 'static, R: Send + 'static> Drop for WorkerPool<C, T, R> {
    fn drop(&mut self) {
        // Closing the job channels lets every worker fall out of its loop;
        // join afterwards so worker panics surface during tests.
        for worker in &mut self.workers {
            worker.job_tx.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                // A worker that panicked already reported through collect();
                // suppress the secondary panic during unwinding.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_step_items_and_hand_them_back() {
        let mut pool: WorkerPool<u64, u64, u64> = WorkerPool::new(3, |now, item| {
            *item += now;
            *item
        });
        assert_eq!(pool.slots(), 3);
        for round in 1..=5u64 {
            for slot in 0..3 {
                pool.dispatch(slot, round, slot as u64);
            }
            for slot in 0..3 {
                let (item, result) = pool.collect(slot);
                assert_eq!(item, slot as u64 + round);
                assert_eq!(result, item);
            }
        }
    }

    #[test]
    fn unit_context_jobs_run() {
        let mut pool: WorkerPool<(), String, usize> =
            WorkerPool::new(2, |(), item: &mut String| item.len());
        pool.dispatch(0, (), "four".to_owned());
        pool.dispatch(1, (), "seven!!".to_owned());
        let (item, len) = pool.collect(0);
        assert_eq!((item.as_str(), len), ("four", 4));
        let (item, len) = pool.collect(1);
        assert_eq!((item.as_str(), len), ("seven!!", 7));
    }

    #[test]
    fn a_slot_queues_back_to_back_dispatches_in_order() {
        let mut pool: WorkerPool<u64, u64, u64> = WorkerPool::new(1, |ctx, item| *item * 10 + ctx);
        pool.dispatch(0, 1, 1);
        pool.dispatch(0, 2, 2);
        assert_eq!(pool.collect(0).1, 11);
        assert_eq!(pool.collect(0).1, 22);
    }

    #[test]
    fn dropping_the_pool_joins_the_workers() {
        let mut pool: WorkerPool<u64, u32, u32> = WorkerPool::new(2, |_, item| *item);
        pool.dispatch(0, 0, 7);
        let (item, _) = pool.collect(0);
        assert_eq!(item, 7);
        drop(pool); // must not hang
    }
}
