//! Run results and the multiprogrammed performance metrics the paper
//! reports: weighted speedup, harmonic speedup, maximum slowdown and DRAM
//! energy (Section 7, "Performance and DRAM Energy Metrics").

use bh_types::Cycle;
use dram_sim::DramStats;
use energy::EnergyBreakdown;
use memctrl::CtrlStats;
use mitigations::DefenseStats;
use serde::{Deserialize, Serialize};

/// Per-thread outcome of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadResult {
    /// Hardware-thread index.
    pub thread: usize,
    /// Workload name.
    pub name: String,
    /// Whether the thread is a RowHammer attacker (excluded from the
    /// benign-performance metrics, as in the paper).
    pub is_attacker: bool,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles until the thread finished (or the run ended).
    pub cycles: Cycle,
    /// Instructions per cycle.
    pub ipc: f64,
    /// The thread's largest RowHammer likelihood index across banks, as
    /// reported by the defense (zero for defenses that do not compute it).
    pub max_rhli: f64,
    /// Memory requests the thread issued.
    pub memory_requests: u64,
}

/// Idle-skip accounting of a run's advance loop (how event-driven
/// stepping earned its speedup).
///
/// These counters depend on the advance mode — lockstep simulates every
/// cycle, event-driven skips provably no-op ones — so equivalence
/// comparisons must ignore them, and the campaign's summary CSV/JSON
/// never include them (they are reported through a separate stepping
/// report instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteppingStats {
    /// Cycles actually ticked (advance-loop iterations).
    pub cycles_simulated: u64,
    /// Cycles skipped by event jumps (`total_cycles` minus ticked ones).
    pub cycles_skipped: u64,
    /// Ticks that delivered at least one memory completion or ready LLC
    /// hit to a core.
    pub events_processed: u64,
    /// Largest single jump of the simulated clock, in cycles.
    pub largest_jump: u64,
}

impl SteppingStats {
    /// Fraction of the run's cycles that were skipped (0 under lockstep).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.cycles_simulated + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }
}

/// End-of-run statistics of one memory-channel shard (its controller,
/// DRAM device and defense instance).
///
/// `RunResult::dram` / `ctrl` / `defense_stats` are the merged,
/// system-wide views; the per-channel entries let experiments check shard
/// balance and per-channel defense behaviour. Activation logs are moved
/// into the merged [`RunResult::dram`] during aggregation, so the
/// per-channel `dram.activation_log` is always `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Channel index.
    pub channel: usize,
    /// Name of the defense instance protecting this channel.
    pub defense: String,
    /// DRAM command and state statistics of this channel (ranks indexed
    /// channel-locally).
    pub dram: DramStats,
    /// Controller statistics of this channel.
    pub ctrl: CtrlStats,
    /// Defense counters of this channel's instance.
    pub defense_stats: DefenseStats,
}

/// Complete outcome of one simulation run.
///
/// Equality is field-for-field (hash-map-backed statistics compare
/// order-independently), which is what the advance-mode and stepping-mode
/// equivalence tests pin bit-identity with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Defense name.
    pub defense: String,
    /// RowHammer threshold the defense was configured for (scaled).
    pub n_rh: u64,
    /// Time-scaling factor of the run.
    pub time_scale: u64,
    /// Total simulated cycles.
    pub total_cycles: Cycle,
    /// Per-thread results.
    pub threads: Vec<ThreadResult>,
    /// DRAM command and state statistics, merged across channels.
    pub dram: DramStats,
    /// Memory controller statistics, merged across channels.
    pub ctrl: CtrlStats,
    /// Per-channel shard statistics, in channel order.
    pub per_channel: Vec<ChannelStats>,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// DRAM energy breakdown.
    pub energy: EnergyBreakdown,
    /// Defense statistics.
    pub defense_stats: DefenseStats,
    /// Idle-skip accounting of the advance loop. The only field that
    /// differs between advance modes; every other field is bit-identical.
    pub stepping: SteppingStats,
}

impl RunResult {
    /// The benign (non-attacker) threads of the run.
    pub fn benign_threads(&self) -> impl Iterator<Item = &ThreadResult> {
        self.threads.iter().filter(|t| !t.is_attacker)
    }

    /// The attacker thread, if the run had one.
    pub fn attacker(&self) -> Option<&ThreadResult> {
        self.threads.iter().find(|t| t.is_attacker)
    }

    /// Total DRAM energy in joules.
    pub fn dram_energy_joules(&self) -> f64 {
        self.energy.total_joules()
    }

    /// IPC of a specific thread.
    pub fn ipc_of(&self, thread: usize) -> f64 {
        self.threads[thread].ipc
    }
}

/// The multiprogrammed metrics of Section 7, computed for the benign
/// threads of a run against their stand-alone IPCs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiProgramMetrics {
    /// Weighted speedup: `Σ IPC_shared / IPC_alone` (system throughput).
    pub weighted_speedup: f64,
    /// Harmonic speedup: `N / Σ (IPC_alone / IPC_shared)` (job turnaround).
    pub harmonic_speedup: f64,
    /// Maximum slowdown: `max(IPC_alone / IPC_shared)` (fairness).
    pub max_slowdown: f64,
    /// Total DRAM energy of the run in joules.
    pub dram_energy_joules: f64,
}

impl MultiProgramMetrics {
    /// Computes the metrics for `shared`, given each benign thread's
    /// stand-alone IPC (`alone_ipc[i]` corresponds to the i-th *benign*
    /// thread of the run, in order).
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` does not have one entry per benign thread or
    /// any stand-alone IPC is non-positive.
    pub fn compute(shared: &RunResult, alone_ipc: &[f64]) -> Self {
        let benign: Vec<&ThreadResult> = shared.benign_threads().collect();
        assert_eq!(
            benign.len(),
            alone_ipc.len(),
            "need one stand-alone IPC per benign thread"
        );
        assert!(
            alone_ipc.iter().all(|&ipc| ipc > 0.0),
            "stand-alone IPCs must be positive"
        );
        let mut weighted = 0.0;
        let mut inverse_sum = 0.0;
        let mut max_slowdown: f64 = 0.0;
        for (thread, &alone) in benign.iter().zip(alone_ipc) {
            let shared_ipc = thread.ipc.max(1e-12);
            weighted += shared_ipc / alone;
            inverse_sum += alone / shared_ipc;
            max_slowdown = max_slowdown.max(alone / shared_ipc);
        }
        Self {
            weighted_speedup: weighted,
            harmonic_speedup: benign.len() as f64 / inverse_sum,
            max_slowdown,
            dram_energy_joules: shared.dram_energy_joules(),
        }
    }

    /// This set of metrics normalized to a baseline run's metrics (the
    /// y-axes of Figures 5 and 6 are all normalized to the no-mitigation
    /// baseline).
    pub fn normalized_to(&self, baseline: &MultiProgramMetrics) -> MultiProgramMetrics {
        MultiProgramMetrics {
            weighted_speedup: self.weighted_speedup / baseline.weighted_speedup,
            harmonic_speedup: self.harmonic_speedup / baseline.harmonic_speedup,
            max_slowdown: self.max_slowdown / baseline.max_slowdown,
            dram_energy_joules: self.dram_energy_joules / baseline.dram_energy_joules,
        }
    }
}

/// Averages a set of metric values (used to aggregate across workload
/// mixes, as the paper averages across its 125 mixes).
pub fn average_metrics(values: &[MultiProgramMetrics]) -> MultiProgramMetrics {
    assert!(!values.is_empty(), "cannot average zero runs");
    let n = values.len() as f64;
    MultiProgramMetrics {
        weighted_speedup: values.iter().map(|m| m.weighted_speedup).sum::<f64>() / n,
        harmonic_speedup: values.iter().map(|m| m.harmonic_speedup).sum::<f64>() / n,
        max_slowdown: values.iter().map(|m| m.max_slowdown).sum::<f64>() / n,
        dram_energy_joules: values.iter().map(|m| m.dram_energy_joules).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(name: &str, ipc: f64, attacker: bool) -> ThreadResult {
        ThreadResult {
            thread: 0,
            name: name.to_owned(),
            is_attacker: attacker,
            instructions: 1000,
            cycles: 1000,
            ipc,
            max_rhli: 0.0,
            memory_requests: 10,
        }
    }

    fn run_with(threads: Vec<ThreadResult>) -> RunResult {
        RunResult {
            defense: "test".into(),
            n_rh: 1024,
            time_scale: 1,
            total_cycles: 1000,
            threads,
            dram: DramStats::new(1),
            ctrl: CtrlStats::default(),
            per_channel: Vec::new(),
            llc_hits: 0,
            llc_misses: 0,
            energy: EnergyBreakdown {
                background: 2.0,
                ..EnergyBreakdown::default()
            },
            defense_stats: DefenseStats::default(),
            stepping: SteppingStats::default(),
        }
    }

    #[test]
    fn metrics_match_hand_computed_values() {
        let shared = run_with(vec![thread("a", 0.5, false), thread("b", 1.0, false)]);
        let metrics = MultiProgramMetrics::compute(&shared, &[1.0, 2.0]);
        // weighted = 0.5/1 + 1/2 = 1.0; harmonic = 2 / (1/0.5 + 2/1) = 0.5;
        // max slowdown = max(2, 2) = 2.
        assert!((metrics.weighted_speedup - 1.0).abs() < 1e-9);
        assert!((metrics.harmonic_speedup - 0.5).abs() < 1e-9);
        assert!((metrics.max_slowdown - 2.0).abs() < 1e-9);
        assert!((metrics.dram_energy_joules - 2.0).abs() < 1e-9);
    }

    #[test]
    fn attacker_threads_are_excluded() {
        let shared = run_with(vec![
            thread("attacker", 3.0, true),
            thread("benign", 0.5, false),
        ]);
        let metrics = MultiProgramMetrics::compute(&shared, &[1.0]);
        assert!((metrics.weighted_speedup - 0.5).abs() < 1e-9);
        assert_eq!(shared.benign_threads().count(), 1);
        assert!(shared.attacker().is_some());
    }

    #[test]
    fn normalization_divides_componentwise() {
        let a = MultiProgramMetrics {
            weighted_speedup: 2.0,
            harmonic_speedup: 1.0,
            max_slowdown: 4.0,
            dram_energy_joules: 10.0,
        };
        let b = MultiProgramMetrics {
            weighted_speedup: 4.0,
            harmonic_speedup: 2.0,
            max_slowdown: 2.0,
            dram_energy_joules: 5.0,
        };
        let n = a.normalized_to(&b);
        assert!((n.weighted_speedup - 0.5).abs() < 1e-9);
        assert!((n.harmonic_speedup - 0.5).abs() < 1e-9);
        assert!((n.max_slowdown - 2.0).abs() < 1e-9);
        assert!((n.dram_energy_joules - 2.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_is_arithmetic_per_component() {
        let a = MultiProgramMetrics {
            weighted_speedup: 1.0,
            harmonic_speedup: 1.0,
            max_slowdown: 1.0,
            dram_energy_joules: 1.0,
        };
        let b = MultiProgramMetrics {
            weighted_speedup: 3.0,
            harmonic_speedup: 2.0,
            max_slowdown: 5.0,
            dram_energy_joules: 3.0,
        };
        let avg = average_metrics(&[a, b]);
        assert!((avg.weighted_speedup - 2.0).abs() < 1e-9);
        assert!((avg.max_slowdown - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one stand-alone IPC")]
    fn mismatched_alone_ipcs_panic() {
        let shared = run_with(vec![thread("a", 0.5, false)]);
        let _ = MultiProgramMetrics::compute(&shared, &[1.0, 1.0]);
    }
}
