//! Plain-text table rendering for experiment results.
//!
//! The bench harness binaries print these tables; they mirror the rows and
//! series of the paper's figures so the reproduction can be compared
//! side-by-side with the published plots (see EXPERIMENTS.md).

use crate::experiments::{FalsePositiveStudy, Figure4Row, MultiProgramRow, RhliStudy, Table8Row};

/// Renders the Figure 4 rows (normalized execution time and DRAM energy per
/// defense and workload category).
pub fn render_figure4(rows: &[Figure4Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<4} {:>18} {:>18}\n",
        "Defense", "Cat", "Norm. exec. time", "Norm. DRAM energy"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:<4} {:>18.4} {:>18.4}\n",
            row.defense, row.category, row.normalized_execution_time, row.normalized_dram_energy
        ));
    }
    out
}

/// Renders Figure 5 / Figure 6 rows (normalized multiprogrammed metrics).
pub fn render_multiprogram(rows: &[MultiProgramRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
        "Defense", "Scenario", "N_RH", "Weighted", "Harmonic", "MaxSlowdown", "DRAM energy"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:<10} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4}\n",
            row.defense,
            row.scenario,
            row.n_rh,
            row.normalized.weighted_speedup,
            row.normalized.harmonic_speedup,
            row.normalized.max_slowdown,
            row.normalized.dram_energy_joules
        ));
    }
    out
}

/// Renders the RHLI study (Section 3.2.1).
pub fn render_rhli(study: &RhliStudy) -> String {
    format!(
        "RHLI study (Section 3.2.1)\n\
         observe-only attacker RHLI : {:.3}\n\
         observe-only benign RHLI   : {:.3}\n\
         full-functional attacker   : {:.3}\n\
         reduction factor           : {:.1}x\n",
        study.observe_attacker_rhli,
        study.observe_benign_rhli,
        study.full_attacker_rhli,
        study.reduction_factor
    )
}

/// Renders the false-positive study (Section 8.4).
pub fn render_false_positives(study: &FalsePositiveStudy) -> String {
    format!(
        "False-positive study (Section 8.4)\n\
         false positive rate : {:.5}%\n\
         delay P50           : {:.2} us\n\
         delay P90           : {:.2} us\n\
         delay P100          : {:.2} us\n\
         theoretical tDelay  : {:.2} us\n",
        study.false_positive_rate * 100.0,
        study.delay_p50_us,
        study.delay_p90_us,
        study.delay_p100_us,
        study.t_delay_us
    )
}

/// Renders the Table 8 reproduction (paper vs measured MPKI / RBCPKI).
pub fn render_table8(rows: &[Table8Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<4} {:>12} {:>12} {:>14} {:>14}\n",
        "Workload", "Cat", "paper MPKI", "paper RBC", "measured MPKI", "measured RBC"
    ));
    for row in rows {
        let paper_mpki = row
            .paper_mpki
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        out.push_str(&format!(
            "{:<24} {:<4} {:>12} {:>12.1} {:>14.2} {:>14.2}\n",
            row.name,
            row.category,
            paper_mpki,
            row.paper_rbcpki,
            row.measured_mpki,
            row.measured_rbcpki
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MultiProgramMetrics;

    #[test]
    fn multiprogram_table_contains_all_rows() {
        let rows = vec![MultiProgramRow {
            defense: "BlockHammer".into(),
            scenario: "attack".into(),
            n_rh: 32_768,
            normalized: MultiProgramMetrics {
                weighted_speedup: 1.45,
                harmonic_speedup: 1.56,
                max_slowdown: 0.77,
                dram_energy_joules: 0.71,
            },
        }];
        let text = render_multiprogram(&rows);
        assert!(text.contains("BlockHammer"));
        assert!(text.contains("attack"));
        assert!(text.contains("1.45"));
    }

    #[test]
    fn table8_renders_missing_mpki_as_dash() {
        let rows = vec![Table8Row {
            name: "ycsb.B.like".into(),
            category: "M".into(),
            paper_mpki: None,
            paper_rbcpki: 1.1,
            measured_mpki: 4.9,
            measured_rbcpki: 1.3,
        }];
        let text = render_table8(&rows);
        assert!(text.contains('-'));
        assert!(text.contains("ycsb.B.like"));
    }

    #[test]
    fn study_renders_are_nonempty() {
        let rhli = RhliStudy {
            observe_attacker_rhli: 10.9,
            observe_benign_rhli: 0.0,
            full_attacker_rhli: 0.2,
            reduction_factor: 54.0,
        };
        assert!(render_rhli(&rhli).contains("54.0x"));
        let fp = FalsePositiveStudy {
            false_positive_rate: 0.0001,
            delay_p50_us: 1.7,
            delay_p90_us: 3.9,
            delay_p100_us: 7.6,
            t_delay_us: 7.7,
        };
        assert!(render_false_positives(&fp).contains("7.7"));
    }

    #[test]
    fn figure4_render_includes_categories() {
        let rows = vec![Figure4Row {
            defense: "PARA".into(),
            category: "H".into(),
            normalized_execution_time: 1.007,
            normalized_dram_energy: 1.049,
        }];
        let text = render_figure4(&rows);
        assert!(text.contains("PARA"));
        assert!(text.contains("1.0070"));
    }
}
