//! A pull-based worker pool: one shared injector queue, completions in
//! whatever order the work finishes.
//!
//! The slot-pinned [`WorkerPool`](super::WorkerPool) dispatches
//! round-robin to fixed slots and the caller collects in its own fixed
//! order, so one slow job head-of-line-blocks both its slot and the
//! collection loop. This pool inverts the flow: the owner pushes
//! `(sequence, item)` jobs into a shared queue, idle workers *pull* the
//! next job the moment they finish their previous one, and every
//! completion travels back over a single channel tagged with its
//! sequence number and the worker that ran it. No worker ever idles
//! while the queue is non-empty, and the owner reorders completions
//! however it likes (the campaign executor runs them through a reorder
//! buffer to restore run order bit-exactly).
//!
//! # Fault tolerance
//!
//! Workers never die: each job runs under `catch_unwind`, and a panic
//! comes back as [`Outcome::Panicked`] carrying the rendered payload
//! (the item moved into the attempt is dropped during the unwind, so
//! the owner must keep its own copy if it wants to retry — the campaign
//! executor does). This is the same isolation contract as the pinned
//! pool's `collect_recovered`, minus the respawn: the thread that
//! caught the panic simply pulls the next job.
//!
//! # Accounting
//!
//! Each worker keeps a [`WorkerTally`]: jobs completed, jobs *stolen*
//! (a job whose sequence number would have landed on a different slot
//! under round-robin pinning — the direct measure of how much work the
//! shared queue moved off a blocked slot), and busy wall-clock. The
//! tallies are shared atomics, so the owner can snapshot them any time
//! without stopping the pool.

use super::panic_message;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared work function (same shape as the pinned pool's, minus the
/// per-dispatch context: pulled jobs carry everything in the item).
type Work<T, R> = Arc<dyn Fn(&mut T) -> R + Send + Sync + 'static>;

/// How one pulled job ended.
pub enum Outcome<T, R> {
    /// The work function returned; the item comes back with the result.
    Done(T, R),
    /// The work function panicked. The item died in the unwind; the
    /// rendered panic payload is all that comes back.
    Panicked(String),
}

/// One finished job, tagged with the sequence number it was submitted
/// under and the worker that ran it.
pub struct Completion<T, R> {
    /// The caller-chosen sequence number from [`StealingPool::submit`].
    pub seq: u64,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// How the job ended.
    pub outcome: Outcome<T, R>,
}

/// Shared per-worker counters (atomics: written by the worker, read by
/// the owner at any time).
pub struct WorkerTally {
    jobs: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
}

/// A point-in-time copy of one worker's tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Jobs this worker completed (including panicked attempts).
    pub jobs: u64,
    /// Completed jobs whose sequence number was pinned to a *different*
    /// slot under round-robin dispatch — work the shared queue moved
    /// off a busy worker.
    pub steals: u64,
    /// Wall-clock spent inside the work function.
    pub busy: Duration,
}

impl WorkerTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self {
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// Records one completed job. `stolen` marks a job that round-robin
    /// pinning would have placed on another worker.
    pub fn record(&self, stolen: bool, busy: Duration) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (each counter individually exact).
    pub fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

impl Default for WorkerTally {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared injector: a FIFO of `(seq, item)` jobs plus the closed
/// flag, under one mutex with a condvar for idle workers.
struct Injector<T> {
    state: Mutex<InjectorState<T>>,
    ready: Condvar,
}

struct InjectorState<T> {
    jobs: VecDeque<(u64, T)>,
    closed: bool,
}

impl<T> Injector<T> {
    /// Blocks until a job is available (returning it) or the queue is
    /// closed and empty (returning `None`).
    fn pull(&self) -> Option<(u64, T)> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A pool of persistent workers pulling jobs from one shared queue.
///
/// `T` is the work item (moved to whichever worker pulls it, and back
/// on success), `R` the result. See the module docs for the contract.
pub struct StealingPool<T: Send + 'static, R: Send + 'static> {
    injector: Arc<Injector<T>>,
    result_rx: Receiver<Completion<T, R>>,
    tallies: Vec<Arc<WorkerTally>>,
    handles: Vec<JoinHandle<()>>,
    /// Jobs submitted whose completions have not been taken yet.
    outstanding: usize,
}

impl<T: Send + 'static, R: Send + 'static> StealingPool<T, R> {
    /// Spawns `workers` (≥ 1) threads, each pulling jobs and running
    /// `work` until the pool is dropped.
    pub fn new<F>(workers: usize, work: F) -> Self
    where
        F: Fn(&mut T) -> R + Send + Sync + 'static,
    {
        debug_assert!(workers >= 1, "a pool needs at least one worker");
        let work: Work<T, R> = Arc::new(work);
        let injector = Arc::new(Injector {
            state: Mutex::new(InjectorState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        });
        let (result_tx, result_rx) = channel::<Completion<T, R>>();
        let tallies: Vec<Arc<WorkerTally>> =
            (0..workers).map(|_| Arc::new(WorkerTally::new())).collect();
        let handles = (0..workers)
            .map(|id| {
                spawn_puller(
                    id,
                    workers,
                    Arc::clone(&injector),
                    Arc::clone(&work),
                    result_tx.clone(),
                    Arc::clone(&tallies[id]),
                )
            })
            .collect();
        Self {
            injector,
            result_rx,
            tallies,
            handles,
            outstanding: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Pushes a job onto the shared queue. `seq` is an arbitrary caller
    /// tag echoed back in the job's [`Completion`]; the campaign
    /// executor uses the run index.
    pub fn submit(&mut self, seq: u64, item: T) {
        self.outstanding += 1;
        let mut state = self
            .injector
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.jobs.push_back((seq, item));
        drop(state);
        self.injector.ready.notify_one();
    }

    /// Blocks for the next completion, in whatever order jobs finish.
    /// Returns `None` when no submitted job is outstanding — or, as a
    /// defensive backstop, if every worker vanished (they cannot: each
    /// job runs under `catch_unwind`).
    pub fn next_completion(&mut self) -> Option<Completion<T, R>> {
        if self.outstanding == 0 {
            return None;
        }
        match self.result_rx.recv() {
            Ok(done) => {
                self.outstanding -= 1;
                Some(done)
            }
            Err(_) => None,
        }
    }

    /// Snapshots every worker's tally, in worker-index order.
    pub fn tallies(&self) -> Vec<WorkerSnapshot> {
        self.tallies.iter().map(|tally| tally.snapshot()).collect()
    }
}

impl<T: Send + 'static, R: Send + 'static> Drop for StealingPool<T, R> {
    fn drop(&mut self) {
        // Discard jobs nobody started (an aborting owner must not wait
        // for the whole backlog), close, wake every idle worker, join.
        {
            let mut state = self
                .injector
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.jobs.clear();
            state.closed = true;
        }
        self.injector.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns one pulling worker thread.
fn spawn_puller<T: Send + 'static, R: Send + 'static>(
    id: usize,
    workers: usize,
    injector: Arc<Injector<T>>,
    work: Work<T, R>,
    result_tx: Sender<Completion<T, R>>,
    tally: Arc<WorkerTally>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("steal-worker-{id}"))
        .spawn(move || {
            while let Some((seq, item)) = injector.pull() {
                // lint: allow(determinism) -- worker busy-time accounting; never read by simulated state
                let started = Instant::now();
                // The unwind boundary keeps this thread alive across
                // panicking jobs; AssertUnwindSafe is sound because the
                // item is owned by the attempt (it is dropped on panic,
                // never observed again) and `work` is a shared Fn.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let mut item = item;
                    let result = work(&mut item);
                    (item, result)
                }));
                let outcome = match attempt {
                    Ok((item, result)) => Outcome::Done(item, result),
                    Err(payload) => Outcome::Panicked(panic_message(payload.as_ref())),
                };
                tally.record(seq as usize % workers != id, started.elapsed());
                if result_tx
                    .send(Completion {
                        seq,
                        worker: id,
                        outcome,
                    })
                    .is_err()
                {
                    return;
                }
            }
        })
        // lint: allow(panic-freedom) -- thread-spawn failure at pool construction is unrecoverable infrastructure loss
        .expect("failed to spawn stealing pool worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_cover_every_submitted_sequence() {
        let mut pool: StealingPool<u64, u64> = StealingPool::new(3, |item| *item * 2);
        for seq in 0..16u64 {
            pool.submit(seq, seq + 100);
        }
        let mut seen = [false; 16];
        while let Some(done) = pool.next_completion() {
            match done.outcome {
                Outcome::Done(item, result) => {
                    assert_eq!(item, done.seq + 100);
                    assert_eq!(result, (done.seq + 100) * 2);
                    assert!(!seen[done.seq as usize], "duplicate completion");
                    seen[done.seq as usize] = true;
                    assert!(done.worker < 3);
                }
                Outcome::Panicked(message) => panic!("unexpected panic: {message}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "every job completes exactly once");
    }

    #[test]
    fn next_completion_without_outstanding_jobs_returns_none() {
        let mut pool: StealingPool<u64, u64> = StealingPool::new(2, |item| *item);
        assert!(pool.next_completion().is_none());
        pool.submit(0, 9);
        assert!(pool.next_completion().is_some());
        assert!(pool.next_completion().is_none());
    }

    #[test]
    fn a_panicking_job_reports_and_the_worker_survives() {
        let mut pool: StealingPool<u32, u32> = StealingPool::new(1, |item| {
            assert!(*item != 13, "unlucky item");
            *item + 1
        });
        pool.submit(0, 13);
        pool.submit(1, 20);
        let mut panicked = 0;
        let mut done = 0;
        while let Some(completion) = pool.next_completion() {
            match completion.outcome {
                Outcome::Panicked(message) => {
                    assert!(message.contains("unlucky item"), "got: {message}");
                    assert_eq!(completion.seq, 0);
                    panicked += 1;
                }
                Outcome::Done(item, result) => {
                    assert_eq!((item, result), (20, 21));
                    assert_eq!(completion.seq, 1);
                    done += 1;
                }
            }
        }
        // The single worker caught the panic and still ran job 1.
        assert_eq!((panicked, done), (1, 1));
    }

    #[test]
    fn tallies_account_for_every_completed_job() {
        let mut pool: StealingPool<u64, u64> = StealingPool::new(2, |item| *item);
        for seq in 0..10u64 {
            pool.submit(seq, seq);
        }
        while pool.next_completion().is_some() {}
        let tallies = pool.tallies();
        assert_eq!(tallies.len(), 2);
        assert_eq!(tallies.iter().map(|t| t.jobs).sum::<u64>(), 10);
        assert!(tallies.iter().all(|t| t.steals <= t.jobs));
    }

    #[test]
    fn dropping_the_pool_discards_unstarted_jobs_without_hanging() {
        let mut pool: StealingPool<u64, u64> = StealingPool::new(1, |item| {
            std::thread::sleep(Duration::from_millis(1));
            *item
        });
        for seq in 0..64u64 {
            pool.submit(seq, seq);
        }
        // Take one completion, then drop: the backlog must be discarded,
        // not drained (a multi-second hang would trip the test timeout).
        assert!(pool.next_completion().is_some());
        drop(pool);
    }
}
