//! Instruction-trace records consumed by the trace-driven core model.

use serde::{Deserialize, Serialize};

/// One record of a core's instruction trace: a run of non-memory
/// instructions followed by a single memory access.
///
/// This is the same shape as Ramulator's CPU trace format
/// (`<non-memory-instruction-count> <address>`), extended with a
/// write flag and a cache-bypass flag (used by non-temporal copy, I/O-like
/// and RowHammer-attack workloads that access memory directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Number of non-memory instructions preceding the memory access.
    pub non_memory_instructions: u32,
    /// Physical byte address of the memory access.
    pub address: u64,
    /// Whether the access is a store (true) or a load (false).
    pub is_write: bool,
    /// Whether the access bypasses the cache hierarchy and goes straight to
    /// main memory.
    pub bypass_cache: bool,
}

impl TraceRecord {
    /// A cacheable load after `non_memory_instructions` non-memory
    /// instructions.
    pub fn load(non_memory_instructions: u32, address: u64) -> Self {
        Self {
            non_memory_instructions,
            address,
            is_write: false,
            bypass_cache: false,
        }
    }

    /// A cacheable store after `non_memory_instructions` non-memory
    /// instructions.
    pub fn store(non_memory_instructions: u32, address: u64) -> Self {
        Self {
            non_memory_instructions,
            address,
            is_write: true,
            bypass_cache: false,
        }
    }

    /// A cache-bypassing (non-temporal / uncached) load.
    pub fn uncached_load(non_memory_instructions: u32, address: u64) -> Self {
        Self {
            non_memory_instructions,
            address,
            is_write: false,
            bypass_cache: true,
        }
    }

    /// A cache-bypassing (non-temporal / uncached) store.
    pub fn uncached_store(non_memory_instructions: u32, address: u64) -> Self {
        Self {
            non_memory_instructions,
            address,
            is_write: true,
            bypass_cache: true,
        }
    }

    /// Total instructions this record represents (the non-memory run plus
    /// the memory access itself).
    pub fn instructions(&self) -> u64 {
        self.non_memory_instructions as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        assert!(!TraceRecord::load(3, 0x40).is_write);
        assert!(TraceRecord::store(3, 0x40).is_write);
        assert!(TraceRecord::uncached_load(0, 0x40).bypass_cache);
        assert!(TraceRecord::uncached_store(0, 0x40).bypass_cache);
        assert!(TraceRecord::uncached_store(0, 0x40).is_write);
    }

    #[test]
    fn instruction_count_includes_the_access() {
        assert_eq!(TraceRecord::load(0, 0).instructions(), 1);
        assert_eq!(TraceRecord::load(9, 0).instructions(), 10);
    }
}
