//! Decoded DRAM addresses and physical-address-to-DRAM mapping schemes.
//!
//! The memory controller translates a flat physical byte address into a
//! `(channel, rank, bank group, bank, row, column)` tuple. Two mapping
//! schemes are provided:
//!
//! * [`AddressMapping::RoBaRaCoCh`] — the classic row:bank:rank:column:channel
//!   interleaving.
//! * [`AddressMapping::Mop`] — the "minimalist open page" (MOP) scheme used
//!   by the paper's simulated system (Table 5), which interleaves a small
//!   block of consecutive cache lines in the same row across banks.

use crate::ids::{BankGroupId, BankId, ChannelId, RankId, RowId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully decoded DRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DramAddress {
    channel: usize,
    rank: usize,
    bank_group: usize,
    bank: usize,
    row: u64,
    column: u64,
}

impl DramAddress {
    /// Creates a decoded DRAM address from its components.
    pub const fn new(
        channel: usize,
        rank: usize,
        bank_group: usize,
        bank: usize,
        row: u64,
        column: u64,
    ) -> Self {
        Self {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// The memory channel this address maps to.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The rank within the channel.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The bank group within the rank.
    pub fn bank_group(&self) -> usize {
        self.bank_group
    }

    /// The bank within the bank group.
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// The memory-controller-visible row index within the bank.
    pub fn row(&self) -> u64 {
        self.row
    }

    /// Typed row identifier.
    pub fn row_id(&self) -> RowId {
        RowId::new(self.row)
    }

    /// The column (cache-line granular) within the row.
    pub fn column(&self) -> u64 {
        self.column
    }

    /// Typed channel identifier.
    pub fn channel_id(&self) -> ChannelId {
        ChannelId::new(self.channel)
    }

    /// Typed rank identifier.
    pub fn rank_id(&self) -> RankId {
        RankId::new(self.rank)
    }

    /// Typed bank-group identifier.
    pub fn bank_group_id(&self) -> BankGroupId {
        BankGroupId::new(self.bank_group)
    }

    /// Typed bank identifier (within its bank group).
    pub fn bank_id(&self) -> BankId {
        BankId::new(self.bank)
    }

    /// Flat bank index within a rank: `bank_group * banks_per_group + bank`.
    pub fn bank_in_rank(&self, banks_per_group: usize) -> usize {
        self.bank_group * banks_per_group + self.bank
    }

    /// Flat bank index across the whole system, used to index per-bank
    /// defense state.
    ///
    /// Layout: `((channel * ranks + rank) * bank_groups + bank_group) *
    /// banks_per_group + bank`.
    pub fn global_bank_index(
        &self,
        ranks_per_channel: usize,
        bank_groups_per_rank: usize,
        banks_per_group: usize,
    ) -> usize {
        ((self.channel * ranks_per_channel + self.rank) * bank_groups_per_rank + self.bank_group)
            * banks_per_group
            + self.bank
    }

    /// A key that uniquely identifies this row within its rank, used by
    /// defenses that track rows per rank (e.g. RowBlocker-HB).
    pub fn row_in_rank_key(&self, banks_per_group: usize, rows_per_bank: u64) -> u64 {
        self.bank_in_rank(banks_per_group) as u64 * rows_per_bank + self.row
    }

    /// Returns a copy of this address with a different row, keeping every
    /// other coordinate. Used to address physically nearby (victim) rows.
    pub fn with_row(&self, row: u64) -> Self {
        Self { row, ..*self }
    }

    /// Returns the neighbouring row at signed distance `offset`, clamped to
    /// `[0, rows_per_bank)`. Returns `None` if the neighbour falls outside
    /// the bank.
    pub fn neighbor_row(&self, offset: i64, rows_per_bank: u64) -> Option<Self> {
        let target = self.row as i64 + offset;
        if target < 0 || target as u64 >= rows_per_bank {
            None
        } else {
            Some(self.with_row(target as u64))
        }
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/ra{}/bg{}/ba{}/row{:#x}/col{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.column
        )
    }
}

/// Geometry needed to decode a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMappingGeometry {
    /// Number of channels in the system.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: u64,
    /// Columns (cache lines) per row.
    pub columns: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
}

impl Default for AddressMappingGeometry {
    /// The paper's simulated system (Table 5): 1 channel, 1 rank, 4 bank
    /// groups x 4 banks, 64K rows per bank, 8 KiB rows (128 x 64 B lines).
    fn default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 65_536,
            columns: 128,
            line_bytes: 64,
        }
    }
}

impl AddressMappingGeometry {
    /// Total number of banks in the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Banks within one channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Total addressable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows * self.columns * self.line_bytes
    }

    /// The geometry of a single channel of this system: identical in every
    /// dimension except `channels`, which becomes 1. This is the geometry a
    /// channel-sharded memory controller decodes channel-local addresses
    /// against.
    pub fn per_channel(&self) -> Self {
        Self {
            channels: 1,
            ..*self
        }
    }
}

/// Physical-address-to-DRAM-coordinate mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Row : Rank : BankGroup : Bank : Column : Channel (row bits on top).
    RoBaRaCoCh,
    /// Minimalist Open Page (MOP): interleaves `mop_lines` consecutive cache
    /// lines within a row, then rotates across banks, maximising bank-level
    /// parallelism while preserving short bursts of row locality.
    Mop {
        /// Number of consecutive cache lines kept in the same row before
        /// switching banks (the "MOP width").
        mop_lines: u64,
    },
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::Mop { mop_lines: 4 }
    }
}

impl AddressMapping {
    /// The channel a physical byte address routes to.
    ///
    /// Both mapping schemes interleave channels on the lowest line-index
    /// bits, so the channel can be extracted without a full decode. This is
    /// what a channel-sharded memory subsystem uses to pick the shard; it
    /// always agrees with [`AddressMapping::decode`]'s `channel()`.
    pub fn channel_of(&self, geometry: &AddressMappingGeometry, phys_addr: u64) -> usize {
        self.to_channel_local(geometry, phys_addr).0
    }

    /// Splits a physical byte address into its channel and the
    /// channel-local physical address.
    ///
    /// The local address, decoded against [`AddressMappingGeometry::per_channel`],
    /// yields the same rank / bank group / bank / row / column coordinates
    /// as a full-system decode of `phys_addr` (with `channel` = 0). With a
    /// single channel the local address equals the original address, so the
    /// sharded path is bit-for-bit identical to the unsharded one.
    pub fn to_channel_local(
        &self,
        geometry: &AddressMappingGeometry,
        phys_addr: u64,
    ) -> (usize, u64) {
        let total_lines = (geometry.capacity_bytes() / geometry.line_bytes).max(1);
        let line = (phys_addr / geometry.line_bytes) % total_lines;
        let channel = (line % geometry.channels as u64) as usize;
        let local_line = line / geometry.channels as u64;
        let local_phys = local_line * geometry.line_bytes + phys_addr % geometry.line_bytes;
        (channel, local_phys)
    }

    /// Decodes a physical byte address into DRAM coordinates.
    ///
    /// Addresses beyond the geometry's capacity wrap around; the simulator
    /// synthesises addresses inside the capacity so wrapping only guards
    /// against malformed traces.
    pub fn decode(&self, geometry: &AddressMappingGeometry, phys_addr: u64) -> DramAddress {
        let line = (phys_addr / geometry.line_bytes)
            % (geometry.capacity_bytes() / geometry.line_bytes).max(1);
        match *self {
            AddressMapping::RoBaRaCoCh => {
                let mut x = line;
                let channel = (x % geometry.channels as u64) as usize;
                x /= geometry.channels as u64;
                let column = x % geometry.columns;
                x /= geometry.columns;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let row = x % geometry.rows;
                DramAddress::new(channel, rank, bank_group, bank, row, column)
            }
            AddressMapping::Mop { mop_lines } => {
                let mop = mop_lines.max(1);
                let mut x = line;
                let channel = (x % geometry.channels as u64) as usize;
                x /= geometry.channels as u64;
                let col_lo = x % mop;
                x /= mop;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let col_hi = x % (geometry.columns / mop).max(1);
                x /= (geometry.columns / mop).max(1);
                let row = x % geometry.rows;
                let column = col_hi * mop + col_lo;
                DramAddress::new(channel, rank, bank_group, bank, row, column)
            }
        }
    }

    /// Encodes DRAM coordinates back into a physical byte address.
    ///
    /// `encode` is the inverse of [`AddressMapping::decode`] for addresses
    /// within the geometry's capacity, which property-based tests verify.
    pub fn encode(&self, geometry: &AddressMappingGeometry, addr: &DramAddress) -> u64 {
        let line = match *self {
            AddressMapping::RoBaRaCoCh => {
                let mut x = addr.row();
                x = x * geometry.ranks as u64 + addr.rank() as u64;
                x = x * geometry.bank_groups as u64 + addr.bank_group() as u64;
                x = x * geometry.banks_per_group as u64 + addr.bank() as u64;
                x = x * geometry.columns + addr.column();
                x * geometry.channels as u64 + addr.channel() as u64
            }
            AddressMapping::Mop { mop_lines } => {
                let mop = mop_lines.max(1);
                let col_hi = addr.column() / mop;
                let col_lo = addr.column() % mop;
                let mut x = addr.row();
                x = x * (geometry.columns / mop).max(1) + col_hi;
                x = x * geometry.ranks as u64 + addr.rank() as u64;
                x = x * geometry.bank_groups as u64 + addr.bank_group() as u64;
                x = x * geometry.banks_per_group as u64 + addr.bank() as u64;
                x = x * mop + col_lo;
                x * geometry.channels as u64 + addr.channel() as u64
            }
        };
        line * geometry.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom() -> AddressMappingGeometry {
        AddressMappingGeometry::default()
    }

    #[test]
    fn default_geometry_matches_table5() {
        let g = geom();
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.rows, 65_536);
        // 16 banks * 64K rows * 8 KiB per row = 8 GiB.
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn mop_keeps_consecutive_lines_in_same_row() {
        let m = AddressMapping::Mop { mop_lines: 4 };
        let g = geom();
        let base = 0x1000_0000u64;
        let a0 = m.decode(&g, base);
        let a1 = m.decode(&g, base + 64);
        let a2 = m.decode(&g, base + 3 * 64);
        let a3 = m.decode(&g, base + 4 * 64);
        assert_eq!(a0.row(), a1.row());
        assert_eq!(
            a0.bank_in_rank(g.banks_per_group),
            a1.bank_in_rank(g.banks_per_group)
        );
        assert_eq!(a0.row(), a2.row());
        // After the MOP width the bank changes but the row index stays, so
        // bank-level parallelism is exposed.
        assert_ne!(
            a0.bank_in_rank(g.banks_per_group),
            a3.bank_in_rank(g.banks_per_group)
        );
    }

    #[test]
    fn robaracoch_spreads_lines_across_columns_first() {
        let m = AddressMapping::RoBaRaCoCh;
        let g = geom();
        let a0 = m.decode(&g, 0);
        let a1 = m.decode(&g, 64);
        assert_eq!(a0.row(), a1.row());
        assert_eq!(a0.bank(), a1.bank());
        assert_eq!(a1.column(), a0.column() + 1);
    }

    #[test]
    fn neighbor_row_respects_bank_bounds() {
        let a = DramAddress::new(0, 0, 0, 0, 0, 0);
        assert!(a.neighbor_row(-1, 65_536).is_none());
        assert_eq!(a.neighbor_row(1, 65_536).unwrap().row(), 1);
        let top = DramAddress::new(0, 0, 0, 0, 65_535, 0);
        assert!(top.neighbor_row(1, 65_536).is_none());
        assert_eq!(top.neighbor_row(-2, 65_536).unwrap().row(), 65_533);
    }

    #[test]
    fn global_bank_index_is_dense_and_unique() {
        let g = geom();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels {
            for ra in 0..g.ranks {
                for bg in 0..g.bank_groups {
                    for ba in 0..g.banks_per_group {
                        let a = DramAddress::new(ch, ra, bg, ba, 0, 0);
                        let idx = a.global_bank_index(g.ranks, g.bank_groups, g.banks_per_group);
                        assert!(idx < g.total_banks());
                        assert!(seen.insert(idx), "duplicate bank index {idx}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), g.total_banks());
    }

    #[test]
    fn channel_of_agrees_with_decode_for_multi_channel_geometries() {
        for channels in [1usize, 2, 4] {
            let g = AddressMappingGeometry { channels, ..geom() };
            for m in [
                AddressMapping::Mop { mop_lines: 4 },
                AddressMapping::RoBaRaCoCh,
            ] {
                for line in 0..4096u64 {
                    let phys = line * 64;
                    assert_eq!(m.channel_of(&g, phys), m.decode(&g, phys).channel());
                }
            }
        }
    }

    #[test]
    fn channel_local_decode_matches_full_decode() {
        for channels in [1usize, 2, 4] {
            let g = AddressMappingGeometry { channels, ..geom() };
            let local_geom = g.per_channel();
            assert_eq!(local_geom.channels, 1);
            assert_eq!(local_geom.banks_per_channel(), g.banks_per_channel());
            for m in [
                AddressMapping::Mop { mop_lines: 4 },
                AddressMapping::RoBaRaCoCh,
            ] {
                for line in 0..4096u64 {
                    let phys = line * 64 + 8;
                    let full = m.decode(&g, phys);
                    let (channel, local_phys) = m.to_channel_local(&g, phys);
                    assert_eq!(channel, full.channel());
                    let local = m.decode(&local_geom, local_phys);
                    assert_eq!(local.channel(), 0);
                    assert_eq!(local.rank(), full.rank());
                    assert_eq!(local.bank_group(), full.bank_group());
                    assert_eq!(local.bank(), full.bank());
                    assert_eq!(local.row(), full.row());
                    assert_eq!(local.column(), full.column());
                }
            }
        }
    }

    #[test]
    fn single_channel_local_address_is_the_identity() {
        let g = geom();
        let m = AddressMapping::default();
        for phys in [0u64, 64, 0x1000_0040, 0x7fff_ffc0] {
            assert_eq!(m.to_channel_local(&g, phys), (0, phys));
        }
    }

    proptest! {
        #[test]
        fn decode_encode_round_trips_mop(line in 0u64..(8u64 << 30) / 64) {
            let g = geom();
            let m = AddressMapping::Mop { mop_lines: 4 };
            let phys = line * 64;
            let decoded = m.decode(&g, phys);
            prop_assert_eq!(m.encode(&g, &decoded), phys);
        }

        #[test]
        fn decode_encode_round_trips_robaracoch(line in 0u64..(8u64 << 30) / 64) {
            let g = geom();
            let m = AddressMapping::RoBaRaCoCh;
            let phys = line * 64;
            let decoded = m.decode(&g, phys);
            prop_assert_eq!(m.encode(&g, &decoded), phys);
        }

        #[test]
        fn decoded_coordinates_are_in_range(addr in 0u64..(8u64 << 30)) {
            let g = geom();
            for m in [AddressMapping::Mop { mop_lines: 4 }, AddressMapping::RoBaRaCoCh] {
                let d = m.decode(&g, addr);
                prop_assert!(d.channel() < g.channels);
                prop_assert!(d.rank() < g.ranks);
                prop_assert!(d.bank_group() < g.bank_groups);
                prop_assert!(d.bank() < g.banks_per_group);
                prop_assert!(d.row() < g.rows);
                prop_assert!(d.column() < g.columns);
            }
        }
    }
}
