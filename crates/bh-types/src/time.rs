//! Clock and time conversion helpers.
//!
//! The whole simulation runs on a single clock domain: the CPU clock
//! (3.2 GHz in the paper's configuration, Table 5). DRAM timing parameters
//! are specified in nanoseconds by the DDR4 standard and converted into CPU
//! cycles with [`TimeConverter`].

use serde::{Deserialize, Serialize};

/// A point in (or duration of) simulated time, measured in clock cycles of
/// the simulation clock domain.
pub type Cycle = u64;

/// A duration expressed in nanoseconds.
pub type Nanoseconds = f64;

/// A clock frequency expressed in cycles per second (Hz).
pub type CyclesPerSecond = f64;

/// Converts between wall-clock durations (nanoseconds) and simulation
/// cycles for a fixed clock frequency.
///
/// # Example
///
/// ```
/// use bh_types::TimeConverter;
///
/// let clk = TimeConverter::new(3.2e9); // 3.2 GHz CPU clock
/// assert_eq!(clk.ns_to_cycles(46.25), 148); // tRC of DDR4-2400
/// assert!((clk.cycles_to_ns(148) - 46.25).abs() < 0.1);
/// assert_eq!(clk.ms_to_cycles(64.0), 204_800_000); // a refresh window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeConverter {
    frequency_hz: CyclesPerSecond,
}

impl TimeConverter {
    /// Creates a converter for a clock running at `frequency_hz` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive and finite.
    pub fn new(frequency_hz: CyclesPerSecond) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "clock frequency must be positive and finite, got {frequency_hz}"
        );
        Self { frequency_hz }
    }

    /// The clock frequency in Hz.
    pub fn frequency_hz(&self) -> CyclesPerSecond {
        self.frequency_hz
    }

    /// Duration of one cycle in nanoseconds.
    pub fn cycle_time_ns(&self) -> Nanoseconds {
        1e9 / self.frequency_hz
    }

    /// Converts a duration in nanoseconds to cycles, rounding up so that a
    /// converted timing constraint is never shorter than the original.
    pub fn ns_to_cycles(&self, ns: Nanoseconds) -> Cycle {
        (ns * self.frequency_hz / 1e9).ceil() as Cycle
    }

    /// Converts a duration in microseconds to cycles (rounding up).
    pub fn us_to_cycles(&self, us: f64) -> Cycle {
        self.ns_to_cycles(us * 1e3)
    }

    /// Converts a duration in milliseconds to cycles (rounding up).
    pub fn ms_to_cycles(&self, ms: f64) -> Cycle {
        self.ns_to_cycles(ms * 1e6)
    }

    /// Converts a number of cycles back into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> Nanoseconds {
        cycles as f64 * 1e9 / self.frequency_hz
    }

    /// Converts a number of cycles into seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.frequency_hz
    }
}

impl Default for TimeConverter {
    /// A 3.2 GHz clock, the CPU frequency used throughout the paper
    /// (Table 5).
    fn default() -> Self {
        Self::new(3.2e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip_is_close() {
        let clk = TimeConverter::new(3.2e9);
        for ns in [0.0, 1.0, 7.5, 46.25, 350.0, 7700.0] {
            let cycles = clk.ns_to_cycles(ns);
            let back = clk.cycles_to_ns(cycles);
            assert!(back >= ns - 1e-9, "round trip shortened {ns} -> {back}");
            assert!(back - ns <= clk.cycle_time_ns() + 1e-9);
        }
    }

    #[test]
    fn conversion_rounds_up() {
        let clk = TimeConverter::new(1e9); // 1 ns per cycle
        assert_eq!(clk.ns_to_cycles(0.1), 1);
        assert_eq!(clk.ns_to_cycles(1.0), 1);
        assert_eq!(clk.ns_to_cycles(1.0001), 2);
    }

    #[test]
    fn refresh_window_at_cpu_clock() {
        let clk = TimeConverter::default();
        // 64 ms at 3.2 GHz.
        assert_eq!(clk.ms_to_cycles(64.0), 204_800_000);
    }

    #[test]
    fn us_and_ms_consistent_with_ns() {
        let clk = TimeConverter::new(2.4e9);
        assert_eq!(clk.us_to_cycles(1.0), clk.ns_to_cycles(1000.0));
        assert_eq!(clk.ms_to_cycles(1.0), clk.ns_to_cycles(1_000_000.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = TimeConverter::new(0.0);
    }
}
