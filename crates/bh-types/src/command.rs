//! DRAM bus commands issued by the memory controller.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A DRAM bus command.
///
/// The set matches what a DDR4 memory controller issues: row commands
/// (activate / precharge), column commands (read / write, with or without
/// auto-precharge) and refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemCommand {
    /// Open (activate) a row: latches the row into the bank's row buffer.
    Activate,
    /// Close (precharge) the currently open row of a bank.
    Precharge,
    /// Precharge every bank of a rank (used before refresh).
    PrechargeAll,
    /// Read a column from the open row.
    Read,
    /// Read a column and auto-precharge the bank afterwards.
    ReadAp,
    /// Write a column of the open row.
    Write,
    /// Write a column and auto-precharge the bank afterwards.
    WriteAp,
    /// All-bank auto refresh.
    Refresh,
}

/// Broad classification of commands used by timing bookkeeping and the
/// energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandClass {
    /// Row activation.
    Activate,
    /// Row precharge (single bank or all banks).
    Precharge,
    /// Column read.
    Read,
    /// Column write.
    Write,
    /// Refresh.
    Refresh,
}

impl MemCommand {
    /// The broad class this command belongs to.
    pub fn class(&self) -> CommandClass {
        match self {
            MemCommand::Activate => CommandClass::Activate,
            MemCommand::Precharge | MemCommand::PrechargeAll => CommandClass::Precharge,
            MemCommand::Read | MemCommand::ReadAp => CommandClass::Read,
            MemCommand::Write | MemCommand::WriteAp => CommandClass::Write,
            MemCommand::Refresh => CommandClass::Refresh,
        }
    }

    /// Whether this command opens or closes a row (activate / precharge).
    pub fn is_row_command(&self) -> bool {
        matches!(
            self.class(),
            CommandClass::Activate | CommandClass::Precharge
        )
    }

    /// Whether this command transfers data on the bus (read / write).
    pub fn is_column_command(&self) -> bool {
        matches!(self.class(), CommandClass::Read | CommandClass::Write)
    }

    /// Whether this command auto-precharges its bank when it completes.
    pub fn auto_precharges(&self) -> bool {
        matches!(self, MemCommand::ReadAp | MemCommand::WriteAp)
    }

    /// Whether this is a read-direction column command.
    pub fn is_read(&self) -> bool {
        matches!(self.class(), CommandClass::Read)
    }

    /// Whether this is a write-direction column command.
    pub fn is_write(&self) -> bool {
        matches!(self.class(), CommandClass::Write)
    }
}

impl fmt::Display for MemCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemCommand::Activate => "ACT",
            MemCommand::Precharge => "PRE",
            MemCommand::PrechargeAll => "PREA",
            MemCommand::Read => "RD",
            MemCommand::ReadAp => "RDA",
            MemCommand::Write => "WR",
            MemCommand::WriteAp => "WRA",
            MemCommand::Refresh => "REF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_every_command() {
        assert_eq!(MemCommand::Activate.class(), CommandClass::Activate);
        assert_eq!(MemCommand::Precharge.class(), CommandClass::Precharge);
        assert_eq!(MemCommand::PrechargeAll.class(), CommandClass::Precharge);
        assert_eq!(MemCommand::Read.class(), CommandClass::Read);
        assert_eq!(MemCommand::ReadAp.class(), CommandClass::Read);
        assert_eq!(MemCommand::Write.class(), CommandClass::Write);
        assert_eq!(MemCommand::WriteAp.class(), CommandClass::Write);
        assert_eq!(MemCommand::Refresh.class(), CommandClass::Refresh);
    }

    #[test]
    fn row_and_column_commands_are_disjoint() {
        for cmd in [
            MemCommand::Activate,
            MemCommand::Precharge,
            MemCommand::PrechargeAll,
            MemCommand::Read,
            MemCommand::ReadAp,
            MemCommand::Write,
            MemCommand::WriteAp,
            MemCommand::Refresh,
        ] {
            assert!(
                !(cmd.is_row_command() && cmd.is_column_command()),
                "{cmd} classified as both row and column command"
            );
        }
    }

    #[test]
    fn auto_precharge_flags() {
        assert!(MemCommand::ReadAp.auto_precharges());
        assert!(MemCommand::WriteAp.auto_precharges());
        assert!(!MemCommand::Read.auto_precharges());
        assert!(!MemCommand::Activate.auto_precharges());
    }

    #[test]
    fn display_is_the_jedec_mnemonic() {
        assert_eq!(MemCommand::Activate.to_string(), "ACT");
        assert_eq!(MemCommand::Refresh.to_string(), "REF");
        assert_eq!(MemCommand::WriteAp.to_string(), "WRA");
    }
}
