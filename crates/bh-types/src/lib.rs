//! # bh-types
//!
//! Shared vocabulary types for the BlockHammer reproduction.
//!
//! Every other crate in the workspace (the DRAM device model, the memory
//! controller, the RowHammer defenses, the full-system harness) speaks in
//! terms of the types defined here: identifiers for threads, channels,
//! ranks, banks and rows; decoded DRAM addresses; DRAM bus commands; memory
//! requests; and clock/time conversion helpers.
//!
//! The crate is deliberately dependency-light so that it can sit at the
//! bottom of the dependency graph.
//!
//! ## Example
//!
//! ```
//! use bh_types::{DramAddress, MemCommand, ThreadId};
//!
//! let addr = DramAddress::new(0, 0, 1, 2, 0x1234, 40);
//! assert_eq!(addr.row(), 0x1234);
//! assert_eq!(addr.global_bank_index(1, 4, 4), 6);
//! let act = MemCommand::Activate;
//! assert!(act.is_row_command());
//! let t = ThreadId::new(3);
//! assert_eq!(t.index(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod command;
mod error;
mod ids;
mod request;
mod time;
mod trace;

pub use address::{AddressMapping, AddressMappingGeometry, DramAddress};
pub use command::{CommandClass, MemCommand};
pub use error::ConfigError;
pub use ids::{BankGroupId, BankId, ChannelId, RankId, RowId, ThreadId};
pub use request::{AccessType, MemRequest, ReqId, RequestOrigin};
pub use time::{Cycle, CyclesPerSecond, Nanoseconds, TimeConverter};
pub use trace::TraceRecord;
