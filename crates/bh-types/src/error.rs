//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a simulator component.
///
/// Configuration structs validate their arguments eagerly (C-VALIDATE) and
/// report the offending field and constraint in the error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    message: String,
}

impl ConfigError {
    /// Creates a configuration error for `field` with a human-readable
    /// explanation of the violated constraint.
    pub fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            message: message.into(),
        }
    }

    /// The name of the offending configuration field.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// The constraint that was violated.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration `{}`: {}",
            self.field, self.message
        )
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_message() {
        let e = ConfigError::new("n_bl", "must be smaller than the RowHammer threshold");
        let s = e.to_string();
        assert!(s.contains("n_bl"));
        assert!(s.contains("smaller"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
    }

    #[test]
    fn accessors_return_parts() {
        let e = ConfigError::new("cbf_size", "must be a power of two");
        assert_eq!(e.field(), "cbf_size");
        assert_eq!(e.message(), "must be a power of two");
    }
}
