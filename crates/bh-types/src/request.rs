//! Memory requests as seen by the memory controller.

use crate::address::DramAddress;
use crate::ids::ThreadId;
use crate::time::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a memory request within a simulation run.
pub type ReqId = u64;

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// A demand read (load miss, instruction fetch miss, ...).
    Read,
    /// A writeback / store.
    Write,
}

impl AccessType {
    /// Whether the access is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, AccessType::Read)
    }

    /// Whether the access is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, AccessType::Write)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => f.write_str("read"),
            AccessType::Write => f.write_str("write"),
        }
    }
}

/// Who generated a request. The memory controller and the energy model use
/// this to attribute bandwidth and energy, and the defenses use it to
/// distinguish demand traffic from their own victim-refresh traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestOrigin {
    /// Demand traffic from a core (load/store miss or writeback).
    Core,
    /// A victim-row refresh injected by a reactive-refresh defense
    /// (PARA, PRoHIT, MRLoc, CBT, TWiCe, Graphene).
    VictimRefresh,
}

/// A memory request travelling from the LLC to DRAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique request identifier.
    pub id: ReqId,
    /// Issuing hardware thread.
    pub thread: ThreadId,
    /// Physical byte address.
    pub phys_addr: u64,
    /// Decoded DRAM coordinates.
    pub dram_addr: DramAddress,
    /// Read or write.
    pub access: AccessType,
    /// Cycle at which the request entered the memory controller queue.
    pub arrival: Cycle,
    /// Who generated the request.
    pub origin: RequestOrigin,
}

impl MemRequest {
    /// Creates a demand request originating from a core.
    pub fn demand(
        id: ReqId,
        thread: ThreadId,
        phys_addr: u64,
        dram_addr: DramAddress,
        access: AccessType,
        arrival: Cycle,
    ) -> Self {
        Self {
            id,
            thread,
            phys_addr,
            dram_addr,
            access,
            arrival,
            origin: RequestOrigin::Core,
        }
    }

    /// Creates a victim-refresh request injected by a RowHammer defense.
    ///
    /// Victim refreshes are modelled as reads of the victim row: they cost
    /// an activation plus a column access, which is how reactive-refresh
    /// proposals account for their overhead.
    pub fn victim_refresh(id: ReqId, dram_addr: DramAddress, arrival: Cycle) -> Self {
        Self {
            id,
            thread: ThreadId::new(usize::MAX),
            phys_addr: 0,
            dram_addr,
            access: AccessType::Read,
            arrival,
            origin: RequestOrigin::VictimRefresh,
        }
    }

    /// Whether the request is defense-injected victim-refresh traffic.
    pub fn is_victim_refresh(&self) -> bool {
        self.origin == RequestOrigin::VictimRefresh
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} {} {} by {} @{} ({:?})",
            self.id, self.access, self.dram_addr, self.thread, self.arrival, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> DramAddress {
        DramAddress::new(0, 0, 1, 2, 100, 5)
    }

    #[test]
    fn demand_request_carries_thread_and_origin() {
        let r = MemRequest::demand(1, ThreadId::new(3), 0x1000, addr(), AccessType::Write, 42);
        assert_eq!(r.thread.index(), 3);
        assert_eq!(r.origin, RequestOrigin::Core);
        assert!(!r.is_victim_refresh());
        assert!(r.access.is_write());
    }

    #[test]
    fn victim_refresh_is_flagged() {
        let r = MemRequest::victim_refresh(7, addr(), 10);
        assert!(r.is_victim_refresh());
        assert!(r.access.is_read());
        assert_eq!(r.arrival, 10);
    }

    #[test]
    fn access_type_predicates_are_exclusive() {
        assert!(AccessType::Read.is_read() && !AccessType::Read.is_write());
        assert!(AccessType::Write.is_write() && !AccessType::Write.is_read());
    }

    #[test]
    fn display_contains_key_fields() {
        let r = MemRequest::demand(9, ThreadId::new(1), 0x40, addr(), AccessType::Read, 5);
        let s = r.to_string();
        assert!(s.contains("req#9"));
        assert!(s.contains("read"));
    }
}
