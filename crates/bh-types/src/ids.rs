//! Strongly-typed identifiers for hardware threads and DRAM structures.
//!
//! Newtypes are used instead of bare integers so that a bank index can never
//! be accidentally passed where a row index is expected (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Creates a new identifier from its raw index.
            pub const fn new(index: $inner) -> Self {
                Self(index)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a hardware thread (one simulated core runs one thread).
    ThreadId,
    usize
);
define_id!(
    /// Identifier of a memory channel.
    ChannelId,
    usize
);
define_id!(
    /// Identifier of a DRAM rank within a channel.
    RankId,
    usize
);
define_id!(
    /// Identifier of a DRAM bank group within a rank (DDR4).
    BankGroupId,
    usize
);
define_id!(
    /// Identifier of a DRAM bank within a bank group.
    BankId,
    usize
);
define_id!(
    /// Identifier of a DRAM row within a bank (memory-controller visible).
    RowId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_raw_values() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(usize::from(t), 7);
        assert_eq!(ThreadId::from(7), t);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = RowId::new(1);
        let b = RowId::new(2);
        assert!(a < b);
        let set: HashSet<RowId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(format!("{}", BankId::new(3)), "BankId(3)");
        assert_eq!(format!("{}", RowId::new(0)), "RowId(0)");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ChannelId::default().index(), 0);
        assert_eq!(RowId::default().index(), 0);
    }
}
