//! Request routing: one connection, one request, one response.
//!
//! The API surface (all responses `Connection: close`):
//!
//! | method & path | response |
//! |---|---|
//! | `GET /healthz` | queue depth/capacity, executor liveness |
//! | `GET /campaigns` | status array, ordered by id |
//! | `POST /campaigns` | admit a spec: `201` (admitted), `200` (already known), `400` (refused), `503` + `Retry-After` (queue full / shutting down) |
//! | `GET /campaigns/<id>` | status document |
//! | `GET /campaigns/<id>/results` | chunked NDJSON stream, one record per finished run, live until the campaign is terminal |
//! | `GET /campaigns/<id>/artifacts/<csv\|json\|stepping\|scheduling>` | final artifacts (404 until written) |
//!
//! Admission is where the wire-format contract is enforced: the spec
//! must parse under the strict [`campaign::wire`] rules, must survive
//! its own serialize→parse round trip with an unchanged fingerprint
//! (a spec whose fingerprint drifts across the wire could resume the
//! wrong journal), and — when the client sends an
//! `X-Campaign-Fingerprint` header — must hash to exactly what the
//! client computed.

use crate::http::{read_request, ChunkedWriter, Request, Response};
use crate::queue::Reject;
use crate::registry::{CampaignState, Phase};
use crate::serve::Shared;
use campaign::checkpoint::fingerprint;
use campaign::wire;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How long a streaming connection waits for new records before
/// re-checking the server's shutdown flag.
const STREAM_POLL: Duration = Duration::from_millis(200);

/// Serves one connection start to finish. Transport errors are
/// swallowed: they affect exactly this client, and the server has no
/// channel left to report them on.
pub(crate) fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = serve_one(shared, &stream);
}

fn serve_one(shared: &Shared, stream: &TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(error) if error.kind() == io::ErrorKind::InvalidData => {
            return Response::text(400, format!("{error}\n")).write_to(&mut &*stream);
        }
        Err(error) => return Err(error),
    };
    route(shared, &request, stream)
}

fn route(shared: &Shared, request: &Request, stream: &TcpStream) -> io::Result<()> {
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let sized = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["campaigns"]) => list(shared),
        ("POST", ["campaigns"]) => submit(shared, request),
        ("GET", ["campaigns", id]) => {
            with_campaign(shared, id, |state| Response::json(200, state.status_json()))
        }
        ("GET", ["campaigns", id, "results"]) => {
            return match shared.registry.get(id) {
                Some(state) => stream_results(shared, &state, stream),
                None => not_found(id).write_to(&mut &*stream),
            };
        }
        ("GET", ["campaigns", id, "artifacts", artifact]) => {
            with_campaign(shared, id, |state| serve_artifact(shared, state, artifact))
        }
        ("POST" | "GET", _) => Response::text(404, "no such endpoint\n"),
        _ => Response::text(405, "method not allowed\n"),
    };
    sized.write_to(&mut &*stream)
}

fn not_found(id: &str) -> Response {
    Response::text(404, format!("no campaign `{id}`\n"))
}

fn with_campaign(
    shared: &Shared,
    id: &str,
    respond: impl FnOnce(&CampaignState) -> Response,
) -> Response {
    match shared.registry.get(id) {
        Some(state) => respond(&state),
        None => not_found(id),
    }
}

fn healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        format!(
            concat!(
                "{{\"status\":\"ok\",\"queue_depth\":{},\"queue_capacity\":{},",
                "\"executor_alive\":{},\"campaigns\":{},\"stopping\":{}}}"
            ),
            shared.queue.depth(),
            shared.queue.capacity(),
            shared.executor_alive.load(Ordering::SeqCst),
            shared.registry.len(),
            shared.stopping(),
        ),
    )
}

fn list(shared: &Shared) -> Response {
    let statuses: Vec<String> = shared
        .registry
        .list()
        .iter()
        .map(|state| state.status_json())
        .collect();
    Response::json(200, format!("[{}]", statuses.join(",")))
}

/// Admission. See the module docs for the contract.
fn submit(shared: &Shared, request: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::text(400, "spec must be UTF-8 JSON\n");
    };
    let spec = match wire::spec_from_json(text) {
        Ok(spec) => spec,
        Err(error) => return Response::text(400, format!("spec refused: {error}\n")),
    };
    if spec.run_count() > shared.config.max_runs {
        return Response::text(
            400,
            format!(
                "campaign expands to {} runs, over this server's limit of {}\n",
                spec.run_count(),
                shared.config.max_runs
            ),
        );
    }
    let fp = fingerprint(&spec);
    // The spec must survive its own round trip with the fingerprint
    // intact: this is what guarantees the journal the server keys by
    // `fp` describes exactly the campaign the client asked for.
    match wire::spec_from_json(&wire::spec_to_json(&spec)) {
        Ok(echoed) if fingerprint(&echoed) == fp => {}
        Ok(_) => {
            return Response::text(
                400,
                "spec refused: fingerprint changes across the wire round trip\n",
            )
        }
        Err(error) => {
            return Response::text(
                400,
                format!("spec refused: does not round-trip ({error})\n"),
            )
        }
    }
    if let Some(claimed) = request.header("x-campaign-fingerprint") {
        if u64::from_str_radix(claimed.trim(), 16) != Ok(fp) {
            return Response::text(
                400,
                format!(
                    "client fingerprint {claimed} does not match server fingerprint {fp:016x}\n"
                ),
            );
        }
    }
    let id = format!("{fp:016x}");
    // One admission at a time: idempotence check, spec persistence and
    // enqueue must not interleave between concurrent submitters.
    let guard = shared
        .submit_lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = shared.registry.get(&id) {
        drop(guard);
        return Response::json(200, existing.status_json())
            .with_header("Location", format!("/campaigns/{id}"));
    }
    // Durably record the admission before acknowledging it: a server
    // killed after the 201 will find spec.json and re-admit on restart.
    let dir = shared.campaign_dir(&id);
    if let Err(error) = campaign::write_atomic(&dir.join("spec.json"), wire::spec_to_json(&spec)) {
        drop(guard);
        return Response::text(500, format!("persisting spec: {error}\n"));
    }
    let state = CampaignState::new(id.clone(), spec, Phase::Queued);
    match shared.queue.submit(Arc::clone(&state)) {
        Ok(()) => {
            let state = shared.registry.insert(state);
            drop(guard);
            Response::json(201, state.status_json())
                .with_header("Location", format!("/campaigns/{id}"))
        }
        Err(reject) => {
            // Undo the persisted admission so a restart does not revive
            // a submission the client was told to retry.
            let _ = std::fs::remove_file(dir.join("spec.json"));
            let _ = std::fs::remove_dir(&dir);
            drop(guard);
            let why = match reject {
                Reject::Full => "queue full",
                Reject::Closed => "server shutting down",
            };
            Response::text(503, format!("{why}, retry later\n")).with_header("Retry-After", "1")
        }
    }
}

/// Streams the campaign's NDJSON records as they are recorded, closing
/// when the campaign is terminal (or the server shuts down).
fn stream_results(
    shared: &Shared,
    state: &Arc<CampaignState>,
    stream: &TcpStream,
) -> io::Result<()> {
    let mut out = stream;
    let mut writer = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson")?;
    let mut seen = 0usize;
    loop {
        let (lines, phase) = state.wait_progress(seen, STREAM_POLL);
        for line in &lines {
            writer.chunk(format!("{line}\n").as_bytes())?;
        }
        seen += lines.len();
        if lines.is_empty() && (phase.is_terminal() || shared.stopping()) {
            break;
        }
    }
    writer.finish()
}

/// Serves a final artifact from disk. `campaign.json` is written last,
/// so every artifact a client can fetch is complete.
fn serve_artifact(shared: &Shared, state: &CampaignState, artifact: &str) -> Response {
    let (file, content_type) = match artifact {
        "csv" => ("campaign.csv", "text/csv; charset=utf-8"),
        "json" => ("campaign.json", "application/json"),
        "stepping" => ("stepping.csv", "text/csv; charset=utf-8"),
        "scheduling" => ("scheduling.csv", "text/csv; charset=utf-8"),
        other => return Response::text(404, format!("no artifact `{other}`\n")),
    };
    match std::fs::read(shared.campaign_dir(&state.id).join(file)) {
        Ok(bytes) => Response {
            status: 200,
            content_type,
            extra: Vec::new(),
            body: bytes,
        },
        Err(_) => Response::text(
            404,
            format!(
                "artifact `{artifact}` not written yet (phase: {})\n",
                state.phase().label()
            ),
        ),
    }
}
