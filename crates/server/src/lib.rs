//! # server
//!
//! `bh-serve`: campaign-as-a-service. A long-running process that
//! accepts [`campaign::CampaignSpec`]s over HTTP/1.1 (`POST
//! /campaigns`), executes them through the campaign engine with
//! checkpoint journals, and streams per-run NDJSON results to any
//! number of clients (`GET /campaigns/<id>/results`) — with the same
//! determinism contract as batch execution: the records a client
//! streams and the final CSV/JSON artifacts are byte-identical to what
//! `campaign::execute_resumable` writes locally, *including* across a
//! `SIGKILL` and restart of the server mid-campaign (the PR 8 journal
//! skips finished runs on resume).
//!
//! Everything is hand-rolled on `std::net` — no async runtime, no HTTP
//! dependency: the protocol surface a campaign server needs (five
//! routes, chunked streaming, `Connection: close`) is small enough that
//! a bounded, obviously-correct codec ([`http`]) beats a framework this
//! build environment could not fetch anyway.
//!
//! Module map: [`http`] the codec (+ [`http::client`] for `bh-submit`
//! and tests), [`queue`] the bounded admission queue, [`registry`]
//! per-campaign state and streamed record lines, `router` (private) the
//! request handlers, [`serve`] the threads, recovery scan, and
//! [`Server`] lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod queue;
pub mod registry;
mod router;
pub mod serve;

pub use serve::{request_shutdown, shutdown_requested, Server, ServerConfig};
