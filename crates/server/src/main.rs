//! `bh-serve`: the campaign server binary.
//!
//! ```text
//! bh-serve [addr HOST:PORT] [data DIR] [queue N] [workers N] [max-runs N]
//!          [scheduler stealing|pinned]
//! ```
//!
//! Arguments are bare `key value` words, like the repo's other
//! binaries. Defaults: `addr 127.0.0.1:7878 data target/bh-serve
//! queue 8 workers <cores-2> max-runs 100000 scheduler stealing`.
//! `SIGINT`/`SIGTERM`
//! trigger a clean shutdown: stop admitting, finish the in-flight
//! campaign (its journal makes even a hard kill recoverable), drain
//! connections, exit `0`.

use server::{request_shutdown, shutdown_requested, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// `SIGINT` (ctrl-C) on every platform this repo targets.
const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill) likewise.
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)`. Declared by hand because this build
    /// environment has no `libc` crate; the return value (the previous
    /// handler, a pointer) is declared pointer-sized and ignored.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// The installed handler: one async-signal-safe atomic store.
extern "C" fn on_signal(_signum: i32) {
    request_shutdown();
}

/// Operator-facing output; this binary's only printing site.
fn say(line: &str) {
    println!("{line}"); // lint: allow(hygiene) -- operator-facing binary output
}

fn fail(message: &str) -> ExitCode {
    // lint: allow(hygiene) -- operator-facing binary diagnostics
    eprintln!("bh-serve: {message}");
    ExitCode::FAILURE
}

/// Applies `key value` argument pairs onto the default config.
fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut words = args.iter();
    while let Some(key) = words.next() {
        let value = words
            .next()
            .ok_or_else(|| format!("`{key}` needs a value"))?;
        match key.as_str() {
            "addr" => config.addr = value.clone(),
            "data" => config.data_dir = PathBuf::from(value),
            "queue" => {
                config.queue_capacity = value
                    .parse()
                    .map_err(|_| format!("bad queue capacity `{value}`"))?;
            }
            "workers" => {
                config.workers = value
                    .parse()
                    .map_err(|_| format!("bad worker count `{value}`"))?;
            }
            "max-runs" => {
                config.max_runs = value
                    .parse()
                    .map_err(|_| format!("bad run limit `{value}`"))?;
            }
            "scheduler" => {
                config.scheduler = campaign::SchedulerMode::parse(value)
                    .ok_or_else(|| format!("bad scheduler `{value}` (stealing|pinned)"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (usage: bh-serve [addr HOST:PORT] [data DIR] \
                     [queue N] [workers N] [max-runs N] [scheduler stealing|pinned])"
                ))
            }
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => return fail(&message),
    };
    // SAFETY: `signal(2)` with a handler that only performs one atomic
    // store is the canonical async-signal-safe pattern; no Rust state
    // is touched from the handler.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => return fail(&format!("starting server: {error}")),
    };
    say(&format!(
        "bh-serve listening on http://{} (queue capacity {}, {} workers)",
        server.addr(),
        server.config().queue_capacity,
        server.config().workers,
    ));
    for note in server.notes() {
        say(&format!("  {note}"));
    }
    while !shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    say("bh-serve: signal received, shutting down");
    server.stop();
    say("bh-serve: bye");
    ExitCode::SUCCESS
}
