//! The bounded submission queue between the accept side and the
//! executor.
//!
//! Admission control is the queue: `POST /campaigns` calls
//! [`JobQueue::submit`], and a full queue is answered `503` with
//! `Retry-After` instead of buffering unboundedly — a campaign server
//! that accepted every submission would just move the out-of-memory
//! crash from the client to the journal directory. Jobs recovered from
//! disk on restart bypass the bound ([`JobQueue::enqueue_unbounded`]):
//! they were admitted by a previous life of the server and refusing
//! them would drop accepted work.
//!
//! Closing the queue ([`JobQueue::close`]) makes [`JobQueue::pop`]
//! return `None` *immediately*, even with jobs still queued — shutdown
//! must be bounded by the in-flight campaign, not the backlog, and
//! queued campaigns persist on disk (`spec.json`), so the next start
//! re-admits them.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The queue is at capacity: back off and retry.
    Full,
    /// The server is shutting down.
    Closed,
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer job queue (mutex +
/// condvar; the consumer is the executor thread).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    wake: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue admitting at most `capacity` queued jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A poisoned queue mutex means a panic while holding it; the
        // state (a VecDeque and a flag) cannot be torn by any panic
        // here, so continuing is sound and keeps the server serving.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `job` if there is room.
    ///
    /// # Errors
    ///
    /// [`Reject::Full`] at capacity, [`Reject::Closed`] after
    /// [`JobQueue::close`].
    pub fn submit(&self, job: T) -> Result<(), Reject> {
        let mut state = self.lock();
        if state.closed {
            return Err(Reject::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Reject::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.wake.notify_one();
        Ok(())
    }

    /// Admits `job` regardless of capacity — restart recovery only:
    /// the job was accepted by a previous life of this server.
    ///
    /// # Errors
    ///
    /// [`Reject::Closed`] after [`JobQueue::close`].
    pub fn enqueue_unbounded(&self, job: T) -> Result<(), Reject> {
        let mut state = self.lock();
        if state.closed {
            return Err(Reject::Closed);
        }
        state.jobs.push_back(job);
        drop(state);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed (returning `None` at once, even with jobs still queued —
    /// see the module docs).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return None;
            }
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            state = self
                .wake
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue: every pending and future [`JobQueue::pop`]
    /// returns `None`, every future submission is rejected.
    pub fn close(&self) {
        self.lock().closed = true;
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn submissions_bound_at_capacity_and_fifo() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.submit(1), Ok(()));
        assert_eq!(queue.submit(2), Ok(()));
        assert_eq!(queue.submit(3), Err(Reject::Full));
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.capacity(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.submit(3), Ok(()));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn recovery_enqueue_ignores_the_bound() {
        let queue = JobQueue::new(1);
        assert_eq!(queue.enqueue_unbounded(1), Ok(()));
        assert_eq!(queue.enqueue_unbounded(2), Ok(()));
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.submit(3), Err(Reject::Full));
    }

    #[test]
    fn close_unblocks_pop_and_discards_backlog() {
        let queue = Arc::new(JobQueue::<u32>::new(4));
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the popper a chance to block, then close with a job
        // racing in: pop must return None promptly either way.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(popper.join().expect("popper exits"), None);
        assert_eq!(queue.submit(7), Err(Reject::Closed));
        assert_eq!(queue.enqueue_unbounded(7), Err(Reject::Closed));
        // A closed queue drains to None even if jobs were queued first.
        let queue = JobQueue::new(4);
        assert_eq!(queue.submit(1), Ok(()));
        queue.close();
        assert_eq!(queue.pop(), None);
    }
}
