//! In-memory campaign state: what every connection handler reads.
//!
//! Each submitted campaign gets one [`CampaignState`]: its spec, its
//! lifecycle [`Phase`], and the prerendered NDJSON record lines in run
//! order. The executor appends lines as runs finish (via the
//! [`campaign::execute_observed`] observer); any number of streaming
//! connections follow the same growing list with
//! [`CampaignState::wait_progress`], so a client attaching mid-campaign
//! (or after completion, or after a crash-and-resume) always receives
//! the complete, byte-identical record sequence.
//!
//! The [`Registry`] maps campaign ids — the spec fingerprint in hex,
//! which is what makes resubmission of the same spec idempotent — to
//! their states. It is a `BTreeMap`, so listings are deterministically
//! ordered.

use campaign::{wire, CampaignSpec, JournalEntry};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Campaign lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Admitted, waiting for the executor.
    Queued,
    /// Executing (or resuming) on the executor thread.
    Running,
    /// Every run completed.
    Done,
    /// Completed, but quarantined run failures degrade some sweep
    /// points (see `campaign::FailurePolicy::Quarantine`).
    Degraded,
    /// Execution aborted with an error (journal unwritable, spec
    /// refused by the engine, …).
    Failed,
}

impl Phase {
    /// Stable lowercase label used in status documents.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Degraded => "degraded",
            Phase::Failed => "failed",
        }
    }

    /// Whether the campaign will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Degraded | Phase::Failed)
    }
}

/// Mutable progress of one campaign, behind its lock.
struct Progress {
    phase: Phase,
    /// Prerendered NDJSON record lines (no trailing newline), run order.
    lines: Vec<String>,
    completed: usize,
    failed: usize,
    replayed: usize,
    error: Option<String>,
    /// Prerendered scheduling JSON object ([`wire::scheduling_json`]),
    /// recorded once execution finishes.
    scheduling: Option<String>,
}

/// One campaign the server knows about.
pub struct CampaignState {
    /// Campaign id: the spec fingerprint, `{:016x}`.
    pub id: String,
    /// The admitted spec.
    pub spec: CampaignSpec,
    /// Runs the spec expands to.
    pub total_runs: usize,
    progress: Mutex<Progress>,
    wake: Condvar,
}

impl CampaignState {
    /// A fresh state in `phase` (no recorded results yet).
    pub fn new(id: String, spec: CampaignSpec, phase: Phase) -> Arc<Self> {
        let total_runs = spec.run_count();
        Arc::new(Self {
            id,
            spec,
            total_runs,
            progress: Mutex::new(Progress {
                phase,
                lines: Vec::new(),
                completed: 0,
                failed: 0,
                replayed: 0,
                error: None,
                scheduling: None,
            }),
            wake: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Progress> {
        // Progress is counters and append-only lines; no panic can tear
        // it, so a poisoned lock is safe to keep using.
        self.progress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one delivered run result (rendered to its NDJSON line)
    /// and wakes every waiting stream.
    pub fn record_entry(&self, entry: &JournalEntry, replayed: bool) {
        let line = wire::entry_to_ndjson(entry);
        let mut progress = self.lock();
        match entry {
            JournalEntry::Outcome(_) => progress.completed += 1,
            JournalEntry::Failure(_) => progress.failed += 1,
        }
        if replayed {
            progress.replayed += 1;
        }
        progress.lines.push(line);
        drop(progress);
        self.wake.notify_all();
    }

    /// Moves the campaign to `phase` (recording `error` when it failed)
    /// and wakes every waiting stream.
    pub fn set_phase(&self, phase: Phase, error: Option<String>) {
        let mut progress = self.lock();
        progress.phase = phase;
        if error.is_some() {
            progress.error = error;
        }
        drop(progress);
        self.wake.notify_all();
    }

    /// Records the campaign's scheduling document (the
    /// [`wire::scheduling_json`] rendering of its `ExecutionStats`),
    /// surfaced verbatim inside [`CampaignState::status_json`].
    pub fn set_scheduling(&self, document: String) {
        self.lock().scheduling = Some(document);
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.lock().phase
    }

    /// Record lines already recorded.
    pub fn lines_recorded(&self) -> usize {
        self.lock().lines.len()
    }

    /// Waits (up to `timeout`) until there are record lines beyond
    /// `seen` or the campaign is terminal, then returns the new lines
    /// and the phase at that moment. A timeout returns an empty vector
    /// and the current phase, so streaming loops can poll their own
    /// shutdown conditions between waits.
    pub fn wait_progress(&self, seen: usize, timeout: Duration) -> (Vec<String>, Phase) {
        let mut progress = self.lock();
        loop {
            if progress.lines.len() > seen || progress.phase.is_terminal() {
                return (
                    progress.lines.get(seen..).unwrap_or(&[]).to_vec(),
                    progress.phase,
                );
            }
            let (next, wait) = self
                .wake
                .wait_timeout(progress, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            progress = next;
            if wait.timed_out() {
                return (Vec::new(), progress.phase);
            }
        }
    }

    /// The campaign's status document (one line of JSON).
    pub fn status_json(&self) -> String {
        let progress = self.lock();
        let error = match &progress.error {
            None => "null".to_owned(),
            Some(message) => format!("\"{}\"", wire::escape(message)),
        };
        // The scheduling document is already JSON, so it embeds as-is.
        let scheduling = progress.scheduling.as_deref().unwrap_or("null");
        format!(
            concat!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"phase\":\"{}\",",
                "\"total_runs\":{},\"completed\":{},\"failed\":{},",
                "\"replayed\":{},\"error\":{},\"scheduling\":{}}}"
            ),
            self.id,
            wire::escape(&self.spec.name),
            progress.phase.label(),
            self.total_runs,
            progress.completed,
            progress.failed,
            progress.replayed,
            error,
            scheduling,
        )
    }
}

/// All campaigns the server knows about, by id.
#[derive(Default)]
pub struct Registry {
    campaigns: Mutex<BTreeMap<String, Arc<CampaignState>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Arc<CampaignState>>> {
        self.campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `state` under its id. Returns the already-registered
    /// state instead if the id exists (submission idempotence).
    pub fn insert(&self, state: Arc<CampaignState>) -> Arc<CampaignState> {
        let mut campaigns = self.lock();
        Arc::clone(
            campaigns
                .entry(state.id.clone())
                .or_insert_with(|| Arc::clone(&state)),
        )
    }

    /// The campaign with this id, if any.
    pub fn get(&self, id: &str) -> Option<Arc<CampaignState>> {
        self.lock().get(id).map(Arc::clone)
    }

    /// Every campaign, ordered by id.
    pub fn list(&self) -> Vec<Arc<CampaignState>> {
        self.lock().values().map(Arc::clone).collect()
    }

    /// Campaigns registered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no campaign is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campaign::{FailedRun, RunOutcome, ThreadOutcome};
    use sim::SteppingStats;

    fn outcome(index: usize) -> JournalEntry {
        JournalEntry::Outcome(RunOutcome {
            index,
            name: format!("run-{index}"),
            scenario: "no-attack".to_owned(),
            defense: "Baseline".to_owned(),
            n_rh: 32_768,
            channels: 1,
            total_cycles: 10,
            activations: 1,
            dram_energy_j: 0.0,
            threads: vec![ThreadOutcome {
                name: "t".to_owned(),
                is_attacker: false,
                instructions: 1,
                cycles: 2,
                ipc: 0.5,
                max_rhli: 0.0,
                memory_requests: 1,
            }],
            metrics: None,
            stepping: SteppingStats::default(),
        })
    }

    #[test]
    fn recorded_entries_stream_in_order_with_counts() {
        let state = CampaignState::new("00ff".to_owned(), CampaignSpec::smoke(), Phase::Running);
        state.record_entry(&outcome(0), true);
        state.record_entry(&outcome(1), false);
        state.record_entry(
            &JournalEntry::Failure(FailedRun {
                index: 2,
                name: "run-2".to_owned(),
                scenario: "attack".to_owned(),
                defense: "Para".to_owned(),
                n_rh: 32_768,
                channels: 1,
                attempts: 1,
                cause: "boom".to_owned(),
            }),
            false,
        );
        let (lines, phase) = state.wait_progress(0, Duration::from_millis(1));
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"index\":0"));
        assert!(lines[2].contains("\"type\":\"failure\""));
        assert_eq!(phase, Phase::Running);
        let status = state.status_json();
        assert!(status.contains("\"completed\":2"));
        assert!(status.contains("\"failed\":1"));
        assert!(status.contains("\"replayed\":1"));
        assert!(status.contains("\"error\":null"));
        // No scheduling document until execution reports one.
        assert!(status.contains("\"scheduling\":null"));
        state.set_scheduling("{\"scheduler\":\"stealing\"}".to_owned());
        assert!(state
            .status_json()
            .contains("\"scheduling\":{\"scheduler\":\"stealing\"}"));
        // A caught-up reader times out without new lines.
        let (lines, _) = state.wait_progress(3, Duration::from_millis(1));
        assert!(lines.is_empty());
        // Terminal phase releases caught-up readers immediately.
        state.set_phase(Phase::Degraded, None);
        let (lines, phase) = state.wait_progress(3, Duration::from_secs(60));
        assert!(lines.is_empty());
        assert_eq!(phase, Phase::Degraded);
        assert!(phase.is_terminal());
    }

    #[test]
    fn failed_campaigns_surface_their_error() {
        let state = CampaignState::new("01".to_owned(), CampaignSpec::smoke(), Phase::Queued);
        assert_eq!(state.phase(), Phase::Queued);
        state.set_phase(Phase::Failed, Some("journal: \"disk\" gone".to_owned()));
        assert!(state
            .status_json()
            .contains("\"error\":\"journal: \\\"disk\\\" gone\""));
    }

    #[test]
    fn registry_is_idempotent_and_ordered() {
        let registry = Registry::new();
        assert!(registry.is_empty());
        let b = CampaignState::new("bb".to_owned(), CampaignSpec::smoke(), Phase::Queued);
        let a = CampaignState::new("aa".to_owned(), CampaignSpec::smoke(), Phase::Queued);
        registry.insert(Arc::clone(&b));
        registry.insert(Arc::clone(&a));
        // Re-inserting an id returns the original state.
        let duplicate = CampaignState::new("aa".to_owned(), CampaignSpec::smoke(), Phase::Queued);
        let resolved = registry.insert(duplicate);
        assert!(Arc::ptr_eq(&resolved, &a));
        assert_eq!(registry.len(), 2);
        let ids: Vec<String> = registry.list().iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids, ["aa", "bb"]);
        assert!(registry.get("bb").is_some());
        assert!(registry.get("cc").is_none());
    }
}
