//! A deliberately minimal HTTP/1.1 codec on `std::net`.
//!
//! The campaign server needs exactly four verbs of HTTP: read one
//! request, write one sized response, write one chunked (streaming)
//! response, and — for its test clients and `bh-submit` — do the same
//! from the other side. No keep-alive (every response carries
//! `Connection: close`), no TLS, no compression: the server binds
//! loopback by default and its clients are the repo's own tooling, so
//! the codec optimizes for being *obviously* correct and bounded.
//! Request framing is belt-and-braces: the request line and each header
//! line are capped at [`MAX_LINE`] bytes, at most [`MAX_HEADERS`]
//! headers are accepted, and bodies are only read via `Content-Length`
//! up to [`MAX_BODY`] — anything outside those bounds is refused before
//! it is buffered.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request/status/header line (bytes).
pub const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body (bytes) — generous for a campaign
/// spec, far below anything that could pressure memory.
pub const MAX_BODY: u64 = 4 * 1024 * 1024;

/// Shorthand for a malformed-message error.
fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// One line, bounded by [`MAX_LINE`], with the trailing CRLF stripped.
fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    let read = reader.by_ref().take(MAX_LINE).read_line(&mut line)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-message",
        ));
    }
    if !line.ends_with('\n') {
        return Err(bad(format!("line exceeds {MAX_LINE} bytes or is torn")));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Header block: `name: value` lines until the blank separator, names
/// lowercased (HTTP header names are case-insensitive), values trimmed.
fn read_headers(reader: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() == MAX_HEADERS {
            return Err(bad(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("header line without `:`: `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
}

/// First value of header `name` (lowercase) in `headers`.
fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/campaigns/0123abcd…/results`.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless a `Content-Length` announced one).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, &name.to_ascii_lowercase())
    }
}

/// Reads one request from the connection, enforcing the codec bounds.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for anything malformed or oversized
/// (the router answers those with `400`); other kinds for transport
/// failures.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_owned(), p.to_owned(), v),
        _ => return Err(bad(format!("malformed request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(format!("unsupported protocol `{version}`")));
    }
    let headers = read_headers(reader)?;
    let mut body = Vec::new();
    if let Some(length) = header(&headers, "content-length") {
        let length: u64 = length
            .parse()
            .map_err(|_| bad(format!("bad content-length `{length}`")))?;
        if length > MAX_BODY {
            return Err(bad(format!("body of {length} bytes exceeds {MAX_BODY}")));
        }
        reader.by_ref().take(length).read_to_end(&mut body)?;
        if body.len() as u64 != length {
            return Err(bad("body shorter than its content-length"));
        }
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// One sized response, always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (name, value), written verbatim.
    pub extra: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra.push((name.to_owned(), value.into()));
        self
    }

    /// Writes the complete response (status line, headers,
    /// `Content-Length`-framed body) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// A chunked (`Transfer-Encoding: chunked`) streaming response body:
/// the campaign server sends one chunk per NDJSON record, flushed
/// immediately, so clients observe results as runs finish.
pub struct ChunkedWriter<W: Write> {
    out: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn begin(mut out: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
        )?;
        out.flush()?;
        Ok(Self { out })
    }

    /// Writes one chunk and flushes it (empty input writes nothing: an
    /// empty chunk would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", data.len())?;
        self.out.write_all(data)?;
        self.out.write_all(b"\r\n")?;
        self.out.flush()
    }

    /// Terminates the stream (zero-length chunk) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()
    }
}

/// The client half of the codec: enough HTTP to submit campaigns and
/// consume streamed results from tests and `bh-submit`. Loopback-scale
/// and synchronous by design.
pub mod client {
    use super::{bad, header, read_headers, read_line};
    use std::io::{self, BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    /// One complete client-side response (chunked bodies are reassembled).
    #[derive(Debug)]
    pub struct ClientResponse {
        /// Status code.
        pub status: u16,
        /// Headers in arrival order, names lowercased.
        pub headers: Vec<(String, String)>,
        /// The (de-chunked) body.
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// First value of header `name` (case-insensitive).
        pub fn header(&self, name: &str) -> Option<&str> {
            header(&self.headers, &name.to_ascii_lowercase())
        }

        /// The body as UTF-8.
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::InvalidData`] when it is not.
        pub fn utf8(&self) -> io::Result<&str> {
            std::str::from_utf8(&self.body).map_err(|_| bad("response body is not UTF-8"))
        }
    }

    /// Writes a request head (plus `Content-Length`-framed body) to
    /// `out`.
    fn write_request(
        out: &mut impl Write,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        write!(
            out,
            "{method} {path} HTTP/1.1\r\nHost: bh-serve\r\nConnection: close\r\n\
             Content-Length: {}\r\n",
            body.len()
        )?;
        for (name, value) in headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(body)?;
        out.flush()
    }

    /// Status line (`HTTP/1.1 200 OK`) → status code.
    fn read_status(reader: &mut impl BufRead) -> io::Result<u16> {
        let line = read_line(reader)?;
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some(version), Some(status)) if version.starts_with("HTTP/1.") => status
                .parse()
                .map_err(|_| bad(format!("bad status in `{line}`"))),
            _ => Err(bad(format!("malformed status line `{line}`"))),
        }
    }

    /// One hex chunk-size line.
    fn read_chunk_size(reader: &mut impl BufRead) -> io::Result<u64> {
        let line = read_line(reader)?;
        // Ignore chunk extensions (`;…`), which we never send anyway.
        let size = line.split(';').next().unwrap_or("").trim();
        u64::from_str_radix(size, 16).map_err(|_| bad(format!("bad chunk size `{line}`")))
    }

    /// Reads a chunked body, handing each raw chunk to `sink`.
    fn read_chunks(
        reader: &mut impl BufRead,
        sink: &mut dyn FnMut(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        loop {
            let size = read_chunk_size(reader)?;
            if size == 0 {
                // Trailer section: headerless in our codec, so just the
                // final blank line.
                let trailer = read_line(reader)?;
                if !trailer.is_empty() {
                    return Err(bad("unexpected trailer after final chunk"));
                }
                return Ok(());
            }
            let mut chunk = Vec::new();
            reader.by_ref().take(size).read_to_end(&mut chunk)?;
            if chunk.len() as u64 != size {
                return Err(bad("chunk shorter than its size line"));
            }
            let crlf = read_line(reader)?;
            if !crlf.is_empty() {
                return Err(bad("chunk not terminated by CRLF"));
            }
            sink(&chunk)?;
        }
    }

    /// Performs one request and reads the complete response
    /// (de-chunking if needed).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`io::ErrorKind::InvalidData`] for
    /// responses this codec cannot frame.
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let stream = TcpStream::connect(addr)?;
        write_request(&mut &stream, method, path, headers, body)?;
        let mut reader = BufReader::new(&stream);
        let status = read_status(&mut reader)?;
        let headers = read_headers(&mut reader)?;
        let mut out = Vec::new();
        if header(&headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            read_chunks(&mut reader, &mut |chunk| {
                out.extend_from_slice(chunk);
                Ok(())
            })?;
        } else if let Some(length) = header(&headers, "content-length") {
            let length: u64 = length
                .parse()
                .map_err(|_| bad(format!("bad content-length `{length}`")))?;
            reader.by_ref().take(length).read_to_end(&mut out)?;
            if out.len() as u64 != length {
                return Err(bad("body shorter than its content-length"));
            }
        } else {
            reader.read_to_end(&mut out)?;
        }
        Ok(ClientResponse {
            status,
            headers,
            body: out,
        })
    }

    /// `GET`s `path` and delivers each NDJSON line of the streamed body
    /// to `on_line` as soon as its bytes arrive (not when the stream
    /// ends) — the consumption side of the server's one-chunk-per-record
    /// contract. Returns the status code; on non-`200` the body is
    /// discarded and no lines are delivered.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed framing, or non-UTF-8 lines.
    pub fn stream(
        addr: &str,
        path: &str,
        on_line: &mut dyn FnMut(&str) -> io::Result<()>,
    ) -> io::Result<u16> {
        let stream = TcpStream::connect(addr)?;
        write_request(&mut &stream, "GET", path, &[], &[])?;
        let mut reader = BufReader::new(&stream);
        let status = read_status(&mut reader)?;
        let headers = read_headers(&mut reader)?;
        if status != 200 {
            return Ok(status);
        }
        if !header(&headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            return Err(bad("streamed endpoint did not answer chunked"));
        }
        let mut pending: Vec<u8> = Vec::new();
        read_chunks(&mut reader, &mut |chunk| {
            pending.extend_from_slice(chunk);
            while let Some(at) = pending.iter().position(|&b| b == b'\n') {
                let rest = pending.split_off(at + 1);
                let line = std::mem::replace(&mut pending, rest);
                let text = std::str::from_utf8(&line[..at]).map_err(|_| bad("non-UTF-8 line"))?;
                on_line(text)?;
            }
            Ok(())
        })?;
        if !pending.is_empty() {
            let text = std::str::from_utf8(&pending).map_err(|_| bad("non-UTF-8 line"))?;
            on_line(text)?;
        }
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_parse_with_lowercased_headers_and_bodies() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nX-Campaign-Fingerprint: 00ff\r\n\
                    Content-Length: 4\r\n\r\nbody";
        let request = read_request(&mut BufReader::new(&raw[..])).expect("parses");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/campaigns");
        assert_eq!(request.header("x-campaign-fingerprint"), Some("00ff"));
        assert_eq!(request.header("X-Campaign-Fingerprint"), Some("00ff"));
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn malformed_requests_are_invalid_data() {
        let cases: &[&[u8]] = &[
            b"GET\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ];
        for raw in cases {
            let error = read_request(&mut BufReader::new(*raw)).expect_err("refused");
            assert!(
                matches!(
                    error.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "{error}"
            );
        }
    }

    #[test]
    fn oversized_bodies_are_refused_before_buffering() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let error = read_request(&mut BufReader::new(raw.as_bytes())).expect_err("refused");
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sized_responses_frame_and_chunked_streams_reassemble() {
        let mut wire = Vec::new();
        Response::json(201, "{\"ok\":true}")
            .with_header("Location", "/campaigns/abc")
            .write_to(&mut wire)
            .expect("writes");
        let text = String::from_utf8(wire).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Location: /campaigns/abc\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut wire = Vec::new();
        let mut writer =
            ChunkedWriter::begin(&mut wire, 200, "application/x-ndjson").expect("begins");
        writer.chunk(b"line one\n").expect("chunk");
        writer.chunk(b"").expect("empty chunk is a no-op");
        writer.chunk(b"line two\n").expect("chunk");
        writer.finish().expect("finishes");
        let text = String::from_utf8(wire).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("9\r\nline one\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
