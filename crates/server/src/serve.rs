//! The server runtime: listener, executor thread, and crash recovery.
//!
//! `bh-serve` is three long-lived threads plus one short-lived thread
//! per connection, all spawned *in this file only* (enforced by
//! `bh-lint`'s thread-discipline rule):
//!
//! * the **executor** pops admitted campaigns off the bounded queue and
//!   runs them — one at a time, in admission order — through
//!   [`campaign::execute_observed`] with a per-campaign checkpoint
//!   journal, so simulation parallelism lives where it already is
//!   deterministic (the campaign engine's worker pool), never in the
//!   server;
//! * the **acceptor** polls a nonblocking listener, handing each
//!   connection to a short-lived handler thread
//!   ([`crate::router::handle_connection`]);
//! * handler threads read one request, write one response, and exit.
//!
//! # Crash safety
//!
//! Every admitted campaign is persisted as `<data_dir>/<id>/spec.json`
//! before its submission is acknowledged, and executes with a journal
//! at `<data_dir>/<id>/campaign.journal`; `campaign.json` is written
//! *last* of the artifacts, so its existence marks completion. On
//! start, [`Server::start`] rescans the data directory: completed
//! campaigns are rebuilt from their journals (streaming clients replay
//! the identical record lines), interrupted or still-queued ones are
//! re-admitted — the journal then skips every already-finished run, so
//! a `SIGKILL` mid-campaign costs at most the run that was in flight,
//! and the final artifacts are byte-identical to an uninterrupted
//! execution (pinned by `tests/tests/server_kill_resume.rs`).

use crate::queue::JobQueue;
use crate::registry::{CampaignState, Phase, Registry};
use crate::router;
use campaign::checkpoint::{fingerprint, read_journal};
use campaign::{wire, ExecutionOptions, FailurePolicy, SchedulerMode};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Poll interval of the accept loop and the shutdown drains.
const POLL: Duration = Duration::from_millis(10);
/// Bounded patience for connection handlers at shutdown (in [`POLL`]
/// ticks): ~5 s, then the process exits and the OS reaps them.
const DRAIN_TICKS: usize = 500;

/// Process-wide shutdown flag, set by signal handlers (the binary) or
/// [`request_shutdown`]; the serve loop in `main` polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a clean shutdown of the serving process (idempotent,
/// async-signal-safe: one atomic store).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether [`request_shutdown`] has been called.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub addr: String,
    /// Campaign state root: one subdirectory per campaign id, holding
    /// `spec.json`, `campaign.journal`, and the result artifacts.
    pub data_dir: PathBuf,
    /// Bounded submission-queue capacity (full → `503`).
    pub queue_capacity: usize,
    /// Simulation worker threads per campaign (`0` or `1` = in-line
    /// sequential execution; results are worker-count-invariant).
    pub workers: usize,
    /// Largest admissible campaign, in expanded runs.
    pub max_runs: usize,
    /// How pooled execution schedules runs onto workers (results are
    /// scheduler-invariant; this trades latency only).
    pub scheduler: SchedulerMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            data_dir: PathBuf::from("target/bh-serve"),
            queue_capacity: 8,
            // Keep two hardware threads for the server's own loops
            // (acceptor + executor); the rest simulate.
            workers: sim::service_pool_size(2),
            max_runs: 100_000,
            scheduler: SchedulerMode::default(),
        }
    }
}

/// Everything the server's threads share.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) registry: Registry,
    pub(crate) queue: JobQueue<Arc<CampaignState>>,
    pub(crate) executor_alive: AtomicBool,
    pub(crate) stop: AtomicBool,
    /// Serializes admission (idempotence check + spec persistence +
    /// enqueue) across connection handlers.
    pub(crate) submit_lock: Mutex<()>,
}

impl Shared {
    /// The state directory of campaign `id`.
    pub(crate) fn campaign_dir(&self, id: &str) -> PathBuf {
        self.config.data_dir.join(id)
    }

    /// Whether shutdown has begun (streaming loops poll this).
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running campaign server; dropping it without [`Server::stop`]
/// detaches the threads (the process is exiting anyway).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    notes: Vec<String>,
    executor: Option<thread::JoinHandle<()>>,
    acceptor: Option<thread::JoinHandle<()>>,
    connections: Arc<AtomicUsize>,
}

impl Server {
    /// Creates the data directory, recovers every campaign it already
    /// holds (see the module docs), binds the listener, and starts the
    /// executor and acceptor threads.
    ///
    /// # Errors
    ///
    /// Propagates data-directory and socket failures. Recovery problems
    /// with *individual* campaign directories are not fatal: they are
    /// reported via [`Server::notes`] and the directory is skipped.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&config.data_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            config,
            registry: Registry::new(),
            executor_alive: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            submit_lock: Mutex::new(()),
        });
        let notes = recover_campaigns(&shared);
        let executor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || executor_loop(&shared))
        };
        let connections = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            thread::spawn(move || accept_loop(&shared, &listener, &connections))
        };
        Ok(Self {
            shared,
            addr,
            notes,
            executor: Some(executor),
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration the server is running with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Human-readable recovery notes from startup (skipped directories,
    /// re-admitted campaigns).
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Clean shutdown: stops admitting, lets the in-flight campaign
    /// finish (its journal makes dying here recoverable, but finishing
    /// is politer), closes the listener, and drains connection handlers
    /// for a bounded time.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        for _ in 0..DRAIN_TICKS {
            if self.connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(POLL);
        }
    }
}

/// Rescans the data directory at startup; returns human-readable notes.
fn recover_campaigns(shared: &Shared) -> Vec<String> {
    let mut notes = Vec::new();
    let Ok(entries) = std::fs::read_dir(&shared.config.data_dir) else {
        return notes;
    };
    // Sort for a deterministic recovery (and thus re-admission) order.
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match recover_one(shared, &dir, &name) {
            Ok(Some(note)) => notes.push(note),
            Ok(None) => {}
            Err(message) => notes.push(format!("skipping {name}: {message}")),
        }
    }
    notes
}

/// Recovers one campaign directory; `Ok(Some(note))` describes what was
/// done, `Ok(None)` means not a campaign directory, `Err` means skip.
fn recover_one(
    shared: &Shared,
    dir: &std::path::Path,
    name: &str,
) -> Result<Option<String>, String> {
    let spec_path = dir.join("spec.json");
    if !spec_path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&spec_path).map_err(|e| format!("reading spec: {e}"))?;
    let spec = wire::spec_from_json(&text).map_err(|e| format!("parsing spec: {e}"))?;
    let id = format!("{:016x}", fingerprint(&spec));
    if id != name {
        return Err(format!(
            "directory name does not match spec fingerprint {id}"
        ));
    }
    if dir.join("campaign.json").is_file() {
        // Finished in a previous life: rebuild the streamable record
        // lines from the journal so late clients replay identically.
        let state = CampaignState::new(id.clone(), spec, Phase::Running);
        let scan = read_journal(
            &dir.join("campaign.journal"),
            fingerprint(&state.spec),
            state.total_runs as u64,
        )
        .map_err(|e| format!("reading journal of finished campaign: {e}"))?;
        let mut failed = 0usize;
        for entry in &scan.entries {
            if matches!(entry, campaign::JournalEntry::Failure(_)) {
                failed += 1;
            }
            state.record_entry(entry, true);
        }
        let phase = if failed > 0 {
            Phase::Degraded
        } else {
            Phase::Done
        };
        state.set_phase(phase, None);
        shared.registry.insert(state);
        return Ok(Some(format!(
            "recovered finished campaign {id} ({} records)",
            scan.entries.len()
        )));
    }
    // Interrupted mid-execution or never started: re-admit. The
    // checkpoint journal (if any) makes the re-execution resume.
    let state = CampaignState::new(id.clone(), spec, Phase::Queued);
    let state = shared.registry.insert(state);
    shared
        .queue
        .enqueue_unbounded(state)
        .map_err(|_| "queue closed during recovery".to_owned())?;
    Ok(Some(format!("re-admitted interrupted campaign {id}")))
}

/// Clears `executor_alive` when the executor exits — including by
/// panic, which is what `/healthz` surfaces as `executor_alive:false`.
struct AliveGuard<'a>(&'a Shared);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.executor_alive.store(false, Ordering::SeqCst);
    }
}

/// The executor thread: campaigns in admission order until the queue
/// closes.
fn executor_loop(shared: &Shared) {
    let _guard = AliveGuard(shared);
    while let Some(state) = shared.queue.pop() {
        run_campaign(shared, &state);
    }
}

/// Executes (or resumes) one campaign and writes its artifacts —
/// `campaign.json` last, as the completion marker.
fn run_campaign(shared: &Shared, state: &Arc<CampaignState>) {
    state.set_phase(Phase::Running, None);
    let dir = shared.campaign_dir(&state.id);
    let options = ExecutionOptions {
        policy: FailurePolicy::Quarantine,
        journal: Some(dir.join("campaign.journal")),
        scheduler: shared.config.scheduler,
    };
    let runs = state.spec.expand();
    let result = campaign::execute_observed(
        &state.spec,
        runs,
        shared.config.workers,
        &options,
        &mut |entry, replayed| state.record_entry(entry, replayed),
    );
    let report = match result {
        Ok(report) => report,
        Err(error) => {
            state.set_phase(Phase::Failed, Some(error.to_string()));
            return;
        }
    };
    state.set_scheduling(wire::scheduling_json(&report.scheduling));
    let artifacts = [
        ("stepping.csv", report.stepping_csv()),
        ("scheduling.csv", report.scheduling_csv()),
        ("campaign.csv", report.summary.to_csv()),
        ("campaign.json", report.summary.to_json()),
    ];
    for (file, contents) in artifacts {
        if let Err(error) = campaign::write_atomic(&dir.join(file), &contents) {
            state.set_phase(Phase::Failed, Some(format!("writing {file}: {error}")));
            return;
        }
    }
    let phase = if report.failures.is_empty() {
        Phase::Done
    } else {
        Phase::Degraded
    };
    state.set_phase(phase, None);
}

/// The acceptor thread: nonblocking accept polling the stop flag, one
/// short-lived handler thread per connection.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, connections: &Arc<AtomicUsize>) {
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                connections.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                let connections = Arc::clone(connections);
                thread::spawn(move || {
                    router::handle_connection(&shared, stream);
                    connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            // Transient accept errors (per-connection resets): back off
            // a tick and keep serving.
            Err(_) => thread::sleep(POLL),
        }
    }
}
