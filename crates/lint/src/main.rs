//! The `bh-lint` command-line entry point.
//!
//! * `bh-lint` — walk the workspace's product crates and manifests,
//!   print `file:line: rule — message` per finding, exit non-zero if
//!   any.
//! * `bh-lint --list-rules` — print the rule table (so CI logs are
//!   self-describing) and exit 0.
//! * `bh-lint --root <dir>` — lint an explicit workspace root instead
//!   of discovering one above the current directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                print_rules();
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("bh-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "bh-lint: workspace determinism & hot-path static analysis\n\n\
                     USAGE: bh-lint [--root <dir>] [--list-rules]\n\n\
                     Walks the product crates and every member manifest; exits\n\
                     non-zero on any finding. Suppress a finding with\n\
                     `// lint: allow(<rule>) -- <justification>` on (or directly\n\
                     above) the offending line; mark allocation-free regions with\n\
                     `// lint: alloc-free` before the function."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bh-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("bh-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match bh_lint::find_workspace_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("bh-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match bh_lint::run_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("bh-lint: clean ({} rules)", bh_lint::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("bh-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bh-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("bh-lint rules:");
    for rule in bh_lint::RULES {
        println!("\n  {:<18} {}", rule.id, rule.summary);
        // Wrap the detail text to keep CI logs readable.
        let mut line = String::from("    ");
        for word in rule.detail.split_whitespace() {
            if line.len() + word.len() > 78 {
                println!("{line}");
                line = String::from("    ");
            }
            line.push_str(word);
            line.push(' ');
        }
        println!("{line}");
    }
    println!(
        "\nSuppression grammar: `// lint: allow(<rule>[, <rule>...]) -- <justification>`\n\
         on the offending line or alone on the line above. Alloc-free regions are\n\
         opened with `// lint: alloc-free` before the function."
    );
}
