//! A comment- and string-aware scrubber for Rust source text.
//!
//! `bh-lint`'s rules are token-pattern checks, so the one piece of real
//! lexing the tool needs is deciding what *is* code: the scrubber walks a
//! file once and produces, per line,
//!
//! * the line's **code** with every comment removed and the contents of
//!   every string/char literal blanked out (the quotes remain, so the
//!   shape of the line survives but `"panic!"` inside a literal can never
//!   match a rule), and
//! * the text of the line's **line comments**, from which lint markers
//!   (`// lint: allow(rule) -- why`, `// lint: alloc-free`) are parsed.
//!
//! The scrubber understands line comments, nested block comments, doc
//! comments (stripped like any comment; markers are only recognized in
//! plain `//` comments), string literals with escapes, raw strings with
//! any number of `#`s, byte/raw-byte strings, char and byte-char
//! literals, and distinguishes lifetimes (`'a`) from char literals.
//!
//! It never fails: any byte sequence produces *some* scrub (pinned by a
//! property test), because a linter that panics on weird input is worse
//! than one that mis-lexes it.

use std::fmt;

/// A lint marker parsed from a `// lint: ...` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// `// lint: allow(rule, ...) -- justification`: suppress the named
    /// rules on the marker's target line. A missing or empty
    /// justification is itself reported (rule `suppression`).
    Allow {
        /// The rule identifiers inside the parentheses.
        rules: Vec<String>,
        /// The text after `--`, if any.
        justification: Option<String>,
    },
    /// `// lint: alloc-free`: the next block (typically the following
    /// `fn` body) is an allocation-free region.
    AllocFree,
    /// A `lint:` comment that parses as neither of the above — reported
    /// so a typo cannot silently disable checking.
    Malformed(String),
}

/// One source line after scrubbing.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedLine {
    /// The line's code: comments removed, literal contents blanked.
    pub code: String,
    /// Markers parsed from the line's plain `//` comments.
    pub markers: Vec<Marker>,
}

/// A whole file after scrubbing, 0-indexed by line.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedFile {
    /// The scrubbed lines, in order.
    pub lines: Vec<ScrubbedLine>,
}

/// A contiguous region of lines with special lint semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// What the region means.
    pub kind: RegionKind,
    /// First line of the region (0-based, inclusive) — the line holding
    /// the opening brace.
    pub start: usize,
    /// Last line of the region (0-based, inclusive). For an unterminated
    /// region this is the file's last line.
    pub end: usize,
}

/// The kinds of region the span model tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// `#[cfg(test)]` items and `mod tests` blocks: rules that only
    /// govern product code do not apply here.
    Test,
    /// A `// lint: alloc-free` block: allocation is banned inside.
    AllocFree,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Test => f.write_str("test"),
            RegionKind::AllocFree => f.write_str("alloc-free"),
        }
    }
}

/// Lexer state while walking the raw text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Plain code.
    Code,
    /// Inside `// ...` until end of line. `doc` strips `///` and `//!`
    /// (markers are only read from plain comments).
    LineComment { doc: bool },
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment { depth: u32 },
    /// Inside `"..."`.
    Str,
    /// Inside `r##"..."##` (or `br##"..."##`) with `hashes` `#`s.
    RawStr { hashes: u32 },
    /// Inside `'...'` (only entered for genuine char literals).
    Char,
}

/// Scrubs `source`: strips comments, blanks literal contents, collects
/// `lint:` markers per line. Total function — never panics, whatever the
/// input (see the lexer property tests).
pub fn scrub(source: &str) -> ScrubbedFile {
    let mut lines = Vec::new();
    let mut current = ScrubbedLine::default();
    let mut comment_text = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match state {
                State::LineComment { doc } => {
                    if !doc {
                        if let Some(marker) = parse_marker(&comment_text) {
                            current.markers.push(marker);
                        }
                    }
                    comment_text.clear();
                    state = State::Code;
                }
                // Multi-line constructs keep their state across the break;
                // block-comment text is not marker-eligible, string content
                // stays blanked.
                State::BlockComment { .. } | State::Str | State::RawStr { .. } | State::Char => {}
                State::Code => {}
            }
            lines.push(std::mem::take(&mut current));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        let doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                        state = State::LineComment { doc };
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment { depth: 1 };
                        i += 2;
                    }
                    '"' => {
                        current.code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        // Consume the prefix (`r`, `b`, `br`, `rb`) and
                        // hashes up to the opening quote.
                        let mut j = i;
                        while matches!(chars.get(j), Some('r') | Some('b')) {
                            current.code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            current.code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            current.code.push('"');
                            state = State::RawStr { hashes };
                            i = j + 1;
                        } else {
                            // `r#ident` (raw identifier) or stray prefix —
                            // already emitted, carry on as code.
                            i = j;
                        }
                    }
                    'b' if next == Some('"') => {
                        current.code.push('b');
                        current.code.push('"');
                        state = State::Str;
                        i += 2;
                    }
                    'b' if next == Some('\'') => {
                        current.code.push('b');
                        current.code.push('\'');
                        state = State::Char;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal_start(&chars, i) {
                            current.code.push('\'');
                            state = State::Char;
                        } else {
                            // A lifetime: keep it as code.
                            current.code.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        current.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment { .. } => {
                comment_text.push(c);
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        State::BlockComment { depth: depth - 1 }
                    } else {
                        State::Code
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char (covers \" and \\) — unless it
                    // is a line continuation (`\` at end of line), whose
                    // newline must still advance the line counter.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    current.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    current.code.push('"');
                    for _ in 0..hashes {
                        current.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    // As in `Str`: never swallow a newline with the escape.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '\'' {
                    current.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Flush the final (unterminated) line and any trailing line comment.
    if let State::LineComment { doc: false } = state {
        if let Some(marker) = parse_marker(&comment_text) {
            current.markers.push(marker);
        }
    }
    lines.push(current);
    ScrubbedFile { lines }
}

/// Whether position `i` (pointing at `r` or `b`) starts a raw string:
/// one of `r"`, `r#`, `br"`, `br#`, `rb` is not valid Rust but treated
/// leniently. Raw identifiers (`r#match`) are excluded by requiring the
/// hashes (if any) to be followed by a quote.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    // Accept at most one `b` and one `r`, in either order, to keep the
    // scanner total; real Rust only has `r`, `br`.
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                saw_r = true;
                j += 1;
            }
            Some('b') => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    // `r"..."` or `r#..#"..."`; `r#ident` has hashes but no quote.
    chars.get(j) == Some(&'"')
}

/// Whether the `'` at `i` starts a char literal rather than a lifetime:
/// `'\...'`, `'x'`, but not `'a` in `&'a str` or `'static`.
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) => {
            if c == '\'' {
                // `''` — malformed, treat as literal so we resync at the
                // closing quote.
                true
            } else {
                chars.get(i + 2) == Some(&'\'')
            }
        }
        None => false,
    }
}

/// Whether the `"` at `i` closes a raw string with `hashes` `#`s (i.e. is
/// followed by exactly that many hashes).
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Parses one plain line comment's text into a marker, if it is one.
/// Returns `None` for ordinary comments; malformed `lint:` directives
/// become [`Marker::Malformed`] so they are reported, not ignored.
fn parse_marker(comment: &str) -> Option<Marker> {
    let text = comment.trim();
    let directive = text.strip_prefix("lint:")?.trim();
    if directive == "alloc-free" {
        return Some(Marker::AllocFree);
    }
    if let Some(rest) = directive.strip_prefix("allow") {
        let rest = rest.trim_start();
        if let Some(rest) = rest.strip_prefix('(') {
            if let Some(close) = rest.find(')') {
                let rules: Vec<String> = rest[..close]
                    .split(',')
                    .map(|r| r.trim().to_owned())
                    .filter(|r| !r.is_empty())
                    .collect();
                let tail = rest[close + 1..].trim();
                let justification = tail
                    .strip_prefix("--")
                    .map(|j| j.trim().to_owned())
                    .filter(|j| !j.is_empty());
                if !rules.is_empty() {
                    return Some(Marker::Allow {
                        rules,
                        justification,
                    });
                }
            }
        }
    }
    Some(Marker::Malformed(text.to_owned()))
}

/// Computes the file's test and alloc-free regions from its scrubbed
/// lines, by brace matching.
///
/// A region trigger — `#[cfg(test)]` (including `cfg(all(test, ...))`),
/// `mod tests`, or a [`Marker::AllocFree`] — arms the *next* `{` at or
/// below the trigger's brace depth; the region spans to the matching
/// `}`. A `;` at the trigger's depth before any `{` disarms it (e.g.
/// `#[cfg(test)] use ...;`). Unterminated regions extend to the end of
/// the file, so a truncated file fails closed (its tail is still
/// linted as whatever region was open — conservative for alloc-free,
/// lenient for test; both are heuristics a human reviews).
pub fn regions(file: &ScrubbedFile) -> Vec<Region> {
    #[derive(Debug)]
    struct Open {
        kind: RegionKind,
        start: usize,
        depth: u32,
    }
    let mut finished = Vec::new();
    let mut open: Vec<Open> = Vec::new();
    let mut armed: Vec<(RegionKind, u32)> = Vec::new();
    let mut depth: u32 = 0;
    for (line_no, line) in file.lines.iter().enumerate() {
        if line.markers.contains(&Marker::AllocFree) {
            armed.push((RegionKind::AllocFree, depth));
        }
        let code = line.code.as_str();
        if code.contains("cfg(test") || code.contains("cfg(all(test") {
            armed.push((RegionKind::Test, depth));
        }
        if is_test_mod_line(code) {
            armed.push((RegionKind::Test, depth));
        }
        for c in code.chars() {
            match c {
                '{' => {
                    // Every trigger armed at this depth opens here; a
                    // `#[cfg(test)] mod tests {` line arms Test twice, so
                    // open at most one region per kind.
                    let mut opened: Vec<RegionKind> = Vec::new();
                    armed.retain(|&(kind, d)| {
                        if d == depth {
                            if !opened.contains(&kind) {
                                opened.push(kind);
                            }
                            false
                        } else {
                            true
                        }
                    });
                    for kind in opened {
                        open.push(Open {
                            kind,
                            start: line_no,
                            depth,
                        });
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(pos) = open.iter().rposition(|o| o.depth == depth) {
                        let o = open.remove(pos);
                        finished.push(Region {
                            kind: o.kind,
                            start: o.start,
                            end: line_no,
                        });
                    }
                    // Triggers armed deeper than the block that just
                    // closed can never legally fire; drop them.
                    armed.retain(|&(_, d)| d <= depth);
                }
                ';' => {
                    // An item ended without a block: disarm triggers armed
                    // at this depth.
                    armed.retain(|&(_, d)| d != depth);
                }
                _ => {}
            }
        }
    }
    let last = file.lines.len().saturating_sub(1);
    for o in open {
        finished.push(Region {
            kind: o.kind,
            start: o.start,
            end: last,
        });
    }
    finished.sort_by_key(|r| (r.start, r.end));
    finished
}

/// Whether a scrubbed line declares a `tests` module (`mod tests {`,
/// `pub(crate) mod tests`, ...), the conventional unit-test container.
fn is_test_mod_line(code: &str) -> bool {
    let mut tokens = code.split_whitespace().peekable();
    while let Some(token) = tokens.next() {
        if token == "mod" {
            if let Some(next) = tokens.peek() {
                let name = next.trim_end_matches('{').trim_end_matches(';');
                return name == "tests";
            }
        }
    }
    false
}

/// Whether `line` (0-based) lies inside any region of `kind`.
pub fn in_region(regions: &[Region], kind: RegionKind, line: usize) -> bool {
    regions
        .iter()
        .any(|r| r.kind == kind && r.start <= line && line <= r.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(source: &str) -> Vec<String> {
        scrub(source).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers_aligned() {
        // A `\` at end of line inside a string escapes the newline for
        // the compiler, but the scrubber must still count the line —
        // every later finding would otherwise be off by one.
        let lines = code_lines("let s = \"a,\\\n b\";\nlet t = 1;\n");
        assert_eq!(lines.len(), 4, "three lines plus the trailing flush");
        assert_eq!(lines[2], "let t = 1;");
    }

    #[test]
    fn line_comments_are_stripped_and_literals_blanked() {
        let lines = code_lines("let x = 1; // trailing\nlet s = \"panic!()\";\n");
        assert_eq!(lines[0], "let x = 1; ");
        assert_eq!(lines[1], "let s = \"\";");
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let lines = code_lines("a /* one /* two */ still comment */ b\n");
        assert_eq!(lines[0], "a  b");
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = code_lines("before /* x\n .unwrap() \n*/ after\n");
        assert_eq!(lines[0], "before ");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], " after");
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let lines = code_lines("let s = r#\"has \"quotes\" and panic!\"#;\n");
        assert_eq!(lines[0], "let s = r#\"\"#;");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = code_lines("let s = \"a\\\"b.unwrap()\"; let t = 1;\n");
        assert_eq!(lines[0], "let s = \"\"; let t = 1;");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = code_lines("fn f<'a>(x: &'a str) -> &'static str { x }\n");
        assert_eq!(lines[0], "fn f<'a>(x: &'a str) -> &'static str { x }");
        let lines = code_lines("let c = 'x'; let nl = '\\n'; // done\n");
        assert_eq!(lines[0], "let c = ''; let nl = ''; ");
    }

    #[test]
    fn allow_markers_parse_with_justification() {
        let file = scrub("foo(); // lint: allow(panic-freedom) -- invariant: pool is live\n");
        assert_eq!(
            file.lines[0].markers,
            vec![Marker::Allow {
                rules: vec!["panic-freedom".to_owned()],
                justification: Some("invariant: pool is live".to_owned()),
            }]
        );
    }

    #[test]
    fn allow_without_justification_has_none() {
        let file = scrub("// lint: allow(determinism)\n");
        assert_eq!(
            file.lines[0].markers,
            vec![Marker::Allow {
                rules: vec!["determinism".to_owned()],
                justification: None,
            }]
        );
    }

    #[test]
    fn markers_inside_strings_are_not_markers() {
        let file = scrub("let s = \"// lint: allow(x) -- nope\";\n");
        assert!(file.lines[0].markers.is_empty());
    }

    #[test]
    fn markers_inside_doc_comments_are_ignored() {
        let file = scrub("/// lint: allow(determinism) -- doc text\nfn f() {}\n");
        assert!(file.lines[0].markers.is_empty());
    }

    #[test]
    fn malformed_lint_directives_are_flagged() {
        let file = scrub("// lint: alow(determinism) -- typo\n");
        assert!(matches!(file.lines[0].markers[0], Marker::Malformed(_)));
    }

    #[test]
    fn cfg_test_region_covers_the_mod_block() {
        let src = "fn product() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let file = scrub(src);
        let regions = regions(&file);
        assert_eq!(regions.len(), 1);
        let r = regions[0];
        assert_eq!(r.kind, RegionKind::Test);
        assert_eq!((r.start, r.end), (2, 4));
        assert!(!in_region(&regions, RegionKind::Test, 0));
        assert!(in_region(&regions, RegionKind::Test, 3));
        assert!(!in_region(&regions, RegionKind::Test, 5));
    }

    #[test]
    fn cfg_test_on_a_use_statement_is_disarmed() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { body(); }\n";
        let file = scrub(src);
        let regions = regions(&file);
        assert!(
            regions.is_empty(),
            "a braceless cfg(test) item must not capture the next block: {regions:?}"
        );
    }

    #[test]
    fn alloc_free_marker_covers_the_next_fn() {
        let src =
            "// lint: alloc-free\nfn hot(&mut self) {\n    work();\n}\nfn cold() { Vec::new(); }\n";
        let file = scrub(src);
        let regions = regions(&file);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].kind, RegionKind::AllocFree);
        assert_eq!((regions[0].start, regions[0].end), (1, 3));
    }

    #[test]
    fn unterminated_region_fails_closed_to_eof() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n";
        let file = scrub(src);
        let regions = regions(&file);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end, file.lines.len() - 1);
    }
}
