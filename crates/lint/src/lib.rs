//! `bh-lint`: a dependency-free static-analysis pass enforcing the
//! workspace's determinism and hot-path invariants.
//!
//! Every performance PR in this repository stakes its correctness on
//! bit-identical results across scheduler policies, stepping modes and
//! worker counts — the property BlockHammer's blacklisting-threshold
//! math (and therefore the paper's security argument) rests on. This
//! crate mechanizes the rules that protect that property instead of
//! defending it only with after-the-fact equivalence tests:
//!
//! * **determinism** — no `HashMap`/`HashSet` iteration, no wall-clock
//!   reads, no machine-dependent parallelism probes in product code;
//! * **alloc-free** — regions marked `// lint: alloc-free` (the defense
//!   and scheduler hot paths) must not allocate;
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!` escape hatches
//!   outside tests;
//! * **thread-discipline** — threads are created only in `sim::pool`
//!   and the campaign server's thread layer (`server::serve`);
//! * **recovery-discipline** — `catch_unwind`/`resume_unwind` only at
//!   the sanctioned isolation boundaries (`sim::pool`,
//!   `campaign::executor`);
//! * **hygiene** — no stray printing in library code, every crate opts
//!   into the workspace lints.
//!
//! Findings are suppressed per line with
//! `// lint: allow(<rule>) -- <justification>`; the justification is
//! mandatory and stale suppressions are themselves findings. The checks
//! are deliberately lexical (a scrubber, not a compiler — see
//! [`lexer`]): cheap enough to run on every `cargo test`, honest enough
//! to be reviewed, and escapable only through a justified allow.
//!
//! Run as `cargo run -p bh-lint --release` (walks the workspace's
//! product crates), or `bh-lint --list-rules` for the rule table. The
//! integration test `tests/tests/lint_clean.rs` keeps the tree clean.

pub mod lexer;
pub mod rules;

pub use rules::{Finding, RuleInfo, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The product crates `bh-lint` walks: everything whose code can affect
/// simulated results. Excluded by design: `crates/compat/*` (offline
/// registry stand-ins), `crates/bench` and `examples` (binaries that
/// print and time by nature), `tests` (test harness) and `crates/lint`
/// itself (a build tool, not simulation product).
pub const PRODUCT_CRATES: &[&str] = &[
    "bh-types",
    "blockhammer",
    "mitigations",
    "dram-sim",
    "memctrl",
    "llc",
    "cpu",
    "energy",
    "workloads",
    "sim",
    "campaign",
    "server",
];

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::NotFound`] if no ancestor is a workspace
/// root.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("no workspace root above {}", start.display()),
    ))
}

/// Recursively collects the `.rs` files under `dir`, sorted by path so
/// the walk itself is deterministic.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path relative to `root`, `/`-separated (for stable reporting and
/// allowlist matching across platforms).
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the whole workspace rooted at `root`: every product crate's
/// sources plus every workspace member's manifest. Findings come back
/// sorted by (file, line, rule).
///
/// # Errors
///
/// Propagates file-system errors (an unreadable tree is a failure, not
/// a clean pass).
pub fn run_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in PRODUCT_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            // Partial workspaces (test fixtures) lint only the crates
            // they contain; the real tree always has all of them, and
            // `tests/tests/lint_clean.rs` runs against it.
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let text = fs::read_to_string(&path)?;
            findings.extend(rules::lint_source(&relative(root, &path), &text));
        }
    }
    // Manifest hygiene: every workspace member opts into workspace lints.
    for manifest in workspace_member_manifests(root)? {
        let text = fs::read_to_string(&manifest)?;
        findings.extend(rules::lint_manifest(&relative(root, &manifest), &text));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// The workspace members' `Cargo.toml` paths, parsed from the root
/// manifest's `members = [...]` list.
fn workspace_member_manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let text = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = Vec::new();
    let mut in_members = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(root.join(piece).join("Cargo.toml"));
            }
            if line.contains(']') {
                break;
            }
        }
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/sim/src/lib.rs").is_file());
    }

    #[test]
    fn member_manifests_are_discovered() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let manifests = workspace_member_manifests(&root).unwrap();
        assert!(manifests.iter().all(|m| m.is_file()));
        assert!(
            manifests.len() >= 20,
            "expected every workspace member, got {}",
            manifests.len()
        );
    }
}
