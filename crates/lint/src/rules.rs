//! The rule engine: what `bh-lint` checks and how findings are reported
//! and suppressed.
//!
//! Every rule is a token-pattern check over [scrubbed](crate::lexer)
//! source — comments and literal contents can never match. Rules that
//! only govern product behaviour skip `#[cfg(test)]`/`mod tests`
//! regions. A finding on line N is suppressed by
//! `// lint: allow(<rule>) -- <justification>` on line N (trailing) or
//! alone on the nearest preceding marker line; the justification is
//! mandatory, and stale or malformed suppressions are themselves
//! findings, so an allow can never silently rot.

use crate::lexer::{self, Marker, Region, RegionKind, ScrubbedFile};
use std::fmt;

/// One rule violation (or suppression defect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, workspace-relative where possible.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A rule's identity and documentation, as printed by `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier, the name used in `lint: allow(...)`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// What exactly is banned, and where.
    pub detail: &'static str,
}

/// Rule identifiers.
pub const DETERMINISM: &str = "determinism";
/// See [`RULES`].
pub const ALLOC_FREE: &str = "alloc-free";
/// See [`RULES`].
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// See [`RULES`].
pub const THREAD_DISCIPLINE: &str = "thread-discipline";
/// See [`RULES`].
pub const RECOVERY_DISCIPLINE: &str = "recovery-discipline";
/// See [`RULES`].
pub const HYGIENE: &str = "hygiene";
/// See [`RULES`].
pub const SUPPRESSION: &str = "suppression";

/// The rule table, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: DETERMINISM,
        summary: "no nondeterministic iteration or clocks in product code",
        detail: "HashMap/HashSet iteration (.iter/.iter_mut/.keys/.values/.values_mut/\
                 .drain/.into_iter/.retain, `for _ in &map`) is banned on identifiers \
                 the file declares with a hash type; Instant::now and SystemTime are \
                 banned everywhere in product code; available_parallelism is allowed \
                 only in the auto-selection sites (sim/src/subsystem.rs, \
                 campaign/src/executor.rs).",
    },
    RuleInfo {
        id: ALLOC_FREE,
        summary: "no allocation inside `// lint: alloc-free` regions",
        detail: "Within a marked block: Vec::new, vec![, format!, .to_string(, \
                 .to_owned(, Box::new, .collect(, .clone( are banned. Mark the hot \
                 functions of defense and scheduler crates.",
    },
    RuleInfo {
        id: PANIC_FREEDOM,
        summary: "no panicking escape hatches in product code",
        detail: ".unwrap(), .expect(, panic!, unreachable!, todo!, unimplemented! are \
                 banned outside test regions; convert to Result/debug_assert! or \
                 justify the invariant with an allow.",
    },
    RuleInfo {
        id: THREAD_DISCIPLINE,
        summary: "thread creation only at the sanctioned spawn sites",
        detail: "thread::spawn, thread::scope and thread::Builder are banned outside \
                 crates/sim/src/pool.rs and crates/sim/src/pool/queue.rs (the \
                 deterministic worker pools, slot-pinned and work-stealing) and \
                 crates/server/src/serve.rs (the campaign server's accept/executor \
                 threads, which never touch simulated state directly).",
    },
    RuleInfo {
        id: RECOVERY_DISCIPLINE,
        summary: "unwind recovery only at the sanctioned isolation boundaries",
        detail: "catch_unwind and resume_unwind are banned outside the worker pools \
                 (crates/sim/src/pool.rs, crates/sim/src/pool/queue.rs) and the \
                 campaign run-isolation boundary (crates/campaign/src/executor.rs): \
                 scattered unwind recovery hides real failures and corrupts \
                 half-stepped state. A deliberate boundary elsewhere needs a \
                 justified allow.",
    },
    RuleInfo {
        id: HYGIENE,
        summary: "no stray printing; workspace lint opt-in",
        detail: "println!, print!, eprintln!, eprint!, dbg! are banned in library \
                 crates outside test regions; every workspace crate manifest must \
                 contain `[lints] workspace = true`.",
    },
    RuleInfo {
        id: SUPPRESSION,
        summary: "suppressions must be justified, well-formed and live",
        detail: "`// lint: allow(rule) -- justification` requires a non-empty \
                 justification and a known rule id, and must suppress at least one \
                 finding; malformed `lint:` directives are reported. Unsuppressable.",
    },
];

/// Files in which `available_parallelism` is legal: the PR 6
/// auto-selection sites (`SteppingMode::auto`, `campaign::default_workers`).
const PARALLELISM_ALLOWLIST: &[&str] = &[
    "crates/sim/src/subsystem.rs",
    "crates/campaign/src/executor.rs",
];

/// The files allowed to create threads: the deterministic worker pools
/// (slot-pinned and work-stealing), and the campaign server's thread
/// layer (acceptor, per-connection handlers, executor) — service
/// plumbing that hands all simulation work to the pool-backed campaign
/// executor. Allowlisting is by suffix, so the `pool/queue.rs` module
/// must be named explicitly (it does not match `pool.rs`).
const THREAD_ALLOWLIST: &[&str] = &[
    "crates/sim/src/pool.rs",
    "crates/sim/src/pool/queue.rs",
    "crates/server/src/serve.rs",
];

/// Files allowed to catch or re-raise unwinds: the worker pools (worker
/// death recovery) and the campaign executor (per-run isolation).
const RECOVERY_ALLOWLIST: &[&str] = &[
    "crates/sim/src/pool.rs",
    "crates/sim/src/pool/queue.rs",
    "crates/campaign/src/executor.rs",
];

/// Tokens banned inside alloc-free regions.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec![",
    "format!",
    ".to_string(",
    ".to_owned(",
    "Box::new",
    ".collect(",
    ".clone(",
];

/// Tokens banned by panic-freedom.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Tokens banned by thread-discipline.
const THREAD_TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Tokens banned by recovery-discipline.
const RECOVERY_TOKENS: &[&str] = &["catch_unwind", "resume_unwind"];

/// Macros banned by hygiene in library code.
const PRINT_TOKENS: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];

/// Hash-iteration methods banned by determinism.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Whether `path` (workspace-relative, `/`-separated) ends with one of
/// the allowlisted suffixes.
fn allowlisted(path: &str, allowlist: &[&str]) -> bool {
    allowlist.iter().any(|suffix| path.ends_with(suffix))
}

/// Lints one product-crate source file. `path` should be
/// workspace-relative with `/` separators (used for allowlists and
/// reporting).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let file = lexer::scrub(source);
    let regions = lexer::regions(&file);
    let hash_names = collect_hash_names(&file);
    let mut raw = Vec::new();
    for (index, line) in file.lines.iter().enumerate() {
        let line_no = index + 1;
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let in_test = lexer::in_region(&regions, RegionKind::Test, index);
        if !in_test {
            check_determinism(path, line_no, code, &hash_names, &mut raw);
            check_panic_freedom(path, line_no, code, &mut raw);
            check_thread_discipline(path, line_no, code, &mut raw);
            check_recovery_discipline(path, line_no, code, &mut raw);
            check_hygiene_code(path, line_no, code, &mut raw);
            if lexer::in_region(&regions, RegionKind::AllocFree, index) {
                check_alloc_free(path, line_no, code, &mut raw);
            }
        }
    }
    apply_suppressions(path, &file, &regions, raw)
}

/// Lints a workspace-member manifest: it must opt into the shared
/// workspace lints.
pub fn lint_manifest(path: &str, source: &str) -> Vec<Finding> {
    let mut has_lints = false;
    let mut in_lints = false;
    for line in source.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            has_lints = true;
        }
    }
    if has_lints {
        Vec::new()
    } else {
        vec![Finding {
            file: path.to_owned(),
            line: 1,
            rule: HYGIENE,
            message: "crate does not opt into workspace lints (add `[lints]\\nworkspace = true`)"
                .to_owned(),
        }]
    }
}

// ---------------------------------------------------------------------------
// Individual rule checks
// ---------------------------------------------------------------------------

/// Identifiers this file declares with a hash-table type, via
/// `name: HashMap<...>` / `name: HashSet<...>` (fields, lets, params) or
/// `name = HashMap::new()` / `HashMap::with_capacity`.
fn collect_hash_names(file: &ScrubbedFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let code = line.code.as_str();
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // `name: HashMap<` (possibly through wrappers like
                // `Option<HashMap<...>>`) or `name = HashMap::new()`.
                if let Some(name) = binder_before(code, at) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// The identifier being bound when a hash type appears at `at`: scans
/// left past `:`/`=` (and any type wrappers in between) to the nearest
/// `ident :` or `ident =` at the same nesting.
fn binder_before(code: &str, at: usize) -> Option<String> {
    let head = &code[..at];
    // Find the last `:` or `=` before the type (skipping `::`). Only
    // transparent wrappers may sit between the binder and the hash type:
    // `x: Option<HashMap<..>>` still binds `x` to a map, but
    // `x: Vec<HashMap<..>>` does not — iterating `x` walks the Vec.
    let bytes = head.as_bytes();
    let mut i = head.len();
    let mut word_end: Option<usize> = None;
    while i > 0 {
        i -= 1;
        let c = bytes[i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            if word_end.is_none() {
                word_end = Some(i + 1);
            }
            continue;
        }
        if let Some(end) = word_end.take() {
            if !matches!(
                &head[i + 1..end],
                "Option" | "Box" | "std" | "collections" | "mut"
            ) {
                // An opaque container (`Vec`, `VecDeque`, ...) between the
                // binder and the hash type: the binder is not itself a map.
                return None;
            }
        }
        match c {
            b':' => {
                if i > 0 && bytes[i - 1] == b':' {
                    // `::` path separator — the type is qualified
                    // (`std::collections::HashMap`); keep scanning left.
                    i -= 1;
                    continue;
                }
                return ident_ending_at(head, i);
            }
            b'=' => {
                // Not `==`, `=>`, `<=`, `>=`, `!=`, `+=`, ...
                if i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!' | b'+' | b'-') {
                    return None;
                }
                return ident_ending_at(head, i);
            }
            // Type wrappers and whitespace between the binder and the
            // hash type are fine (`x: Option<HashMap<...>>`).
            b' ' | b'<' | b'&' | b'\'' | b'(' => continue,
            _ => return None,
        }
    }
    None
}

/// The identifier whose last char sits just before byte `before`
/// (skipping trailing spaces and a `mut ` keyword).
fn ident_ending_at(head: &str, before: usize) -> Option<String> {
    let trimmed = head[..before].trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let ident = &trimmed[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    if ident == "mut" {
        // `let mut name = HashMap::new()` — step past the keyword.
        return ident_ending_at(trimmed, trimmed.len() - 3);
    }
    // Type positions (`Option<HashMap>`, `Vec<HashSet<..>>`) start with
    // an uppercase letter by convention; binders are snake_case.
    if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    Some(ident.to_owned())
}

/// The identifier immediately preceding byte offset `at` (exclusive),
/// i.e. the receiver's last path segment in `recv.method(`.
fn receiver_before(code: &str, at: usize) -> Option<&str> {
    let head = &code[..at];
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let ident = &head[start..];
    (!ident.is_empty()).then_some(ident)
}

fn check_determinism(
    path: &str,
    line_no: usize,
    code: &str,
    hash_names: &[String],
    out: &mut Vec<Finding>,
) {
    let mut push = |message: String| {
        out.push(Finding {
            file: path.to_owned(),
            line: line_no,
            rule: DETERMINISM,
            message,
        })
    };
    for clock in ["Instant::now", "SystemTime"] {
        if code.contains(clock) {
            push(format!(
                "`{clock}` in product code: simulated results must not depend on wall-clock time"
            ));
        }
    }
    if code.contains("available_parallelism") && !allowlisted(path, PARALLELISM_ALLOWLIST) {
        push(
            "`available_parallelism` outside the auto-selection sites makes behaviour \
             machine-dependent"
                .to_owned(),
        );
    }
    if hash_names.is_empty() {
        return;
    }
    // `recv.method(` where recv is a known hash-typed name.
    for method in HASH_ITER_METHODS {
        let needle = format!(".{method}(");
        let mut from = 0;
        while let Some(pos) = code[from..].find(&needle) {
            let at = from + pos;
            from = at + needle.len();
            if let Some(recv) = receiver_before(code, at) {
                if hash_names.iter().any(|n| n == recv) {
                    push(format!(
                        "`{recv}.{method}()` iterates a HashMap/HashSet in nondeterministic \
                         order; use a BTreeMap/sorted drain or justify order-independence"
                    ));
                }
            }
        }
    }
    // `for _ in &map` / `for _ in map` over a known hash-typed name.
    if let Some(for_pos) = find_keyword(code, "for") {
        if let Some(in_rel) = find_keyword(&code[for_pos..], "in") {
            let after_in = &code[for_pos + in_rel + 2..];
            let expr: String = after_in
                .trim_start()
                .chars()
                .take_while(|&c| c != '{')
                .collect();
            let expr = expr
                .trim()
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim();
            if expr.contains("..") {
                // A range expression (`0..banks`) never iterates a map,
                // whatever its operands are named.
                return;
            }
            let last_segment = expr.rsplit('.').next().unwrap_or(expr);
            if hash_names.iter().any(|n| n == last_segment) {
                push(format!(
                    "`for _ in {expr}` iterates a HashMap/HashSet in nondeterministic order"
                ));
            }
        }
    }
}

/// Finds `word` in `code` at word boundaries.
fn find_keyword(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        from = at + word.len();
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + word.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

fn check_alloc_free(path: &str, line_no: usize, code: &str, out: &mut Vec<Finding>) {
    for token in ALLOC_TOKENS {
        if code.contains(token) {
            out.push(Finding {
                file: path.to_owned(),
                line: line_no,
                rule: ALLOC_FREE,
                message: format!("`{token}` inside an alloc-free region"),
            });
        }
    }
}

fn check_panic_freedom(path: &str, line_no: usize, code: &str, out: &mut Vec<Finding>) {
    for token in PANIC_TOKENS {
        if code.contains(token) {
            // `debug_assert!`-style macros contain no banned token;
            // `.expect(` must not fire on `.expect_err(` (it cannot:
            // the token includes the open paren right after `expect`).
            out.push(Finding {
                file: path.to_owned(),
                line: line_no,
                rule: PANIC_FREEDOM,
                message: format!(
                    "`{token}` in product code; return a Result, use debug_assert!, or \
                     justify the invariant"
                ),
            });
        }
    }
}

fn check_thread_discipline(path: &str, line_no: usize, code: &str, out: &mut Vec<Finding>) {
    if allowlisted(path, THREAD_ALLOWLIST) {
        return;
    }
    for token in THREAD_TOKENS {
        if code.contains(token) {
            out.push(Finding {
                file: path.to_owned(),
                line: line_no,
                rule: THREAD_DISCIPLINE,
                message: format!(
                    "`{token}` outside the sanctioned spawn sites (sim::pool, \
                     server::serve); route parallelism through the worker pool"
                ),
            });
        }
    }
}

fn check_recovery_discipline(path: &str, line_no: usize, code: &str, out: &mut Vec<Finding>) {
    if allowlisted(path, RECOVERY_ALLOWLIST) {
        return;
    }
    for token in RECOVERY_TOKENS {
        if code.contains(token) {
            out.push(Finding {
                file: path.to_owned(),
                line: line_no,
                rule: RECOVERY_DISCIPLINE,
                message: format!(
                    "`{token}` outside the sanctioned isolation boundaries (sim::pool, \
                     campaign::executor); justify the boundary or let the unwind propagate"
                ),
            });
        }
    }
}

fn check_hygiene_code(path: &str, line_no: usize, code: &str, out: &mut Vec<Finding>) {
    for token in PRINT_TOKENS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(token) {
            let at = from + pos;
            from = at + token.len();
            // `println!` contains `print!` as a substring at offset 2 —
            // require a non-ident char before the token so each macro is
            // reported once, under its own name.
            let bytes = code.as_bytes();
            let standalone =
                at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
            if standalone {
                out.push(Finding {
                    file: path.to_owned(),
                    line: line_no,
                    rule: HYGIENE,
                    message: format!("`{token}` in library code"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Applies `lint: allow` markers to `raw` findings and appends the
/// suppression-rule findings (missing justification, unknown rule,
/// stale allow, malformed directive).
fn apply_suppressions(
    path: &str,
    file: &ScrubbedFile,
    _regions: &[Region],
    raw: Vec<Finding>,
) -> Vec<Finding> {
    /// One allow marker and the line (1-based) whose findings it governs.
    struct Allow {
        marker_line: usize,
        target_line: usize,
        rules: Vec<String>,
        justified: bool,
        used: bool,
    }
    let mut allows: Vec<Allow> = Vec::new();
    let mut out: Vec<Finding> = Vec::new();
    for (index, line) in file.lines.iter().enumerate() {
        let line_no = index + 1;
        for marker in &line.markers {
            match marker {
                Marker::Allow {
                    rules,
                    justification,
                } => {
                    // Trailing comment governs its own line; a marker on
                    // an otherwise empty line governs the next line that
                    // has code.
                    let target_line = if line.code.trim().is_empty() {
                        file.lines
                            .iter()
                            .enumerate()
                            .skip(index + 1)
                            .find(|(_, l)| !l.code.trim().is_empty())
                            .map_or(line_no, |(i, _)| i + 1)
                    } else {
                        line_no
                    };
                    for rule in rules {
                        if !RULES.iter().any(|r| r.id == rule) {
                            out.push(Finding {
                                file: path.to_owned(),
                                line: line_no,
                                rule: SUPPRESSION,
                                message: format!("allow names unknown rule `{rule}`"),
                            });
                        } else if rule == SUPPRESSION {
                            out.push(Finding {
                                file: path.to_owned(),
                                line: line_no,
                                rule: SUPPRESSION,
                                message: "the suppression rule cannot be suppressed".to_owned(),
                            });
                        }
                    }
                    let justified = justification.is_some();
                    if !justified {
                        out.push(Finding {
                            file: path.to_owned(),
                            line: line_no,
                            rule: SUPPRESSION,
                            message: "allow without a justification (`-- <why>` is mandatory)"
                                .to_owned(),
                        });
                    }
                    allows.push(Allow {
                        marker_line: line_no,
                        target_line,
                        rules: rules.clone(),
                        justified,
                        used: false,
                    });
                }
                Marker::AllocFree => {}
                Marker::Malformed(text) => {
                    out.push(Finding {
                        file: path.to_owned(),
                        line: line_no,
                        rule: SUPPRESSION,
                        message: format!("malformed lint directive `// {text}`"),
                    });
                }
            }
        }
    }
    for finding in raw {
        let suppressed = allows.iter_mut().any(|allow| {
            if allow.target_line == finding.line
                && allow.justified
                && allow.rules.iter().any(|r| r == finding.rule)
            {
                allow.used = true;
                true
            } else {
                false
            }
        });
        if !suppressed {
            out.push(finding);
        }
    }
    for allow in &allows {
        if allow.justified && !allow.used {
            out.push(Finding {
                file: path.to_owned(),
                line: allow.marker_line,
                rule: SUPPRESSION,
                message: format!(
                    "stale allow: no {} finding on line {} to suppress",
                    allow.rules.join("/"),
                    allow.target_line
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out
}
