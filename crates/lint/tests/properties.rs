//! Property tests for the scrubber: totality on arbitrary input, and
//! marker text inside literals or block comments never parsing as a
//! marker.

use bh_lint::lexer::{scrub, Marker};
use proptest::collection;
use proptest::prelude::*;

/// Marker-shaped payloads to smuggle into places markers must not be
/// read from.
const PAYLOADS: &[&str] = &[
    "lint: allow(determinism) -- smuggled",
    "lint: alloc-free",
    "lint: allow(panic-freedom, hygiene) -- two rules",
    "lint: allow()",
];

fn all_markers(source: &str) -> Vec<Marker> {
    scrub(source)
        .lines
        .into_iter()
        .flat_map(|line| line.markers)
        .collect()
}

proptest! {
    #[test]
    fn scrub_is_total_on_arbitrary_bytes(bytes in collection::vec(0u32..256, 0..240)) {
        // Lossy-decode random bytes: exercises broken UTF-8 boundaries,
        // stray quotes, half-open comments — scrub must always return.
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let source = String::from_utf8_lossy(&raw);
        let file = scrub(&source);
        prop_assert_eq!(file.lines.len(), source.split('\n').count());
    }

    #[test]
    fn scrub_is_total_on_code_shaped_text(
        pieces in collection::vec(0u32..12, 0..60),
    ) {
        // Random concatenations of lexer-relevant fragments: every state
        // transition gets hit, including unterminated constructs at EOF.
        const FRAGMENTS: &[&str] = &[
            "\"", "'", "\\", "//", "/*", "*/", "r#\"", "\n", "b'x'",
            "lint: allow(x) -- y", "fn f() {", "}",
        ];
        let source: String = pieces
            .iter()
            .map(|&i| FRAGMENTS[i as usize % FRAGMENTS.len()])
            .collect();
        let file = scrub(&source);
        prop_assert_eq!(file.lines.len(), source.split('\n').count());
    }

    #[test]
    fn markers_inside_string_literals_are_never_detected(
        which in 0u32..4,
        prefix in 0u32..3,
    ) {
        let payload = PAYLOADS[which as usize];
        // `// lint: ...` inside a plain, raw, or byte string literal is
        // data, not a directive.
        let source = match prefix {
            0 => format!("let s = \"// {payload}\";\n"),
            1 => format!("let s = r#\"// {payload}\"#;\n"),
            _ => format!("let s = b\"// {payload}\";\n"),
        };
        prop_assert!(all_markers(&source).is_empty(), "leaked from {source}");
    }

    #[test]
    fn markers_inside_block_comments_are_never_detected(
        which in 0u32..4,
        depth in 1u32..4,
    ) {
        let payload = PAYLOADS[which as usize];
        // `lint:` text anywhere inside a (nested) block comment is not a
        // directive — markers are only read from plain `//` comments.
        let open = "/*".repeat(depth as usize);
        let close = "*/".repeat(depth as usize);
        let source = format!("let x = 1; {open} // {payload}\n {payload} {close} let y = 2;\n");
        prop_assert!(all_markers(&source).is_empty(), "leaked from {source}");
        // The code on both sides of the comment survives the scrub.
        let file = scrub(&source);
        prop_assert!(file.lines[0].code.contains("let x = 1;"));
        prop_assert!(file.lines[1].code.contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_never_yield_markers(which in 0u32..4) {
        let payload = PAYLOADS[which as usize];
        let source = format!("/// {payload}\n//! {payload}\nfn f() {{}}\n");
        prop_assert!(all_markers(&source).is_empty());
    }
}
