//! One seeded-violation fixture per rule: each fixture is a minimal
//! workspace holding exactly one violation, and the test pins that the
//! rule fires exactly once, on the right file and line — and that the
//! `bh-lint` binary exits non-zero on it (and zero on a clean tree).

use bh_lint::rules::{
    ALLOC_FREE, DETERMINISM, HYGIENE, PANIC_FREEDOM, RECOVERY_DISCIPLINE, SUPPRESSION,
    THREAD_DISCIPLINE,
};
use bh_lint::{run_workspace, Finding};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A throw-away workspace under the target's temp dir, deleted on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// Creates a one-crate workspace: `crates/<krate>/src/lib.rs` holds
    /// `source`, and the member manifest opts into workspace lints (so
    /// the hygiene rule stays quiet unless a fixture wants it).
    fn new(name: &str, krate: &str, source: &str) -> Self {
        let root = std::env::temp_dir()
            .join("bh-lint-fixtures")
            .join(format!("{name}-{}", std::process::id()));
        let crate_dir = root.join("crates").join(krate);
        fs::create_dir_all(crate_dir.join("src")).expect("create fixture tree");
        fs::write(
            root.join("Cargo.toml"),
            format!("[workspace]\nmembers = [\"crates/{krate}\"]\n"),
        )
        .expect("write root manifest");
        fs::write(
            crate_dir.join("Cargo.toml"),
            format!("[package]\nname = \"{krate}\"\n\n[lints]\nworkspace = true\n"),
        )
        .expect("write member manifest");
        fs::write(crate_dir.join("src/lib.rs"), source).expect("write fixture source");
        Self { root }
    }

    fn findings(&self) -> Vec<Finding> {
        run_workspace(&self.root).expect("fixture tree is readable")
    }

    /// The one finding the fixture seeds; panics if it is not alone.
    fn single_finding(&self) -> Finding {
        let findings = self.findings();
        assert_eq!(
            findings.len(),
            1,
            "expected exactly one finding, got: {findings:?}"
        );
        findings.into_iter().next().expect("len checked")
    }

    /// Exit status of the real binary run over this fixture.
    fn binary_exit(&self) -> i32 {
        let status = Command::new(env!("CARGO_BIN_EXE_bh-lint"))
            .arg("--root")
            .arg(&self.root)
            .output()
            .expect("run bh-lint binary");
        status.status.code().expect("bh-lint exited with a code")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn assert_single(fixture: &Fixture, rule: &str, file: &str, line: usize) {
    let finding = fixture.single_finding();
    assert_eq!(finding.rule, rule);
    assert_eq!(finding.file, file);
    assert_eq!(finding.line, line, "wrong span: {finding}");
    assert_ne!(fixture.binary_exit(), 0, "binary must fail on {rule}");
}

#[test]
fn determinism_fixture_fires_once_on_hash_iteration() {
    let fixture = Fixture::new(
        "determinism",
        "sim",
        "use std::collections::HashMap;\n\
         pub fn sum(m: &HashMap<u64, u64>) -> u64 {\n\
         \x20   let mut total = 0;\n\
         \x20   for (_, v) in m.iter() {\n\
         \x20       total += v;\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    );
    assert_single(&fixture, DETERMINISM, "crates/sim/src/lib.rs", 4);
}

#[test]
fn alloc_free_fixture_fires_once_inside_marked_region() {
    let fixture = Fixture::new(
        "alloc-free",
        "blockhammer",
        "// lint: alloc-free\n\
         pub fn hot() -> usize {\n\
         \x20   let scratch = vec![0u8; 4];\n\
         \x20   scratch.len()\n\
         }\n\
         pub fn cold() -> Vec<u8> {\n\
         \x20   vec![1, 2, 3]\n\
         }\n",
    );
    // Only the marked region is checked: `cold` allocates freely.
    assert_single(&fixture, ALLOC_FREE, "crates/blockhammer/src/lib.rs", 3);
}

#[test]
fn panic_freedom_fixture_fires_once_outside_tests() {
    let fixture = Fixture::new(
        "panic-freedom",
        "memctrl",
        "pub fn first(v: &[u8]) -> u8 {\n\
         \x20   *v.first().unwrap()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn in_tests_unwrap_is_fine() {\n\
         \x20       assert_eq!(Some(1).unwrap(), 1);\n\
         \x20   }\n\
         }\n",
    );
    assert_single(&fixture, PANIC_FREEDOM, "crates/memctrl/src/lib.rs", 2);
}

#[test]
fn thread_discipline_fixture_fires_once_outside_pool() {
    let fixture = Fixture::new(
        "thread-discipline",
        "llc",
        "pub fn sneaky() {\n\
         \x20   std::thread::spawn(|| {}).join().ok();\n\
         }\n",
    );
    // The spawn also carries no panic token, so the one finding is the
    // thread rule.
    assert_single(&fixture, THREAD_DISCIPLINE, "crates/llc/src/lib.rs", 2);
}

#[test]
fn thread_discipline_allows_serve_but_flags_the_rest_of_server() {
    // A two-file `server` crate: the sanctioned spawn site
    // (`src/serve.rs`) spawns cleanly, while the same spawn in
    // `src/router.rs` — one directory over — still fires.
    let fixture = Fixture::new(
        "thread-server",
        "server",
        "pub mod router;\npub mod serve;\n",
    );
    let src = fixture.root.join("crates/server/src");
    fs::write(
        src.join("serve.rs"),
        "pub fn acceptor() {\n\
         \x20   std::thread::spawn(|| {}).join().ok();\n\
         }\n",
    )
    .expect("write serve fixture");
    fs::write(
        src.join("router.rs"),
        "pub fn sneaky() {\n\
         \x20   std::thread::spawn(|| {}).join().ok();\n\
         }\n",
    )
    .expect("write router fixture");
    assert_single(
        &fixture,
        THREAD_DISCIPLINE,
        "crates/server/src/router.rs",
        2,
    );
}

#[test]
fn both_disciplines_allow_the_stealing_queue_but_flag_its_siblings() {
    // The work-stealing pool lives in `src/pool/queue.rs` — a *nested*
    // module whose path does not suffix-match `pool.rs`, so it is
    // allowlisted by name. Its spawn + catch_unwind are clean; the same
    // pair one module over (`src/subsystem.rs`) fires both rules.
    let fixture = Fixture::new(
        "stealing-queue",
        "sim",
        "pub mod pool;\npub mod subsystem;\n",
    );
    let src = fixture.root.join("crates/sim/src");
    fs::create_dir_all(src.join("pool")).expect("create pool module dir");
    fs::write(src.join("pool.rs"), "pub mod queue;\n").expect("write pool shim");
    fs::write(
        src.join("pool/queue.rs"),
        "pub fn puller() -> bool {\n\
         \x20   std::thread::spawn(|| std::panic::catch_unwind(|| {}).is_ok())\n\
         \x20       .join()\n\
         \x20       .unwrap_or(false)\n\
         }\n",
    )
    .expect("write queue fixture");
    fs::write(
        src.join("subsystem.rs"),
        "pub fn sneaky() -> bool {\n\
         \x20   std::thread::spawn(|| std::panic::catch_unwind(|| {}).is_ok())\n\
         \x20       .join()\n\
         \x20       .unwrap_or(false)\n\
         }\n",
    )
    .expect("write subsystem fixture");
    let findings = fixture.findings();
    assert_eq!(findings.len(), 2, "got: {findings:?}");
    assert!(findings
        .iter()
        .all(|f| f.file == "crates/sim/src/subsystem.rs" && f.line == 2));
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&THREAD_DISCIPLINE));
    assert!(rules.contains(&RECOVERY_DISCIPLINE));
    assert_ne!(fixture.binary_exit(), 0);
}

#[test]
fn recovery_discipline_fixture_fires_once_outside_the_boundaries() {
    let fixture = Fixture::new(
        "recovery-discipline",
        "mitigations",
        "pub fn risky() -> bool {\n\
         \x20   std::panic::catch_unwind(|| {}).is_ok()\n\
         }\n",
    );
    assert_single(
        &fixture,
        RECOVERY_DISCIPLINE,
        "crates/mitigations/src/lib.rs",
        2,
    );
}

#[test]
fn recovery_discipline_is_silent_in_the_sanctioned_files() {
    // The same source under the campaign executor's path is clean: the
    // run-isolation boundary is allowed to catch unwinds.
    let fixture = Fixture::new(
        "recovery-allowlist",
        "campaign",
        "pub fn boundary() -> bool {\n\
         \x20   std::panic::catch_unwind(|| {}).is_ok()\n\
         }\n",
    );
    // Relocate the source to the allowlisted executor path.
    let src = fixture.root.join("crates/campaign/src");
    fs::rename(src.join("lib.rs"), src.join("executor.rs")).expect("rename fixture source");
    fs::write(src.join("lib.rs"), "pub mod executor;\n").expect("write lib shim");
    assert_eq!(fixture.findings(), Vec::new());
}

#[test]
fn hygiene_fixture_fires_once_on_println() {
    let fixture = Fixture::new(
        "hygiene",
        "energy",
        "pub fn report(x: u64) {\n\
         \x20   println!(\"x = {x}\");\n\
         }\n",
    );
    assert_single(&fixture, HYGIENE, "crates/energy/src/lib.rs", 2);
}

#[test]
fn hygiene_fixture_fires_once_on_missing_manifest_lints() {
    let fixture = Fixture::new("hygiene-manifest", "cpu", "pub fn quiet() {}\n");
    // Overwrite the member manifest without the `[lints]` table.
    fs::write(
        fixture.root.join("crates/cpu/Cargo.toml"),
        "[package]\nname = \"cpu\"\n",
    )
    .expect("rewrite manifest");
    assert_single(&fixture, HYGIENE, "crates/cpu/Cargo.toml", 1);
}

#[test]
fn suppression_fixture_fires_once_on_stale_allow() {
    let fixture = Fixture::new(
        "suppression-stale",
        "workloads",
        "// lint: allow(determinism) -- nothing here actually iterates\n\
         pub fn quiet() {}\n",
    );
    assert_single(&fixture, SUPPRESSION, "crates/workloads/src/lib.rs", 1);
}

#[test]
fn unjustified_allow_is_reported_and_does_not_suppress() {
    let fixture = Fixture::new(
        "suppression-unjustified",
        "dram-sim",
        "pub fn first(v: &[u8]) -> u8 {\n\
         \x20   // lint: allow(panic-freedom)\n\
         \x20   *v.first().unwrap()\n\
         }\n",
    );
    // An allow without a justification suppresses nothing: both the
    // defective directive and the original finding are reported.
    let findings = fixture.findings();
    assert_eq!(findings.len(), 2, "got: {findings:?}");
    assert_eq!(findings[0].rule, SUPPRESSION);
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[1].rule, PANIC_FREEDOM);
    assert_eq!(findings[1].line, 3);
    assert_ne!(fixture.binary_exit(), 0);
}

#[test]
fn justified_allow_silences_the_finding_and_the_binary_passes() {
    let fixture = Fixture::new(
        "justified-allow",
        "bh-types",
        "pub fn first(v: &[u8]) -> u8 {\n\
         \x20   // lint: allow(panic-freedom) -- callers pass non-empty slices\n\
         \x20   *v.first().unwrap()\n\
         }\n",
    );
    assert_eq!(fixture.findings(), Vec::new());
    assert_eq!(fixture.binary_exit(), 0, "binary must pass a clean tree");
}

#[test]
fn missing_root_is_a_usage_error_exit() {
    let missing = Path::new("/nonexistent/bh-lint-fixture");
    let output = Command::new(env!("CARGO_BIN_EXE_bh-lint"))
        .arg("--root")
        .arg(missing)
        .output()
        .expect("run bh-lint binary");
    assert_eq!(output.status.code(), Some(2));
}
