//! # memctrl
//!
//! A cycle-level DDR4 memory controller model with RowHammer-defense hook
//! points.
//!
//! The controller implements the system described in the BlockHammer
//! paper's methodology (Table 5): FR-FCFS scheduling with write draining,
//! 64-entry read and write queues, MOP address mapping, open-page row
//! buffer policy, and periodic all-bank refresh. A [`RowHammerDefense`]
//! (the trait from the `mitigations` crate) is consulted:
//!
//! * before every row activation (`is_activation_safe`) — proactive
//!   throttling defenses such as BlockHammer answer `false` to delay an
//!   unsafe activation;
//! * after every demand activation (`on_activation`) — reactive-refresh
//!   defenses return victim rows, which the controller turns into
//!   high-priority refresh traffic;
//! * on request admission (`inflight_quota`) — AttackThrottler-style
//!   defenses bound a thread's in-flight requests per bank.
//!
//! The FR-FCFS scheduling passes run over per-bank indexed queues by
//! default ([`SchedulerPolicy::BankedIndex`]); the flat
//! [`SchedulerPolicy::LinearScan`] reference implementation is retained
//! and makes bit-identical decisions (see the `scheduler` module docs).
//!
//! ## Example
//!
//! ```
//! use bh_types::{AccessType, ThreadId};
//! use memctrl::{MemCtrlConfig, MemoryController};
//! use mitigations::NoMitigation;
//!
//! let mut ctrl = MemoryController::new(MemCtrlConfig::default());
//! let mut defense = NoMitigation::new();
//! ctrl.enqueue(ThreadId::new(0), 0x4000, AccessType::Read, 0, &defense)
//!     .expect("queue has space");
//! let mut completed = Vec::new();
//! for cycle in 0..2_000 {
//!     completed.extend(ctrl.tick(cycle, &mut defense));
//! }
//! assert_eq!(completed.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controller;
mod queues;
mod scheduler;
mod stats;

pub use config::MemCtrlConfig;
pub use controller::{BatchAdmission, CompletedRequest, EnqueueError, MemoryController};
pub use mitigations::RowHammerDefense;
pub use scheduler::SchedulerPolicy;
pub use stats::CtrlStats;
