//! The FR-FCFS scheduling passes over the demand queues.
//!
//! [`Scheduler`] owns the read and write queues and answers the three
//! questions the controller asks every scheduling round, in priority
//! order:
//!
//! 1. *row hit* — the oldest request whose target row is already open and
//!    whose column command is legal now;
//! 2. *activation* — the oldest request to a precharged bank whose ACT is
//!    legal now and which the RowHammer defense does not veto;
//! 3. *conflict precharge* — the oldest request that needs a different row
//!    than the one its bank holds open, provided no queued request still
//!    wants the open row (the "first-ready" part of FR-FCFS).
//!
//! Two interchangeable implementations are provided, selected by
//! [`SchedulerPolicy`]:
//!
//! * [`SchedulerPolicy::LinearScan`] stores each queue as one flat vector
//!   and re-scans it per pass — the straightforward reference
//!   implementation, kept as the equivalence baseline and for the
//!   `controller_scheduling` benchmark's before/after comparison.
//! * [`SchedulerPolicy::BankedIndex`] buckets requests per global bank
//!   ([`BankedQueue`]) with an [`OpenRowCache`], so each pass touches only
//!   banks that have queued work and performs at most one command-legality
//!   check per bank instead of one per request.
//!
//! Both implementations make identical decisions, cycle for cycle: command
//! legality depends only on bank and rank state (never on the column), so
//! every per-request check the linear scan performs is constant across the
//! requests of one bank, and "oldest first" is recovered in the banked
//! representation by merging bucket heads by request id (ids are assigned
//! monotonically at admission). Defense hooks are consulted in the same
//! order as the linear scan would, so even stateful defenses observe an
//! identical call sequence. `tests/tests/scheduler_equivalence.rs` pins
//! this equivalence on randomized workloads.

use crate::queues::{BankedQueue, OpenRowCache};
use bh_types::{AccessType, Cycle, DramAddress, MemCommand, MemRequest, ReqId, RequestOrigin};
use dram_sim::DramDevice;
use mitigations::RowHammerDefense;
use serde::{Deserialize, Serialize};

/// How the controller's scheduling hot path scans the demand queues.
///
/// Both policies implement the same FR-FCFS semantics and make identical
/// decisions; they differ only in cost. See the [module](self)
/// documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// One flat vector per queue, re-scanned O(queue length) per pass.
    LinearScan,
    /// Per-bank FIFO buckets with an open-row cache; passes touch only
    /// banks that have work.
    #[default]
    BankedIndex,
}

/// Fields of a request the controller needs after deciding to activate:
/// the queue keeps the request (it completes later as a row hit), so the
/// scheduler hands back copies instead of removing it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActivationPick {
    pub thread: bh_types::ThreadId,
    pub addr: DramAddress,
    pub origin: RequestOrigin,
}

/// One demand queue in the representation its policy requires.
#[derive(Debug, Clone)]
enum QueueRepr {
    Linear(Vec<MemRequest>),
    Banked(BankedQueue),
}

impl QueueRepr {
    fn len(&self) -> usize {
        match self {
            QueueRepr::Linear(q) => q.len(),
            QueueRepr::Banked(q) => q.len(),
        }
    }
}

/// The demand queues plus the per-bank scheduling index. See the
/// [module](self) documentation.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    read: QueueRepr,
    write: QueueRepr,
    open_rows: OpenRowCache,
    banks_per_channel: usize,
    /// Scratch cursor list for `pick_activation`'s banked merge, kept
    /// across calls so the per-cycle pass never allocates.
    act_cursors: Vec<(usize, usize)>,
}

impl Scheduler {
    pub(crate) fn new(
        policy: SchedulerPolicy,
        total_banks: usize,
        banks_per_rank: usize,
        banks_per_channel: usize,
        read_capacity: usize,
        write_capacity: usize,
    ) -> Self {
        let make = |capacity: usize| match policy {
            SchedulerPolicy::LinearScan => QueueRepr::Linear(Vec::with_capacity(capacity)),
            SchedulerPolicy::BankedIndex => QueueRepr::Banked(BankedQueue::new(total_banks)),
        };
        Self {
            read: make(read_capacity),
            write: make(write_capacity),
            open_rows: OpenRowCache::new(total_banks, banks_per_rank),
            banks_per_channel,
            act_cursors: Vec::new(),
        }
    }

    fn queue(&self, kind: AccessType) -> &QueueRepr {
        match kind {
            AccessType::Read => &self.read,
            AccessType::Write => &self.write,
        }
    }

    fn queue_mut(&mut self, kind: AccessType) -> &mut QueueRepr {
        match kind {
            AccessType::Read => &mut self.read,
            AccessType::Write => &mut self.write,
        }
    }

    /// Occupancy of one queue.
    pub(crate) fn len(&self, kind: AccessType) -> usize {
        self.queue(kind).len()
    }

    /// Whether one queue is empty.
    pub(crate) fn is_empty(&self, kind: AccessType) -> bool {
        self.len(kind) == 0
    }

    /// Admits a request into its queue; `bank` is the request's global bank
    /// index.
    // lint: alloc-free
    pub(crate) fn push(&mut self, kind: AccessType, bank: usize, request: MemRequest) {
        match self.queue_mut(kind) {
            QueueRepr::Linear(q) => q.push(request),
            QueueRepr::Banked(q) => q.push(bank, request),
        }
    }

    /// Records the row-buffer effect of a command the controller issued on
    /// `bank` (keeps the open-row cache exact).
    // lint: alloc-free
    pub(crate) fn note_issue(&mut self, cmd: MemCommand, bank: usize, row: u64) {
        self.open_rows.note_issue(cmd, bank, row);
    }

    /// The cached open row of a global bank (debug cross-checks).
    #[cfg(debug_assertions)]
    pub(crate) fn cached_open_row(&self, bank: usize) -> Option<u64> {
        self.open_rows.get(bank)
    }

    /// Global banks belonging to `channel`, per the
    /// [`DramAddress::global_bank_index`] layout (channel bits on top).
    fn channel_banks(&self, channel: usize) -> std::ops::Range<usize> {
        let start = channel * self.banks_per_channel;
        start..start + self.banks_per_channel
    }

    /// Pass 1: removes and returns the oldest row-buffer hit of `channel`
    /// whose column command is legal at `now`.
    // lint: alloc-free
    pub(crate) fn take_row_hit(
        &mut self,
        kind: AccessType,
        channel: usize,
        now: Cycle,
        dram: &DramDevice,
    ) -> Option<MemRequest> {
        let cmd = match kind {
            AccessType::Read => MemCommand::Read,
            AccessType::Write => MemCommand::Write,
        };
        match self.queue(kind) {
            QueueRepr::Linear(q) => {
                let i = q.iter().position(|request| {
                    let addr = &request.dram_addr;
                    addr.channel() == channel
                        && dram.open_row(addr) == Some(addr.row())
                        && dram.can_issue(cmd, addr, now)
                })?;
                let QueueRepr::Linear(q) = self.queue_mut(kind) else {
                    // lint: allow(panic-freedom) -- queue representation is chosen once at construction and never changes
                    unreachable!("queue representation is fixed at construction");
                };
                Some(q.remove(i))
            }
            QueueRepr::Banked(q) => {
                let mut best: Option<(ReqId, usize, usize)> = None;
                for bank in self.channel_banks(channel) {
                    let bucket = q.bucket(bank);
                    if bucket.is_empty() {
                        continue;
                    }
                    let Some(open) = self.open_rows.get(bank) else {
                        continue;
                    };
                    let Some((pos, request)) = bucket
                        .iter()
                        .enumerate()
                        .find(|(_, r)| r.dram_addr.row() == open)
                    else {
                        continue;
                    };
                    // Column-command legality is identical for every
                    // same-row request of the bank, so one check suffices.
                    if !dram.can_issue(cmd, &request.dram_addr, now) {
                        continue;
                    }
                    if best.map_or(true, |(id, _, _)| request.id < id) {
                        best = Some((request.id, bank, pos));
                    }
                }
                let (_, bank, pos) = best?;
                let QueueRepr::Banked(q) = self.queue_mut(kind) else {
                    // lint: allow(panic-freedom) -- queue representation is chosen once at construction and never changes
                    unreachable!("queue representation is fixed at construction");
                };
                Some(q.remove(bank, pos))
            }
        }
    }

    /// Pass 2: the oldest request of `channel` to a precharged bank whose
    /// ACT is legal at `now` and which the defense does not veto. The
    /// request stays queued (it completes later as a row hit); `on_veto` is
    /// called for every request the defense skipped, in scan order.
    // lint: alloc-free
    pub(crate) fn pick_activation(
        &mut self,
        kind: AccessType,
        channel: usize,
        now: Cycle,
        dram: &DramDevice,
        defense: &mut dyn RowHammerDefense,
        mut on_veto: impl FnMut(ReqId),
    ) -> Option<ActivationPick> {
        // The banked path's cursor list lives on the scheduler so this
        // per-cycle pass never allocates (it reaches capacity — at most
        // banks-per-channel entries — after the first few calls).
        let mut cursors = std::mem::take(&mut self.act_cursors);
        cursors.clear();
        let result = match self.queue(kind) {
            QueueRepr::Linear(q) => 'linear: {
                for request in q {
                    let addr = &request.dram_addr;
                    if addr.channel() != channel
                        || dram.open_row(addr).is_some()
                        || !dram.can_issue(MemCommand::Activate, addr, now)
                    {
                        continue;
                    }
                    // The defense may veto (delay) this activation;
                    // skipping the request effectively prioritizes
                    // RowHammer-safe requests, as Section 3.1 describes.
                    if request.origin == RequestOrigin::Core
                        && !defense.is_activation_safe(now, request.thread, addr)
                    {
                        on_veto(request.id);
                        continue;
                    }
                    break 'linear Some(ActivationPick {
                        thread: request.thread,
                        addr: *addr,
                        origin: request.origin,
                    });
                }
                None
            }
            QueueRepr::Banked(q) => {
                // Banks whose ACT is legal now; eligibility is a bank-level
                // property (activation legality never depends on the row),
                // so it is decided once per bank.
                for bank in self.channel_banks(channel) {
                    let Some(front) = q.bucket(bank).front() else {
                        continue;
                    };
                    if self.open_rows.get(bank).is_some()
                        || !dram.can_issue(MemCommand::Activate, &front.dram_addr, now)
                    {
                        continue;
                    }
                    cursors.push((bank, 0));
                }
                // Merge the eligible buckets in request-id (arrival) order
                // so the defense sees candidates exactly as a linear scan
                // would present them.
                loop {
                    let mut best: Option<(usize, ReqId)> = None;
                    for (cursor, &(bank, pos)) in cursors.iter().enumerate() {
                        let id = q.bucket(bank)[pos].id;
                        if best.map_or(true, |(_, best_id)| id < best_id) {
                            best = Some((cursor, id));
                        }
                    }
                    let Some((cursor, _)) = best else {
                        break None;
                    };
                    let (bank, pos) = cursors[cursor];
                    let request = &q.bucket(bank)[pos];
                    if request.origin == RequestOrigin::Core
                        && !defense.is_activation_safe(now, request.thread, &request.dram_addr)
                    {
                        on_veto(request.id);
                        if pos + 1 < q.bucket(bank).len() {
                            cursors[cursor].1 = pos + 1;
                        } else {
                            cursors.swap_remove(cursor);
                        }
                        continue;
                    }
                    break Some(ActivationPick {
                        thread: request.thread,
                        addr: request.dram_addr,
                        origin: request.origin,
                    });
                }
            }
        };
        // Hand the buffer back for the next call.
        self.act_cursors = cursors;
        result
    }

    /// The earliest cycle at which any queued request of `channel` could
    /// advance through one of the three scheduling passes: a column
    /// command for a row hit, an ACT for a request to a precharged bank,
    /// or a PRE for a conflicting request. Event-driven stepping uses
    /// this as a wake-up candidate; it is conservative (a candidate may
    /// arrive before anything actually issues — e.g. a PRE held back by
    /// the still-wanted rule, or a defense veto — which costs an empty
    /// tick, never correctness), and since the controller asks for both
    /// queues every serving opportunity is covered regardless of drain
    /// mode.
    // lint: alloc-free
    pub(crate) fn next_demand_event(
        &self,
        kind: AccessType,
        channel: usize,
        dram: &DramDevice,
    ) -> Option<Cycle> {
        let cmd = match kind {
            AccessType::Read => MemCommand::Read,
            AccessType::Write => MemCommand::Write,
        };
        let mut best: Option<Cycle> = None;
        let mut merge = |candidate: Option<Cycle>| {
            if let Some(at) = candidate {
                best = Some(best.map_or(at, |b| b.min(at)));
            }
        };
        match self.queue(kind) {
            QueueRepr::Linear(q) => {
                for request in q {
                    let addr = &request.dram_addr;
                    if addr.channel() != channel {
                        continue;
                    }
                    merge(match dram.open_row(addr) {
                        Some(open) if open == addr.row() => dram.earliest_issue(cmd, addr),
                        Some(_) => dram.earliest_issue(MemCommand::Precharge, addr),
                        None => dram.earliest_issue(MemCommand::Activate, addr),
                    });
                }
            }
            QueueRepr::Banked(q) => {
                for bank in self.channel_banks(channel) {
                    let bucket = q.bucket(bank);
                    let Some(front) = bucket.front() else {
                        continue;
                    };
                    match self.open_rows.get(bank) {
                        None => {
                            // ACT legality is bank-level, one probe covers
                            // every request of the bucket.
                            merge(dram.earliest_issue(MemCommand::Activate, &front.dram_addr));
                        }
                        Some(open) => {
                            // Likewise, one column probe covers every
                            // same-row request and one PRE probe every
                            // conflicting one.
                            if let Some(hit) = bucket.iter().find(|r| r.dram_addr.row() == open) {
                                merge(dram.earliest_issue(cmd, &hit.dram_addr));
                            }
                            if let Some(conflict) =
                                bucket.iter().find(|r| r.dram_addr.row() != open)
                            {
                                merge(
                                    dram.earliest_issue(MemCommand::Precharge, &conflict.dram_addr),
                                );
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// Pass 3: the oldest request of `channel` conflicting with its bank's
    /// open row, provided no queued request (of either queue) still wants
    /// that open row and the PRE is legal at `now`. Returns the conflicting
    /// request's address (the PRE target).
    // lint: alloc-free
    pub(crate) fn pick_conflict_precharge(
        &self,
        kind: AccessType,
        channel: usize,
        now: Cycle,
        dram: &DramDevice,
    ) -> Option<DramAddress> {
        match (self.queue(kind), &self.read, &self.write) {
            (QueueRepr::Linear(q), QueueRepr::Linear(reads), QueueRepr::Linear(writes)) => {
                for request in q {
                    let addr = &request.dram_addr;
                    if addr.channel() != channel {
                        continue;
                    }
                    let Some(open) = dram.open_row(addr) else {
                        continue;
                    };
                    if open == addr.row() {
                        continue;
                    }
                    // Keep the row open while any queued request still hits
                    // it.
                    let still_wanted = reads.iter().chain(writes.iter()).any(|other| {
                        other.dram_addr.channel() == addr.channel()
                            && other.dram_addr.rank() == addr.rank()
                            && other.dram_addr.bank_group() == addr.bank_group()
                            && other.dram_addr.bank() == addr.bank()
                            && other.dram_addr.row() == open
                    });
                    if still_wanted {
                        continue;
                    }
                    if dram.can_issue(MemCommand::Precharge, addr, now) {
                        return Some(*addr);
                    }
                }
                None
            }
            (QueueRepr::Banked(q), QueueRepr::Banked(reads), QueueRepr::Banked(writes)) => {
                let mut best: Option<(ReqId, DramAddress)> = None;
                for bank in self.channel_banks(channel) {
                    let Some(open) = self.open_rows.get(bank) else {
                        continue;
                    };
                    let Some(request) = q.bucket(bank).iter().find(|r| r.dram_addr.row() != open)
                    else {
                        continue;
                    };
                    // "Still wanted" is a bank-level property: check the
                    // bank's own buckets only.
                    let still_wanted = reads
                        .bucket(bank)
                        .iter()
                        .chain(writes.bucket(bank).iter())
                        .any(|other| other.dram_addr.row() == open);
                    if still_wanted {
                        continue;
                    }
                    // PRE legality never depends on the row, so one check
                    // covers every conflicting request of the bank.
                    if !dram.can_issue(MemCommand::Precharge, &request.dram_addr, now) {
                        continue;
                    }
                    if best.map_or(true, |(id, _)| request.id < id) {
                        best = Some((request.id, request.dram_addr));
                    }
                }
                best.map(|(_, addr)| addr)
            }
            // lint: allow(panic-freedom) -- both queues share the representation chosen once at construction
            _ => unreachable!("both queues share one representation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_types::{ThreadId, TimeConverter};
    use dram_sim::{DramOrganization, DramTimings};
    use mitigations::NoMitigation;

    fn device() -> DramDevice {
        DramDevice::new(
            DramOrganization::default(),
            DramTimings::ddr4_2400().into_cycles(&TimeConverter::default()),
        )
    }

    fn scheduler(policy: SchedulerPolicy) -> Scheduler {
        let org = DramOrganization::default();
        Scheduler::new(
            policy,
            org.total_banks(),
            org.banks_per_rank(),
            org.banks_per_channel(),
            64,
            64,
        )
    }

    fn request(id: u64, bank_group: usize, bank: usize, row: u64) -> MemRequest {
        MemRequest::demand(
            id,
            ThreadId::new(0),
            0,
            DramAddress::new(0, 0, bank_group, bank, row, 0),
            AccessType::Read,
            id,
        )
    }

    fn bank_index(bank_group: usize, bank: usize) -> usize {
        let org = DramOrganization::default();
        DramAddress::new(0, 0, bank_group, bank, 0, 0).global_bank_index(
            org.ranks,
            org.bank_groups,
            org.banks_per_group,
        )
    }

    /// Opens `row` in the device bank and mirrors it in the scheduler.
    fn open(s: &mut Scheduler, dram: &mut DramDevice, bg: usize, bank: usize, row: u64, at: u64) {
        let addr = DramAddress::new(0, 0, bg, bank, row, 0);
        dram.issue(MemCommand::Activate, &addr, at);
        s.note_issue(MemCommand::Activate, bank_index(bg, bank), row);
    }

    #[test]
    fn banked_row_hit_picks_the_oldest_across_banks() {
        let mut dram = device();
        let mut s = scheduler(SchedulerPolicy::BankedIndex);
        // Open rows in two banks; the younger bank's hit arrived first.
        open(&mut s, &mut dram, 0, 0, 10, 0);
        let t = *dram.timings();
        open(&mut s, &mut dram, 1, 0, 20, t.t_rrd_s);
        s.push(AccessType::Read, bank_index(1, 0), request(5, 1, 0, 20));
        s.push(AccessType::Read, bank_index(0, 0), request(6, 0, 0, 10));
        let now = t.t_rrd_s + t.t_rcd; // both column commands legal
        let hit = s.take_row_hit(AccessType::Read, 0, now, &dram).unwrap();
        assert_eq!(hit.id, 5, "the oldest hit wins even in a later bank");
        assert_eq!(s.len(AccessType::Read), 1);
    }

    #[test]
    fn banked_activation_consults_the_defense_in_arrival_order() {
        let dram = device();
        let mut s = scheduler(SchedulerPolicy::BankedIndex);
        // Three requests to two precharged banks, ids out of bucket order.
        s.push(AccessType::Read, bank_index(2, 1), request(1, 2, 1, 7));
        s.push(AccessType::Read, bank_index(0, 0), request(2, 0, 0, 3));
        s.push(AccessType::Read, bank_index(2, 1), request(3, 2, 1, 9));
        /// Vetoes the first two candidates it is shown.
        #[derive(Debug)]
        struct VetoFirstTwo(u32);
        impl RowHammerDefense for VetoFirstTwo {
            fn name(&self) -> &'static str {
                "VetoFirstTwo"
            }
            fn is_activation_safe(
                &mut self,
                _now: Cycle,
                _thread: ThreadId,
                _addr: &DramAddress,
            ) -> bool {
                self.0 += 1;
                self.0 > 2
            }
            fn on_activation(
                &mut self,
                _now: Cycle,
                _thread: ThreadId,
                _addr: &DramAddress,
            ) -> Vec<DramAddress> {
                Vec::new()
            }
            fn metadata(&self) -> mitigations::MetadataFootprint {
                mitigations::MetadataFootprint::default()
            }
            fn stats(&self) -> mitigations::DefenseStats {
                mitigations::DefenseStats::default()
            }
        }
        let mut defense = VetoFirstTwo(0);
        let mut vetoed = Vec::new();
        let pick = s
            .pick_activation(AccessType::Read, 0, 0, &dram, &mut defense, |id| {
                vetoed.push(id);
            })
            .unwrap();
        assert_eq!(vetoed, vec![1, 2], "vetoes follow arrival order");
        assert_eq!(pick.addr.row(), 9, "the third-oldest request survives");
        assert_eq!(
            s.len(AccessType::Read),
            3,
            "activation keeps requests queued"
        );
    }

    #[test]
    fn banked_conflict_precharge_respects_still_wanted_rows() {
        let mut dram = device();
        let mut s = scheduler(SchedulerPolicy::BankedIndex);
        open(&mut s, &mut dram, 0, 0, 10, 0);
        let t = *dram.timings();
        open(&mut s, &mut dram, 1, 0, 30, t.t_rrd_s);
        // Bank (0,0): conflicting request, but row 10 is still wanted by a
        // queued write -> must not be precharged.
        s.push(AccessType::Read, bank_index(0, 0), request(1, 0, 0, 11));
        s.push(
            AccessType::Write,
            bank_index(0, 0),
            MemRequest::demand(
                2,
                ThreadId::new(1),
                0,
                DramAddress::new(0, 0, 0, 0, 10, 0),
                AccessType::Write,
                2,
            ),
        );
        // Bank (1,0): conflicting request, open row 30 wanted by nobody.
        s.push(AccessType::Read, bank_index(1, 0), request(3, 1, 0, 31));
        let now = t.t_rrd_s + t.t_ras; // PRE legal in both banks
        let pre = s
            .pick_conflict_precharge(AccessType::Read, 0, now, &dram)
            .unwrap();
        assert_eq!(pre.bank_group(), 1);
        assert_eq!(pre.row(), 31);
    }

    #[test]
    fn linear_and_banked_agree_on_a_small_mixed_queue() {
        for kind in [AccessType::Read, AccessType::Write] {
            let mut dram = device();
            let mut defense = NoMitigation::new();
            let mut linear = scheduler(SchedulerPolicy::LinearScan);
            let mut banked = scheduler(SchedulerPolicy::BankedIndex);
            open(&mut linear, &mut dram, 0, 0, 10, 0);
            banked.note_issue(MemCommand::Activate, bank_index(0, 0), 10);
            for (id, (bg, bank, row)) in [(0, 0, 10), (1, 1, 5), (0, 0, 11), (3, 2, 10)]
                .into_iter()
                .enumerate()
            {
                for s in [&mut linear, &mut banked] {
                    let mut r = request(id as u64, bg, bank, row);
                    r.access = kind;
                    s.push(kind, bank_index(bg, bank), r);
                }
            }
            let now = dram.timings().t_rcd;
            let a = linear.take_row_hit(kind, 0, now, &dram).map(|r| r.id);
            let b = banked.take_row_hit(kind, 0, now, &dram).map(|r| r.id);
            assert_eq!(a, b);
            let a = linear
                .pick_activation(kind, 0, now, &dram, &mut defense, |_| {})
                .map(|p| p.addr);
            let b = banked
                .pick_activation(kind, 0, now, &dram, &mut defense, |_| {})
                .map(|p| p.addr);
            assert_eq!(a, b);
            let a = linear.pick_conflict_precharge(kind, 0, now, &dram);
            let b = banked.pick_conflict_precharge(kind, 0, now, &dram);
            assert_eq!(a, b);
        }
    }
}
