//! The FR-FCFS memory controller.

use crate::config::MemCtrlConfig;
use crate::scheduler::Scheduler;
use crate::stats::CtrlStats;
use bh_types::{
    AccessType, Cycle, DramAddress, MemCommand, MemRequest, ReqId, RequestOrigin, ThreadId,
};
use dram_sim::{DramDevice, DramStats, IssueOutcome, TimingsInCycles};
use mitigations::RowHammerDefense;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Why a request could not be accepted into the controller queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target queue (read or write) is full; retry later.
    QueueFull,
    /// The issuing thread has reached its defense-imposed in-flight quota
    /// for the target bank (AttackThrottler); retry later.
    QuotaExceeded,
}

impl fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::QueueFull => f.write_str("memory controller queue is full"),
            EnqueueError::QuotaExceeded => {
                f.write_str("thread exceeded its in-flight request quota for the bank")
            }
        }
    }
}

impl Error for EnqueueError {}

/// Outcome of one [`MemoryController::enqueue_batch`] call: how many
/// requests were admitted and, if the batch stopped early, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAdmission {
    /// Requests admitted (in arrival order, from the front of the batch).
    pub accepted: usize,
    /// The rejection that ended the batch, if any. `None` means every item
    /// was admitted.
    pub rejection: Option<EnqueueError>,
}

/// A demand request that finished, reported back to the cache / core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: MemRequest,
    /// Cycle at which its data became available (reads) or its burst
    /// finished (writes).
    pub completed_at: Cycle,
}

/// The DDR4 memory controller.
///
/// See the crate-level documentation for the scheduling policy and the
/// defense hook points.
#[derive(Debug)]
pub struct MemoryController {
    config: MemCtrlConfig,
    timings: TimingsInCycles,
    dram: DramDevice,
    /// The demand queues plus the FR-FCFS scheduling index over them.
    scheduler: Scheduler,
    victim_queue: Vec<MemRequest>,
    /// Scheduled completions: (cycle, request), in command-issue order.
    pending_completions: Vec<(Cycle, MemRequest)>,
    /// In-flight demand requests per (thread, global bank). Entries are
    /// removed as soon as their count returns to zero, so the map's size is
    /// bounded by the number of currently queued requests rather than by
    /// every (thread, bank) pair the run ever touched.
    inflight: HashMap<(usize, usize), u32>,
    /// Next auto-refresh deadline per rank.
    next_refresh: Vec<Cycle>,
    /// Whether a refresh is overdue per rank.
    refresh_pending: Vec<bool>,
    /// Per-channel earliest cycle the next command may use the command bus.
    next_command_at: Vec<Cycle>,
    /// Whether the controller is currently draining writes.
    drain_mode: bool,
    /// Requests that have been skipped at least once due to the defense.
    delayed_by_defense: HashSet<ReqId>,
    next_req_id: ReqId,
    stats: CtrlStats,
}

impl MemoryController {
    /// Creates a controller from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`MemCtrlConfig::validate`] to check it fallibly first.
    pub fn new(config: MemCtrlConfig) -> Self {
        // lint: allow(panic-freedom) -- documented constructor contract; MemCtrlConfig::validate is the fallible path
        config.validate().expect("invalid memory controller config");
        let timings = config.timings.into_cycles(&config.clock);
        let dram = DramDevice::new(config.organization, timings);
        let ranks = config.organization.total_ranks();
        let channels = config.organization.channels;
        let scheduler = Scheduler::new(
            config.scheduler,
            config.organization.total_banks(),
            config.organization.banks_per_rank(),
            config.organization.banks_per_channel(),
            config.read_queue_capacity,
            config.write_queue_capacity,
        );
        Self {
            timings,
            dram,
            scheduler,
            victim_queue: Vec::new(),
            pending_completions: Vec::new(),
            inflight: HashMap::new(),
            next_refresh: vec![timings.t_refi; ranks],
            refresh_pending: vec![false; ranks],
            next_command_at: vec![0; channels],
            drain_mode: false,
            delayed_by_defense: HashSet::new(),
            next_req_id: 0,
            stats: CtrlStats::default(),
            config,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &MemCtrlConfig {
        &self.config
    }

    /// The timing parameters in simulation cycles.
    pub fn timings(&self) -> &TimingsInCycles {
        &self.timings
    }

    /// Enables per-activation logging in the DRAM statistics (safety
    /// verification).
    pub fn enable_activation_log(&mut self) {
        self.dram.enable_activation_log();
    }

    /// Number of requests currently queued or awaiting completion.
    pub fn pending_requests(&self) -> usize {
        self.scheduler.len(AccessType::Read)
            + self.scheduler.len(AccessType::Write)
            + self.victim_queue.len()
            + self.pending_completions.len()
    }

    /// Whether the controller has no work left.
    pub fn is_idle(&self) -> bool {
        self.pending_requests() == 0
    }

    /// Read-queue occupancy.
    pub fn read_queue_len(&self) -> usize {
        self.scheduler.len(AccessType::Read)
    }

    /// Write-queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.scheduler.len(AccessType::Write)
    }

    fn global_bank(&self, addr: &DramAddress) -> usize {
        let org = &self.config.organization;
        addr.global_bank_index(org.ranks, org.bank_groups, org.banks_per_group)
    }

    /// The single admission predicate shared by [`MemoryController::can_accept`],
    /// [`MemoryController::enqueue`] and [`MemoryController::enqueue_batch`],
    /// so they can never disagree on which rejection fires first: defense
    /// quota, then queue space. `quota` is the defense's in-flight limit
    /// for the `<thread, bank>` pair (batched callers amortize that trait
    /// call); `free_slots` is the remaining space in the target queue.
    fn admission_error_with(
        &self,
        thread: ThreadId,
        bank: usize,
        quota: Option<u32>,
        free_slots: usize,
    ) -> Option<EnqueueError> {
        if let Some(quota) = quota {
            let inflight = self
                .inflight
                .get(&(thread.index(), bank))
                .copied()
                .unwrap_or(0);
            if inflight >= quota {
                return Some(EnqueueError::QuotaExceeded);
            }
        }
        (free_slots == 0).then_some(EnqueueError::QueueFull)
    }

    /// Remaining slots in one demand queue.
    fn free_slots(&self, access: AccessType) -> usize {
        match access {
            AccessType::Read => self
                .config
                .read_queue_capacity
                .saturating_sub(self.read_queue_len()),
            AccessType::Write => self
                .config
                .write_queue_capacity
                .saturating_sub(self.write_queue_len()),
        }
    }

    fn admission_error(
        &self,
        thread: ThreadId,
        bank: usize,
        access: AccessType,
        defense: &dyn RowHammerDefense,
    ) -> Option<EnqueueError> {
        self.admission_error_with(
            thread,
            bank,
            defense.inflight_quota(thread, bank),
            self.free_slots(access),
        )
    }

    /// Whether a new demand request from `thread` for `phys_addr` would be
    /// accepted right now (defense quota and queue space).
    pub fn can_accept(
        &self,
        thread: ThreadId,
        phys_addr: u64,
        access: AccessType,
        defense: &dyn RowHammerDefense,
    ) -> bool {
        let addr = self
            .config
            .mapping
            .decode(&self.config.organization.geometry(), phys_addr);
        let bank = self.global_bank(&addr);
        self.admission_error(thread, bank, access, defense)
            .is_none()
    }

    /// Accepts a demand request into the controller.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError::QueueFull`] when the target queue has no
    /// space and [`EnqueueError::QuotaExceeded`] when the defense's
    /// in-flight quota for this thread/bank is exhausted.
    pub fn enqueue(
        &mut self,
        thread: ThreadId,
        phys_addr: u64,
        access: AccessType,
        now: Cycle,
        defense: &dyn RowHammerDefense,
    ) -> Result<ReqId, EnqueueError> {
        let mut id = None;
        let outcome = self.enqueue_batch(
            std::iter::once((thread, phys_addr, ())),
            access,
            now,
            defense,
            |req_id, ()| id = Some(req_id),
        );
        match id {
            Some(id) => Ok(id),
            None => Err(outcome
                .rejection
                // lint: allow(panic-freedom) -- admission invariant: a request that was not accepted always carries a rejection
                .expect("a request that was not accepted was rejected")),
        }
    }

    /// Admits requests from `items` in arrival order until the first
    /// rejection, amortizing the per-request admission work across the
    /// batch (the defense's in-flight quota is fetched once per
    /// `<thread, bank>` run instead of once per request, and queue space
    /// is tracked incrementally).
    ///
    /// Each item carries an opaque tag that is handed back through
    /// `on_accept` together with the assigned request id. Admission
    /// decisions, statistics and request ids are identical to calling
    /// [`MemoryController::enqueue`] once per item and stopping at the
    /// first error — `tests/tests/batch_admission.rs` pins this.
    pub fn enqueue_batch<T>(
        &mut self,
        items: impl IntoIterator<Item = (ThreadId, u64, T)>,
        access: AccessType,
        now: Cycle,
        defense: &dyn RowHammerDefense,
        mut on_accept: impl FnMut(ReqId, T),
    ) -> BatchAdmission {
        let geometry = self.config.organization.geometry();
        let mapping = self.config.mapping;
        let mut free_slots = self.free_slots(access);
        // One-entry quota cache: consecutive requests of one thread to one
        // bank (the common shape of a per-channel fetch queue) pay the
        // defense trait call once.
        let mut cached_quota: Option<((usize, usize), Option<u32>)> = None;
        let mut outcome = BatchAdmission {
            accepted: 0,
            rejection: None,
        };
        for (thread, phys_addr, tag) in items {
            let addr = mapping.decode(&geometry, phys_addr);
            let bank = self.global_bank(&addr);
            let key = (thread.index(), bank);
            let quota = match cached_quota {
                Some((cached_key, quota)) if cached_key == key => quota,
                _ => {
                    let quota = defense.inflight_quota(thread, bank);
                    cached_quota = Some((key, quota));
                    quota
                }
            };
            match self.admission_error_with(thread, bank, quota, free_slots) {
                Some(EnqueueError::QuotaExceeded) => {
                    self.stats.rejected_quota += 1;
                    outcome.rejection = Some(EnqueueError::QuotaExceeded);
                    break;
                }
                Some(EnqueueError::QueueFull) => {
                    self.stats.rejected_queue_full += 1;
                    outcome.rejection = Some(EnqueueError::QueueFull);
                    break;
                }
                None => {}
            }
            free_slots -= 1;
            let id = self.next_req_id;
            self.next_req_id += 1;
            let request = MemRequest::demand(id, thread, phys_addr, addr, access, now);
            *self.inflight.entry(key).or_insert(0) += 1;
            self.stats.accepted_requests += 1;
            self.scheduler.push(access, bank, request);
            on_accept(id, tag);
            outcome.accepted += 1;
        }
        outcome
    }

    /// Advances the controller by one cycle: completes finished requests,
    /// issues at most one DRAM command per channel, and consults the
    /// defense at every hook point.
    pub fn tick(
        &mut self,
        now: Cycle,
        defense: &mut dyn RowHammerDefense,
    ) -> Vec<CompletedRequest> {
        defense.tick(now);
        let completed = self.collect_completions(now);
        for channel in 0..self.config.organization.channels {
            if now < self.next_command_at[channel] {
                continue;
            }
            if self.try_issue_command(channel, now, defense) {
                self.next_command_at[channel] = now + self.config.command_bus_interval;
            }
        }
        completed
    }

    /// The earliest cycle after `now` at which [`MemoryController::tick`]
    /// could do observable work: the defense's next self-scheduled event,
    /// the next pending completion, or the next cycle a command slot
    /// could issue (or be consumed by) refresh, victim-refresh or demand
    /// work. `None` means the controller is fully idle (with refresh
    /// enabled this never happens — the next auto-refresh deadline is
    /// always a candidate).
    ///
    /// Event-driven stepping relies on this being *conservative*: every
    /// cycle at which `tick` would change observable state is covered by
    /// a candidate, so skipped cycles are provably no-ops (the per-channel
    /// command-bus gate makes them early-`continue`s). An early candidate
    /// only costs an empty tick, never correctness. Retry situations that
    /// resolve at an unknowable future cycle — a pending refresh waiting
    /// on tRAS, victim refreshes polling bank state, a defense-vetoed
    /// ACT — clamp to the very next eligible slot, reproducing lockstep's
    /// per-slot polling (and its per-poll statistics) exactly.
    pub fn next_event(&self, now: Cycle, defense: &dyn RowHammerDefense) -> Option<Cycle> {
        fn merge(best: &mut Option<Cycle>, candidate: Option<Cycle>) {
            if let Some(at) = candidate {
                *best = Some(best.map_or(at, |b| b.min(at)));
            }
        }
        let mut next: Option<Cycle> = None;
        // The defense's own schedule (epoch boundaries) and completion
        // collection both run unconditionally at the top of every tick.
        merge(&mut next, defense.next_event(now));
        merge(
            &mut next,
            self.pending_completions.iter().map(|&(at, _)| at).min(),
        );
        let org = self.config.organization;
        for channel in 0..org.channels {
            let mut slot: Option<Cycle> = None;
            if self.config.refresh_enabled {
                for rank_in_channel in 0..org.ranks {
                    let rank_idx = org.rank_index(channel, rank_in_channel);
                    if self.refresh_pending[rank_idx] {
                        // An overdue refresh consumes every slot until it
                        // issues (precharging open banks as their timings
                        // allow), so the very next slot matters.
                        merge(&mut slot, Some(now + 1));
                    } else {
                        merge(&mut slot, Some(self.next_refresh[rank_idx]));
                    }
                }
            }
            if !self.victim_queue.is_empty() {
                // Victim refreshes poll bank state per slot.
                merge(&mut slot, Some(now + 1));
            }
            for kind in [AccessType::Read, AccessType::Write] {
                merge(
                    &mut slot,
                    self.scheduler.next_demand_event(kind, channel, &self.dram),
                );
            }
            if let Some(at) = slot {
                // Nothing issues while the command bus is busy, and a
                // stale candidate still needs a future tick to act on.
                merge(
                    &mut next,
                    Some(at.max(now + 1).max(self.next_command_at[channel])),
                );
            }
        }
        next
    }

    /// Reports the requests whose completion cycle has been reached.
    /// Removal is stable, so requests completing on the same cycle are
    /// reported in the order their commands were issued (FIFO) — the
    /// downstream per-thread accounting observes this stream.
    fn collect_completions(&mut self, now: Cycle) -> Vec<CompletedRequest> {
        // Fast path for the common tick with nothing due: scan only.
        if self.pending_completions.iter().all(|&(at, _)| at > now) {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.pending_completions);
        let mut done = Vec::new();
        for (completed_at, request) in pending {
            if completed_at <= now {
                self.finish_request(&request, completed_at);
                done.push(CompletedRequest {
                    request,
                    completed_at,
                });
            } else {
                self.pending_completions.push((completed_at, request));
            }
        }
        done
    }

    fn finish_request(&mut self, request: &MemRequest, completed_at: Cycle) {
        let bank = self.global_bank(&request.dram_addr);
        if request.origin == RequestOrigin::Core {
            if let Entry::Occupied(mut entry) = self.inflight.entry((request.thread.index(), bank))
            {
                let count = entry.get_mut();
                *count = count.saturating_sub(1);
                if *count == 0 {
                    entry.remove();
                }
            }
            match request.access {
                AccessType::Read => {
                    let latency = completed_at.saturating_sub(request.arrival);
                    self.stats.record_read_completion(request.thread, latency);
                }
                AccessType::Write => self.stats.writes_completed += 1,
            }
        }
    }

    /// Attempts to issue one command on `channel`. Returns whether a
    /// command (or an internally-completed victim refresh) consumed the
    /// command slot.
    fn try_issue_command(
        &mut self,
        channel: usize,
        now: Cycle,
        defense: &mut dyn RowHammerDefense,
    ) -> bool {
        if self.config.refresh_enabled && self.handle_refresh(channel, now) {
            return true;
        }
        // Victim refreshes injected by the defense have priority: they are
        // the defense's security-critical traffic.
        if !self.victim_queue.is_empty() && self.serve_victim_queue(channel, now, defense) {
            return true;
        }
        // Write-drain hysteresis.
        if self.write_queue_len() >= self.config.write_drain_high {
            self.drain_mode = true;
        } else if self.write_queue_len() <= self.config.write_drain_low {
            self.drain_mode = false;
        }
        let serve_writes = self.drain_mode || self.scheduler.is_empty(AccessType::Read);
        if serve_writes && !self.scheduler.is_empty(AccessType::Write) {
            self.serve_demand_queue(AccessType::Write, channel, now, defense)
        } else if !self.scheduler.is_empty(AccessType::Read) {
            self.serve_demand_queue(AccessType::Read, channel, now, defense)
        } else {
            false
        }
    }

    /// Issues precharges / REF commands needed for overdue auto-refresh.
    /// Every rank of the channel is scanned before deciding: the first rank
    /// with an actionable pending refresh gets the command slot, and the
    /// slot is only held idle (blocking demand traffic, so no new
    /// activations can postpone the refresh further) when at least one rank
    /// has a pending refresh and *no* rank could issue anything for it.
    /// Returns whether a command slot was consumed.
    fn handle_refresh(&mut self, channel: usize, now: Cycle) -> bool {
        let org = self.config.organization;
        let mut pending_blocked = false;
        for rank_in_channel in 0..org.ranks {
            let rank_idx = org.rank_index(channel, rank_in_channel);
            if now >= self.next_refresh[rank_idx] {
                self.refresh_pending[rank_idx] = true;
            }
            if !self.refresh_pending[rank_idx] {
                continue;
            }
            // Any address within the rank works for rank-wide commands.
            let probe = DramAddress::new(channel, rank_in_channel, 0, 0, 0, 0);
            if self.dram.can_issue(MemCommand::Refresh, &probe, now) {
                self.issue_tracked(MemCommand::Refresh, &probe, now);
                self.stats.auto_refreshes += 1;
                self.refresh_pending[rank_idx] = false;
                self.next_refresh[rank_idx] += self.timings.t_refi;
                return true;
            }
            // Close any open bank so the refresh can proceed.
            for bg in 0..org.bank_groups {
                for ba in 0..org.banks_per_group {
                    let addr = DramAddress::new(channel, rank_in_channel, bg, ba, 0, 0);
                    if self.dram.open_row(&addr).is_some()
                        && self.dram.can_issue(MemCommand::Precharge, &addr, now)
                    {
                        self.issue_tracked(MemCommand::Precharge, &addr, now);
                        return true;
                    }
                }
            }
            // This rank's refresh is pending but nothing can be issued for
            // it yet; another rank may still be actionable.
            pending_blocked = true;
        }
        pending_blocked
    }

    /// Serves the defense's victim-refresh queue. A victim refresh is
    /// physically an activation of the victim row; a victim whose row is
    /// already open has effectively just been refreshed and completes
    /// without a command.
    fn serve_victim_queue(
        &mut self,
        channel: usize,
        now: Cycle,
        _defense: &mut dyn RowHammerDefense,
    ) -> bool {
        for i in 0..self.victim_queue.len() {
            let addr = self.victim_queue[i].dram_addr;
            if addr.channel() != channel {
                continue;
            }
            match self.dram.open_row(&addr) {
                Some(open) if open == addr.row() => {
                    // Row already open: the restore has just happened.
                    self.victim_queue.swap_remove(i);
                    self.stats.victim_refreshes_performed += 1;
                    return true;
                }
                Some(_) => {
                    if self.dram.can_issue(MemCommand::Precharge, &addr, now) {
                        self.issue_tracked(MemCommand::Precharge, &addr, now);
                        self.stats.row_conflicts += 1;
                        return true;
                    }
                }
                None => {
                    if self.dram.can_issue(MemCommand::Activate, &addr, now) {
                        self.issue_tracked(MemCommand::Activate, &addr, now);
                        self.victim_queue.swap_remove(i);
                        self.stats.victim_refreshes_performed += 1;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// FR-FCFS over one demand queue. Returns whether a command was issued.
    fn serve_demand_queue(
        &mut self,
        kind: AccessType,
        channel: usize,
        now: Cycle,
        defense: &mut dyn RowHammerDefense,
    ) -> bool {
        // Pass 1: oldest row-buffer hit.
        if let Some(request) = self.scheduler.take_row_hit(kind, channel, now, &self.dram) {
            let cmd = match kind {
                AccessType::Read => MemCommand::Read,
                AccessType::Write => MemCommand::Write,
            };
            let outcome = self.issue_tracked(cmd, &request.dram_addr, now);
            self.stats.row_hits += 1;
            self.pending_completions
                .push((outcome.completes_at, request));
            return true;
        }
        // Pass 2: oldest request to a precharged bank -> activate. The
        // request stays queued and completes later as a row hit.
        let pick = {
            let delayed = &mut self.delayed_by_defense;
            let stats = &mut self.stats;
            self.scheduler
                .pick_activation(kind, channel, now, &self.dram, defense, |id| {
                    if delayed.insert(id) {
                        stats.activations_delayed_by_defense += 1;
                    }
                })
        };
        if let Some(pick) = pick {
            self.issue_tracked(MemCommand::Activate, &pick.addr, now);
            self.stats.row_misses += 1;
            if pick.origin == RequestOrigin::Core {
                let victims = defense.on_activation(now, pick.thread, &pick.addr);
                self.inject_victim_refreshes(victims, now);
            }
            return true;
        }
        // Pass 3: oldest conflicting request -> precharge, but only if no
        // queued request still wants the currently open row (FR part of
        // FR-FCFS).
        if let Some(addr) = self
            .scheduler
            .pick_conflict_precharge(kind, channel, now, &self.dram)
        {
            self.issue_tracked(MemCommand::Precharge, &addr, now);
            self.stats.row_conflicts += 1;
            return true;
        }
        false
    }

    /// Issues a command to the DRAM device and mirrors its row-buffer
    /// effect in the scheduler's per-bank open-row cache.
    fn issue_tracked(&mut self, cmd: MemCommand, addr: &DramAddress, now: Cycle) -> IssueOutcome {
        let outcome = self.dram.issue(cmd, addr, now);
        let bank = self.global_bank(addr);
        self.scheduler.note_issue(cmd, bank, addr.row());
        #[cfg(debug_assertions)]
        {
            let org = &self.config.organization;
            let rank_idx = org.rank_index(addr.channel(), addr.rank());
            debug_assert_eq!(
                self.scheduler.cached_open_row(bank),
                self.dram
                    .open_row_at(rank_idx, addr.bank_in_rank(org.banks_per_group)),
                "open-row cache diverged from the device on {cmd} to {addr}"
            );
        }
        outcome
    }

    fn inject_victim_refreshes(&mut self, victims: Vec<DramAddress>, now: Cycle) {
        for victim in victims {
            let id = self.next_req_id;
            self.next_req_id += 1;
            self.victim_queue
                .push(MemRequest::victim_refresh(id, victim, now));
        }
    }

    /// Finalizes the run at `now`, returning DRAM statistics (command
    /// counts, bank-state residency, optional activation log) and the
    /// controller's own statistics.
    pub fn finish(&mut self, now: Cycle) -> (DramStats, CtrlStats) {
        (self.dram.finish(now), self.stats.clone())
    }

    /// Read-only access to the controller statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Read-only access to the DRAM device (e.g. for inspecting open rows
    /// or activation logs in tests).
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitigations::{DefenseGeometry, NoMitigation, Para, RowHammerThreshold};

    fn controller() -> MemoryController {
        MemoryController::new(MemCtrlConfig::default())
    }

    fn run_until_complete(
        ctrl: &mut MemoryController,
        defense: &mut dyn RowHammerDefense,
        start: Cycle,
        limit: Cycle,
    ) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for cycle in start..start + limit {
            done.extend(ctrl.tick(cycle, defense));
            if ctrl.is_idle() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_act_plus_cas_latency() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        ctrl.enqueue(ThreadId::new(0), 0x10_000, AccessType::Read, 0, &defense)
            .unwrap();
        let done = run_until_complete(&mut ctrl, &mut defense, 0, 5_000);
        assert_eq!(done.len(), 1);
        let latency = done[0].completed_at;
        let t = *ctrl.timings();
        assert!(latency >= t.t_rcd + t.read_latency());
        assert!(latency < t.t_rcd + t.read_latency() + 200);
        assert_eq!(ctrl.stats().reads_completed, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn same_row_reads_hit_the_row_buffer() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        // Consecutive cache lines within the MOP group map to the same row.
        for line in 0..4u64 {
            ctrl.enqueue(
                ThreadId::new(0),
                0x20_000 + line * 64,
                AccessType::Read,
                0,
                &defense,
            )
            .unwrap();
        }
        let done = run_until_complete(&mut ctrl, &mut defense, 0, 10_000);
        assert_eq!(done.len(), 4);
        assert_eq!(ctrl.stats().row_misses, 1, "one ACT opens the row");
        assert_eq!(ctrl.stats().row_hits, 4, "all four columns hit");
    }

    #[test]
    fn row_conflicts_are_resolved_with_precharge() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        let geometry = ctrl.config().organization.geometry();
        let mapping = ctrl.config().mapping;
        // Two addresses in the same bank but different rows.
        let a = mapping.encode(&geometry, &DramAddress::new(0, 0, 1, 1, 100, 0));
        let b = mapping.encode(&geometry, &DramAddress::new(0, 0, 1, 1, 200, 0));
        ctrl.enqueue(ThreadId::new(0), a, AccessType::Read, 0, &defense)
            .unwrap();
        ctrl.enqueue(ThreadId::new(0), b, AccessType::Read, 0, &defense)
            .unwrap();
        let done = run_until_complete(&mut ctrl, &mut defense, 0, 20_000);
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_conflicts, 1);
        assert_eq!(ctrl.stats().row_misses, 2);
    }

    #[test]
    fn writes_are_drained_and_complete() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        for i in 0..8u64 {
            ctrl.enqueue(
                ThreadId::new(0),
                0x100_000 + i * 4096,
                AccessType::Write,
                0,
                &defense,
            )
            .unwrap();
        }
        let _ = run_until_complete(&mut ctrl, &mut defense, 0, 50_000);
        assert_eq!(ctrl.stats().writes_completed, 8);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = controller();
        let defense = NoMitigation::new();
        let cap = ctrl.config().read_queue_capacity;
        for i in 0..cap as u64 {
            ctrl.enqueue(ThreadId::new(0), i * 4096, AccessType::Read, 0, &defense)
                .unwrap();
        }
        let err = ctrl
            .enqueue(ThreadId::new(0), 0xdead000, AccessType::Read, 0, &defense)
            .unwrap_err();
        assert_eq!(err, EnqueueError::QueueFull);
        assert_eq!(ctrl.stats().rejected_queue_full, 1);
    }

    #[test]
    fn inflight_accounting_drops_entries_at_zero() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        // Touch many distinct (thread, bank) pairs; the accounting map must
        // not retain an entry for every pair ever seen.
        for i in 0..32u64 {
            ctrl.enqueue(
                ThreadId::new((i % 8) as usize),
                i * 0x4_0000,
                AccessType::Read,
                0,
                &defense,
            )
            .unwrap();
        }
        let done = run_until_complete(&mut ctrl, &mut defense, 0, 100_000);
        assert_eq!(done.len(), 32);
        assert!(
            ctrl.inflight.is_empty(),
            "inflight map retained {} zero entries",
            ctrl.inflight.len()
        );
    }

    #[test]
    fn completions_on_the_same_cycle_are_reported_in_fifo_order() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        // Four same-row reads issue back to back; withhold ticks until all
        // have issued, then jump far ahead so every completion is collected
        // in one call — stable removal must report them in issue order.
        for line in 0..4u64 {
            ctrl.enqueue(
                ThreadId::new(0),
                0x30_000 + line * 64,
                AccessType::Read,
                0,
                &defense,
            )
            .unwrap();
        }
        let mut done = Vec::new();
        let mut cycle = 0;
        while ctrl.read_queue_len() > 0 && cycle < 1_000 {
            done.extend(ctrl.tick(cycle, &mut defense));
            cycle += 1;
        }
        assert_eq!(ctrl.read_queue_len(), 0, "all reads must issue");
        done.extend(ctrl.tick(100_000, &mut defense));
        let ids: Vec<ReqId> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "completion stream must stay FIFO");
    }

    #[test]
    fn blocked_rank_does_not_stall_other_ranks_refreshes() {
        let mut config = MemCtrlConfig::default();
        config.organization.ranks = 2;
        let mut ctrl = MemoryController::new(config);
        let mut defense = NoMitigation::new();
        let t_refi = ctrl.timings().t_refi;
        let geometry = ctrl.config().organization.geometry();
        let mapping = ctrl.config().mapping;
        // Idle until shortly before the refresh deadline, then open a row
        // in rank 0 so that, at the deadline, rank 0 can neither refresh
        // (row open) nor precharge (tRAS still running).
        for cycle in 0..t_refi - 40 {
            ctrl.tick(cycle, &mut defense);
        }
        let rank0 = mapping.encode(&geometry, &DramAddress::new(0, 0, 0, 0, 100, 0));
        ctrl.enqueue(
            ThreadId::new(0),
            rank0,
            AccessType::Read,
            t_refi - 40,
            &defense,
        )
        .unwrap();
        for cycle in t_refi - 40..=t_refi + 5 {
            ctrl.tick(cycle, &mut defense);
        }
        assert_eq!(
            ctrl.stats().auto_refreshes,
            1,
            "rank 1 must refresh on schedule while rank 0 is blocked"
        );
        for cycle in t_refi + 6..t_refi + 1_000 {
            ctrl.tick(cycle, &mut defense);
        }
        assert_eq!(
            ctrl.stats().auto_refreshes,
            2,
            "rank 0 must refresh once its bank can be closed"
        );
    }

    #[test]
    fn auto_refresh_is_issued_periodically() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        let t_refi = ctrl.timings().t_refi;
        let horizon = t_refi * 5 + 1000;
        for cycle in 0..horizon {
            ctrl.tick(cycle, &mut defense);
        }
        let refreshes = ctrl.stats().auto_refreshes;
        assert!(
            (4..=6).contains(&refreshes),
            "expected about 5 refreshes, got {refreshes}"
        );
    }

    #[test]
    fn reactive_defense_victim_refreshes_are_performed() {
        let mut ctrl = controller();
        // A PARA with an aggressive probability so victim refreshes are
        // frequent enough to observe quickly.
        let mut defense = Para::new(
            RowHammerThreshold::new(16),
            1e-3,
            DefenseGeometry::default(),
            1,
        );
        let geometry = ctrl.config().organization.geometry();
        let mapping = ctrl.config().mapping;
        let mut cycle = 0;
        // Hammer two rows of one bank alternately.
        for i in 0..400u64 {
            let row = if i % 2 == 0 { 1000 } else { 1002 };
            let phys = mapping.encode(&geometry, &DramAddress::new(0, 0, 0, 0, row, 0));
            loop {
                if ctrl
                    .enqueue(ThreadId::new(0), phys, AccessType::Read, cycle, &defense)
                    .is_ok()
                {
                    break;
                }
                ctrl.tick(cycle, &mut defense);
                cycle += 1;
            }
        }
        while !ctrl.is_idle() && cycle < 2_000_000 {
            ctrl.tick(cycle, &mut defense);
            cycle += 1;
        }
        assert!(
            ctrl.stats().victim_refreshes_performed > 0,
            "PARA's victim refreshes must reach DRAM"
        );
        assert!(defense.stats().victim_refreshes >= ctrl.stats().victim_refreshes_performed);
    }

    #[test]
    fn quota_zero_blocks_a_thread() {
        /// A defense that forbids thread 1 from having any in-flight
        /// requests (an extreme AttackThrottler).
        #[derive(Debug)]
        struct BlockThread1;
        impl RowHammerDefense for BlockThread1 {
            fn name(&self) -> &'static str {
                "BlockThread1"
            }
            fn on_activation(
                &mut self,
                _now: Cycle,
                _thread: ThreadId,
                _addr: &DramAddress,
            ) -> Vec<DramAddress> {
                Vec::new()
            }
            fn inflight_quota(&self, thread: ThreadId, _bank: usize) -> Option<u32> {
                (thread.index() == 1).then_some(0)
            }
            fn metadata(&self) -> mitigations::MetadataFootprint {
                mitigations::MetadataFootprint::default()
            }
            fn stats(&self) -> mitigations::DefenseStats {
                mitigations::DefenseStats::default()
            }
        }
        let mut ctrl = controller();
        let defense = BlockThread1;
        assert!(ctrl
            .enqueue(ThreadId::new(0), 0x1000, AccessType::Read, 0, &defense)
            .is_ok());
        let err = ctrl
            .enqueue(ThreadId::new(1), 0x2000, AccessType::Read, 0, &defense)
            .unwrap_err();
        assert_eq!(err, EnqueueError::QuotaExceeded);
        assert!(!ctrl.can_accept(ThreadId::new(1), 0x2000, AccessType::Read, &defense));
        assert!(ctrl.can_accept(ThreadId::new(0), 0x3000, AccessType::Read, &defense));
    }

    #[test]
    fn defense_veto_delays_activation() {
        /// A defense that vetoes every activation until cycle 5000.
        #[derive(Debug)]
        struct VetoUntil(Cycle);
        impl RowHammerDefense for VetoUntil {
            fn name(&self) -> &'static str {
                "VetoUntil"
            }
            fn is_activation_safe(
                &mut self,
                now: Cycle,
                _thread: ThreadId,
                _addr: &DramAddress,
            ) -> bool {
                now >= self.0
            }
            fn on_activation(
                &mut self,
                _now: Cycle,
                _thread: ThreadId,
                _addr: &DramAddress,
            ) -> Vec<DramAddress> {
                Vec::new()
            }
            fn metadata(&self) -> mitigations::MetadataFootprint {
                mitigations::MetadataFootprint::default()
            }
            fn stats(&self) -> mitigations::DefenseStats {
                mitigations::DefenseStats::default()
            }
        }
        let mut ctrl = controller();
        let mut defense = VetoUntil(5_000);
        ctrl.enqueue(ThreadId::new(0), 0x7000, AccessType::Read, 0, &defense)
            .unwrap();
        let done = run_until_complete(&mut ctrl, &mut defense, 0, 50_000);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].completed_at >= 5_000,
            "read completed at {} despite the veto",
            done[0].completed_at
        );
        assert_eq!(ctrl.stats().activations_delayed_by_defense, 1);
    }

    #[test]
    fn per_thread_latency_is_tracked() {
        let mut ctrl = controller();
        let mut defense = NoMitigation::new();
        ctrl.enqueue(ThreadId::new(3), 0x9000, AccessType::Read, 0, &defense)
            .unwrap();
        let _ = run_until_complete(&mut ctrl, &mut defense, 0, 10_000);
        assert_eq!(ctrl.stats().reads_per_thread[&3], 1);
        assert!(ctrl.stats().read_latency_per_thread[&3] > 0);
    }
}
